#!/usr/bin/env python3
"""Round-trip smoke test for a running `fsd` daemon (stdlib only).

Starts nothing itself: point it at a live daemon's socket. Sends a ping, a
cold analyze+grid request over the bundled corpus, the same request again
(which must be served warm), and a stats query; verifies the envelope
shape, that the two analysis responses are byte-identical modulo the memo
tallies (run 2 all hits), and that the cache reports zero evictions-free
growth anomalies. Exits non-zero on any violation.

When the daemon also serves the HTTP fallback, pass its address as a
second argument: the script then scrapes `GET /metrics` before and after
the round trips, checks the Prometheus text exposition parses, and
asserts the request counters actually moved.

Usage: fsd_smoke.py SOCKET_PATH [HTTP_HOST:PORT]
"""

import json
import socket
import sys
import urllib.request


def round_trip(path: str, request: dict) -> dict:
    """One NDJSON request/response exchange on a fresh connection."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(60)
        s.connect(path)
        s.sendall((json.dumps(request) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)


def scrape_metrics(addr: str) -> dict:
    """GET /metrics and parse the Prometheus text exposition into
    {(metric name, label string or None): float}, validating the format
    line by line."""
    with urllib.request.urlopen(f"http://{addr}/metrics", timeout=60) as resp:
        assert resp.status == 200, resp.status
        ctype = resp.headers.get("Content-Type", "")
        assert ctype.startswith("text/plain"), f"bad content type: {ctype}"
        text = resp.read().decode()

    samples = {}
    typed = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                name, kind = line[len("# TYPE "):].split()
                assert kind in {"counter", "gauge", "histogram"}, line
                typed.add(name)
            continue
        name_part, _, value = line.rpartition(" ")
        labels = None
        if "{" in name_part:
            name, _, labels = name_part.partition("{")
            assert labels.endswith("}"), line
            labels = labels[:-1]
        else:
            name = name_part
        assert name.replace("_", "").replace(":", "").isalnum(), line
        family = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        assert name in typed or family in typed, f"sample before # TYPE: {line}"
        samples[(name, labels)] = float(value)
    assert samples, "empty exposition"
    return samples


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    http_addr = sys.argv[2] if len(sys.argv) == 3 else None

    pong = round_trip(path, {"cmd": "ping"})
    assert pong["fsd_version"] == 1, pong
    assert pong["event"] == "pong", pong

    before = scrape_metrics(http_addr) if http_addr else None

    request = {
        "kernels": ["@histogram", "@stencil", "@dft"],
        "grid": {"threads": [2, 4], "chunks": [1, 8]},
    }
    cold = round_trip(path, request)
    assert cold["fsd_version"] == 1, "missing version stamp"
    assert not cold["errors"], f"corpus analysis failed: {cold['errors']}"
    assert len(cold["reports"]) == 3, cold["reports"]
    for report in cold["reports"]:
        assert "report" in report and "lint" in report, report

    warm = round_trip(path, request)
    grid = warm["sweep_grid"]
    assert grid["memo_misses"] == 0, (
        f"warm run recomputed {grid['memo_misses']} points - cache not shared"
    )
    assert grid["results"] == cold["sweep_grid"]["results"], (
        "warm grid results diverge from cold run"
    )

    stats = round_trip(path, {"cmd": "stats"})
    cache = stats["cache"]
    assert cache["entries"] > 0 and cache["bytes"] > 0, cache
    assert cache["hits"] > 0, "no recorded cache hits after a warm run"
    assert stats["uptime_s"] >= 0, stats
    assert stats["commands"]["analyze"] >= 2, stats["commands"]

    scraped = ""
    if http_addr:
        after = scrape_metrics(http_addr)
        # The two analyze round trips must show up in both the
        # obs-registry counter and the daemon's per-command tally.
        for key in (("svc_requests_total", None),
                    ("fsd_requests_total", 'cmd="analyze"')):
            delta = after[key] - before.get(key, 0.0)
            assert delta >= 2, f"{key} moved by {delta}, expected >= 2"
        # Histogram sanity: +Inf cumulative == _count.
        inf = after[("svc_request_ns_bucket", 'le="+Inf"')]
        assert inf == after[("svc_request_ns_count", None)], after
        scraped = f", /metrics OK ({len(after)} samples)"

    print(
        f"fsd smoke OK: {len(cold['reports'])} kernels, "
        f"{grid['points']} grid points warm-served, "
        f"cache {cache['entries']} entries / {cache['bytes']} bytes "
        f"({cache['hits']} hits, {cache['misses']} misses){scraped}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
