#!/usr/bin/env python3
"""Round-trip smoke test for a running `fsd` daemon (stdlib only).

Starts nothing itself: point it at a live daemon's socket. Sends a ping, a
cold analyze+grid request over the bundled corpus, the same request again
(which must be served warm), and a stats query; verifies the envelope
shape, that the two analysis responses are byte-identical modulo the memo
tallies (run 2 all hits), and that the cache reports zero evictions-free
growth anomalies. Exits non-zero on any violation.

Usage: fsd_smoke.py SOCKET_PATH
"""

import json
import socket
import sys


def round_trip(path: str, request: dict) -> dict:
    """One NDJSON request/response exchange on a fresh connection."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(60)
        s.connect(path)
        s.sendall((json.dumps(request) + "\n").encode())
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]

    pong = round_trip(path, {"cmd": "ping"})
    assert pong["fsd_version"] == 1, pong
    assert pong["event"] == "pong", pong

    request = {
        "kernels": ["@histogram", "@stencil", "@dft"],
        "grid": {"threads": [2, 4], "chunks": [1, 8]},
    }
    cold = round_trip(path, request)
    assert cold["fsd_version"] == 1, "missing version stamp"
    assert not cold["errors"], f"corpus analysis failed: {cold['errors']}"
    assert len(cold["reports"]) == 3, cold["reports"]
    for report in cold["reports"]:
        assert "report" in report and "lint" in report, report

    warm = round_trip(path, request)
    grid = warm["sweep_grid"]
    assert grid["memo_misses"] == 0, (
        f"warm run recomputed {grid['memo_misses']} points - cache not shared"
    )
    assert grid["results"] == cold["sweep_grid"]["results"], (
        "warm grid results diverge from cold run"
    )

    stats = round_trip(path, {"cmd": "stats"})
    cache = stats["cache"]
    assert cache["entries"] > 0 and cache["bytes"] > 0, cache
    assert cache["hits"] > 0, "no recorded cache hits after a warm run"

    print(
        f"fsd smoke OK: {len(cold['reports'])} kernels, "
        f"{grid['points']} grid points warm-served, "
        f"cache {cache['entries']} entries / {cache['bytes']} bytes "
        f"({cache['hits']} hits, {cache['misses']} misses)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
