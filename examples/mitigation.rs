//! Automatic false-sharing elimination: the compiler workflow the paper's
//! conclusion sketches as future work. For each bundled kernel, detect the
//! false sharing, search mitigations (element padding vs a better static
//! chunk), and verify the winner against the MESI simulator.
//!
//! ```text
//! cargo run --release --example mitigation
//! ```

use fs_core::simulation::{simulate_kernel, SimOptions};
use fs_core::{corpus_kernel, eliminate_false_sharing, machines, AnalysisOptions, CORPUS};

fn main() {
    let machine = machines::paper48();
    let threads = 8;
    let opts = AnalysisOptions::new(threads);

    for entry in CORPUS {
        let kernel = corpus_kernel(entry.name).expect("bundled kernels parse");
        let report = eliminate_false_sharing(&kernel, &machine, threads, &opts);
        println!("== {} ==", entry.name);
        println!(
            "baseline: {} FS cases, {:.1}% of modeled time",
            report.baseline.fs.fs_cases,
            report.baseline.fs_fraction() * 100.0
        );
        let Some(best) = report.best() else {
            println!("   no false sharing detected; nothing to do\n");
            continue;
        };
        println!(
            "best fix: {} (modeled {:.2}x speedup)",
            best.description, best.speedup
        );

        // Cross-check the model's verdict against the simulator.
        let before = simulate_kernel(&kernel, &machine, SimOptions::new(threads));
        let after = simulate_kernel(&best.kernel, &machine, SimOptions::new(threads));
        let sim_speedup = before.makespan_cycles() as f64 / after.makespan_cycles().max(1) as f64;
        println!(
            "simulator: fs misses {} -> {}, makespan speedup {:.2}x",
            before.total_false_sharing(),
            after.total_false_sharing(),
            sim_speedup
        );
        if report.worthwhile() && sim_speedup > 1.0 {
            println!("   model and simulator agree the fix helps\n");
        } else {
            println!("   (marginal case — see EXPERIMENTS.md for calibration notes)\n");
        }
    }
}
