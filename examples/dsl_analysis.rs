//! Analyze a kernel written in the textual loop DSL — the front-end path a
//! compiler pass would take (parse → validate → model). Pass a `.loop` file
//! path to analyze your own kernel; without arguments it analyzes the
//! paper's linear-regression kernel.
//!
//! ```text
//! cargo run --release --example dsl_analysis [kernel.loop]
//! ```

use fs_core::{machines, try_analyze, AnalysisOptions};

const LINREG_DSL: &str = "
// The Phoenix linear-regression kernel of the paper's Fig. 1, scaled down.
kernel linear_regression {
  const N = 960;      // outer (parallel) trip count
  const M = 64;       // points per series
  array args[N] of { sx: f64, sxx: f64, sy: f64, syy: f64, sxy: f64 };
  array points[N][M] of { x: f64, y: f64 };
  parallel for j in 0..N schedule(static, 1) {
    for i in 0..M {
      args[j].sx  += points[j][i].x;
      args[j].sxx += points[j][i].x * points[j][i].x;
      args[j].sy  += points[j][i].y;
      args[j].syy += points[j][i].y * points[j][i].y;
      args[j].sxy += points[j][i].x * points[j][i].y;
    }
  }
}
";

fn main() {
    let arg = std::env::args().nth(1);
    let src = match &arg {
        Some(path) => std::fs::read_to_string(path).expect("cannot read kernel file"),
        None => LINREG_DSL.to_string(),
    };

    let kernel = match fs_core::parse_kernel(&src) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    let machine = machines::paper48();
    for threads in [2u32, 8, 24, 48] {
        let report = try_analyze(
            &kernel,
            &machine,
            &AnalysisOptions::new(threads).with_prediction(16),
        )
        .expect("analysis succeeds");
        println!(
            "threads {threads:>2}: {:>12} FS cases predicted, {:>5.1}% of time, victims: {}",
            report.cost.fs.fs_cases,
            report.fs_percent(),
            report
                .victims
                .iter()
                .map(|v| v.array.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    println!();
    let report =
        try_analyze(&kernel, &machine, &AnalysisOptions::new(8)).expect("analysis succeeds");
    println!("{}", report.render());
}
