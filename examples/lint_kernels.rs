//! Lint kernels written in the textual loop DSL — the simulation-free
//! companion to `dsl_analysis`. Pass `.loop` file paths to lint your own
//! kernels; without arguments it lints the paper's linear-regression kernel
//! and its padded fix side by side.
//!
//! ```text
//! cargo run --release --example lint_kernels [kernel.loop ...]
//! ```

use fs_core::{machines, try_lint_dsl};

const LINREG_DSL: &str = "
// The Phoenix linear-regression kernel of the paper's Fig. 1, scaled down.
kernel linear_regression {
  const N = 960;
  const M = 64;
  array args[N] of { sx: f64, sxx: f64, sy: f64, syy: f64, sxy: f64 };
  array points[N][M] of { x: f64, y: f64 };
  parallel for j in 0..N schedule(static, 1) {
    for i in 0..M {
      args[j].sx  += points[j][i].x;
      args[j].sxx += points[j][i].x * points[j][i].x;
      args[j].sy  += points[j][i].y;
      args[j].syy += points[j][i].y * points[j][i].y;
      args[j].sxy += points[j][i].x * points[j][i].y;
    }
  }
}
";

const LINREG_PADDED_DSL: &str = "
// The same kernel with the paper's fix: pad the accumulator struct to a
// full cache line.
kernel linear_regression_padded {
  const N = 960;
  const M = 64;
  array args[N] of { sx: f64, sxx: f64, sy: f64, syy: f64, sxy: f64 } pad 64;
  array points[N][M] of { x: f64, y: f64 };
  parallel for j in 0..N schedule(static, 1) {
    for i in 0..M {
      args[j].sx  += points[j][i].x;
      args[j].sxx += points[j][i].x * points[j][i].x;
      args[j].sy  += points[j][i].y;
      args[j].syy += points[j][i].y * points[j][i].y;
      args[j].sxy += points[j][i].x * points[j][i].y;
    }
  }
}
";

fn main() {
    let machine = machines::paper48();
    let files: Vec<String> = std::env::args().skip(1).collect();
    let sources: Vec<(String, String)> = if files.is_empty() {
        vec![
            ("<linreg>".to_string(), LINREG_DSL.to_string()),
            ("<linreg-padded>".to_string(), LINREG_PADDED_DSL.to_string()),
        ]
    } else {
        files
            .into_iter()
            .map(|f| {
                let src = std::fs::read_to_string(&f).expect("cannot read kernel file");
                (f, src)
            })
            .collect()
    };

    for (name, src) in &sources {
        match try_lint_dsl(src, &machine, 8) {
            Ok(report) => print!("{}", report.render(name)),
            Err(e) => eprintln!("{name}: {e}"),
        }
        println!();
    }
}
