//! False sharing on *your* machine: run the native kernels on real OS
//! threads and watch the wall clock, then compare with what the
//! compile-time model said would happen.
//!
//! ```text
//! cargo run --release --example wallclock_falseshare
//! ```

use fs_core::{machines, try_analyze, AnalysisOptions};
use fs_runtime::kernels::{dotprod_partials, linreg_packed, synth_points};
use fs_runtime::{measure, relative_overhead};

fn main() {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let threads = hw.min(8);
    println!("host has {hw} logical CPUs; using {threads} threads");
    if hw == 1 {
        println!("(single-core host: expect no false-sharing effect — the runs below");
        println!(" still demonstrate the API and the padded/packed layouts)");
    }
    println!();

    // --- dot product with per-thread partials: packed vs padded ---
    let len = 1_000_000usize;
    let x: Vec<f64> = (0..len).map(|i| (i % 1000) as f64 * 1e-3).collect();
    let y: Vec<f64> = (0..len).map(|i| ((i + 7) % 1000) as f64 * 1e-3).collect();

    let packed = measure(1, 5, || {
        std::hint::black_box(dotprod_partials(&x, &y, threads, false));
    });
    let padded = measure(1, 5, || {
        std::hint::black_box(dotprod_partials(&x, &y, threads, true));
    });
    let measured_pct = relative_overhead(packed.seconds(), padded.seconds()) * 100.0;
    println!("dot product ({len} elements, {threads} threads):");
    println!("  packed partials: {:>8.2} ms", packed.seconds() * 1e3);
    println!("  padded partials: {:>8.2} ms", padded.seconds() * 1e3);
    println!("  measured false-sharing overhead: {measured_pct:.1}%");

    let machine = machines::generic_x86();
    let model = try_analyze(
        &fs_core::kernels::dotprod_partials(threads as u64, (len / threads) as u64, false),
        &machine,
        &AnalysisOptions::new(threads as u32).with_prediction(8),
    )
    .expect("analysis succeeds");
    println!(
        "  model (generic_x86 preset) attributes {:.1}% of time to false sharing\n",
        model.fs_percent()
    );

    // --- linear regression: chunk size sweep (the paper's Fig. 2 on real
    // hardware) ---
    let (n, m_inner) = (512usize, 512usize);
    let pts = synth_points(n * m_inner);
    println!("linear regression ({n} series x {m_inner} points, {threads} threads):");
    let mut base = None;
    for chunk in [1u64, 2, 4, 8, 16, 30] {
        let m = measure(1, 2, || {
            std::hint::black_box(linreg_packed(&pts, n, m_inner, threads, chunk));
        });
        let secs = m.seconds();
        if base.is_none() {
            base = Some(secs);
        }
        println!(
            "  chunk {chunk:>2}: {:>8.2} ms  ({:+5.1}% vs chunk 1)",
            secs * 1e3,
            (secs / base.unwrap() - 1.0) * 100.0
        );
    }
    println!("\n(expect times to fall as the chunk grows, most sharply on multicore hosts)");
}
