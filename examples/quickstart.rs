//! Quickstart: build a parallel loop programmatically, detect its false
//! sharing at "compile time", and see how the chunk size changes the
//! verdict.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fs_core::{machines, try_analyze, AnalysisOptions};
use loop_ir::{AffineExpr, ArrayRef, Expr, KernelBuilder, ScalarType, Schedule, Stmt};

fn histogram_kernel(threads: u64, bins_len: u64, chunk: u64) -> loop_ir::Kernel {
    // Each thread accumulates into its own counter — but the counters are
    // adjacent f64s, so with chunk=1 the whole team fights over two cache
    // lines. This is the classic "per-thread counter array" bug.
    let mut b = KernelBuilder::new("histogram");
    let t = b.loop_var("t");
    let i = b.loop_var("i");
    let counts = b.array("counts", &[threads], ScalarType::F64);
    let data = b.array("data", &[threads, bins_len], ScalarType::F64);
    b.parallel_for(t, 0, threads as i64, Schedule::Static { chunk });
    b.seq_for(i, 0, bins_len as i64);
    b.stmt(Stmt::add_assign(
        ArrayRef::write(counts, vec![AffineExpr::var(t)]),
        Expr::read(ArrayRef::read(
            data,
            vec![AffineExpr::var(t), AffineExpr::var(i)],
        )),
    ));
    b.build()
}

fn main() {
    let machine = machines::paper48();
    let threads = 8;

    println!("### per-thread counters, packed (false sharing expected)\n");
    let kernel = histogram_kernel(threads, 4096, 1);
    let report = try_analyze(&kernel, &machine, &AnalysisOptions::new(threads as u32))
        .expect("analysis succeeds");
    println!("{}", report.render());

    // The DSL form of the same kernel, for reference:
    println!("### the same kernel as DSL source\n");
    println!("{}", fs_core::kernel_to_dsl(&kernel));

    // Fix it by spacing the counters a cache line apart (padding).
    println!("### padded counters (fixed)\n");
    let fixed = fs_core::kernels::dotprod_partials(threads, 4096, true);
    let report2 = try_analyze(&fixed, &machine, &AnalysisOptions::new(threads as u32))
        .expect("analysis succeeds");
    println!("{}", report2.render());

    println!(
        "packed kernel loses {:.1}% of its time to false sharing; padded loses {:.1}%",
        report.fs_percent(),
        report2.fs_percent()
    );
}
