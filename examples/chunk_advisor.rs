//! Reproduce the paper's motivating observation (Fig. 2): execution time of
//! the linear-regression kernel falls as the chunk size grows, because
//! false sharing fades — and show the advisor picking a good chunk
//! automatically.
//!
//! The "execution" here is the MESI coherence simulator (our stand-in for
//! the paper's 48-core machine); the model column is the compile-time
//! estimate. The two should tell the same story.
//!
//! ```text
//! cargo run --release --example chunk_advisor
//! ```

use fs_core::simulation::{simulate_kernel, SimOptions};
use fs_core::{machines, recommend_chunk, try_analyze, AnalysisOptions};

fn main() {
    let machine = machines::paper48();
    let threads = 8u32;
    let (n, m_inner) = (192, 64);

    println!("linear regression: {n} series x {m_inner} points, {threads} threads\n");
    println!(
        "{:>6} | {:>14} {:>12} | {:>14} {:>12}",
        "chunk", "model FS cases", "model cycles", "sim FS misses", "sim cycles"
    );
    println!("{}", "-".repeat(70));
    for chunk in [1u64, 2, 4, 8, 16, 30] {
        let kernel = fs_core::kernels::linear_regression(n, m_inner, chunk);
        let report = try_analyze(&kernel, &machine, &AnalysisOptions::new(threads))
            .expect("analysis succeeds");
        let sim = simulate_kernel(&kernel, &machine, SimOptions::new(threads));
        println!(
            "{:>6} | {:>14} {:>12.0} | {:>14} {:>12}",
            chunk,
            report.cost.fs.fs_cases,
            report.cost.total_cycles,
            sim.total_false_sharing(),
            sim.makespan_cycles()
        );
    }

    println!();
    let kernel = fs_core::kernels::linear_regression(n, m_inner, 1);
    let advice = recommend_chunk(&kernel, &machine, threads, 64, None);
    println!(
        "advisor: chunk {} is modeled {:.2}x faster than chunk 1",
        advice.best_chunk, advice.speedup_vs_chunk1
    );
}
