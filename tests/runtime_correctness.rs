//! Integration: the native parallel runtime computes the same results as
//! serial references for every kernel, every schedule, every team size —
//! false sharing must only ever cost time, never correctness.

use fs_runtime::kernels::*;
use fs_runtime::{parallel_for_each, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn linreg_all_schedules_match_serial() {
    let (n, m) = (48, 61);
    let pts = synth_points(n * m);
    let serial = linreg_serial(&pts, n, m);
    for threads in [1usize, 2, 3, 8] {
        for chunk in [1u64, 2, 5, 30, 64] {
            let par = linreg_packed(&pts, n, m, threads, chunk);
            for (j, (s, p)) in serial.iter().zip(&par).enumerate() {
                assert!(
                    close(s.sx, p.sx)
                        && close(s.sxx, p.sxx)
                        && close(s.sy, p.sy)
                        && close(s.syy, p.syy)
                        && close(s.sxy, p.sxy),
                    "series {j} mismatch (T={threads} C={chunk})"
                );
            }
        }
    }
}

#[test]
fn heat_multiple_sweeps_match_serial() {
    let (n, m) = (20, 26);
    let mut a: Vec<f64> = (0..n * m).map(|i| ((i * 31) % 17) as f64).collect();
    let mut b = a.clone();
    let mut a2 = a.clone();
    let mut b2 = b.clone();
    let pool = ThreadPool::new(3);
    for _ in 0..4 {
        heat_step(&a, &mut b, n, m, 2, &pool);
        std::mem::swap(&mut a, &mut b);
        heat_step_serial(&a2, &mut b2, n, m);
        std::mem::swap(&mut a2, &mut b2);
        assert_eq!(a, a2);
    }
}

#[test]
fn dft_chunk_sizes_match_serial() {
    let x: Vec<f64> = (0..48).map(|i| (i as f64 * 0.13).cos()).collect();
    let bins = 40;
    let (mut rs, mut is) = (vec![0.0; bins], vec![0.0; bins]);
    dft_serial(&x, &mut rs, &mut is);
    let pool = ThreadPool::new(4);
    for chunk in [1u64, 4, 16] {
        let (mut rp, mut ip) = (vec![0.0; bins], vec![0.0; bins]);
        dft_scatter(&x, &mut rp, &mut ip, chunk, &pool);
        for k in 0..bins {
            assert!(close(rs[k], rp[k]), "re[{k}] chunk={chunk}");
            assert!(close(is[k], ip[k]), "im[{k}] chunk={chunk}");
        }
    }
}

#[test]
fn transpose_roundtrip_is_identity() {
    let (n, m) = (33, 17);
    let a: Vec<f64> = (0..n * m).map(|i| i as f64).collect();
    let mut b = vec![0.0; n * m];
    let mut c = vec![0.0; n * m];
    transpose(&a, &mut b, n, m, 4, 1);
    transpose(&b, &mut c, m, n, 3, 2);
    assert_eq!(a, c);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every iteration of a static schedule executes exactly once, for
    /// arbitrary trip counts, team sizes and chunks.
    #[test]
    fn static_schedule_partitions_iterations(
        trip in 0u64..500,
        threads in 1usize..9,
        chunk in 1u64..40,
    ) {
        let counts: Vec<AtomicU64> = (0..trip).map(|_| AtomicU64::new(0)).collect();
        parallel_for_each(trip, threads, chunk, |_, i| {
            counts[i as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "iteration {}", i);
        }
    }

    /// Dot products agree with the direct sum for arbitrary shapes.
    #[test]
    fn dotprod_agrees(len in 1usize..2000, threads in 1usize..9, padded in any::<bool>()) {
        let x: Vec<f64> = (0..len).map(|i| (i % 97) as f64 * 0.01).collect();
        let y: Vec<f64> = (0..len).map(|i| ((i * 7) % 89) as f64 * 0.02).collect();
        let direct: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let d = dotprod_partials(&x, &y, threads, padded);
        prop_assert!(close(d, direct), "{} vs {}", d, direct);
    }
}

#[test]
fn pool_survives_many_small_regions() {
    let pool = ThreadPool::new(4);
    let total = AtomicU64::new(0);
    for _ in 0..200 {
        pool.parallel_for(16, 1, |_, r| {
            total.fetch_add(r.end - r.start, Ordering::Relaxed);
        });
    }
    assert_eq!(total.load(Ordering::Relaxed), 200 * 16);
}
