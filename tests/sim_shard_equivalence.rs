//! Differential oracle for the set-sharded parallel replay
//! (`SimPath::Sharded`): sharded [`SimStats`] must be **bit-identical** to
//! the serial dense replay over randomized corpus kernels × team sizes ×
//! schedules × interleave policies × shard-worker budgets × machines —
//! including a machine whose set counts are divisible by 7, so the
//! partitioner's non-power-of-two modulo routing is exercised alongside
//! the mask fast path. Configs that cannot shard (prefetch on, prime or
//! fully-associative set geometry, budget < 2) must fall back to the
//! serial engine with identical stats and count the fallback.
//!
//! On divergence the failing kernel is dumped as a `.loop` DSL reproducer
//! (path in the assertion message), so a failure minimized by proptest
//! shrinks to a ready-to-run `fsdetect --sim` input.

use fs_core::corpus_kernel_with_consts;
use fs_core::simulation::{simulate_kernel, Interleave, SimOptions, SimPath};
use loop_ir::Kernel;
use machine::presets;
use machine::MachineConfig;
use proptest::prelude::*;

/// Build a corpus kernel at a randomized (small) problem size — the same
/// scaling map as `tests/sim_path_equivalence.rs`, since every access is
/// replayed through both engines per case.
fn sized_corpus_kernel(name: &str, scale: u64) -> Kernel {
    let s = scale as i64; // 1..=3
    let consts: Vec<(&str, i64)> = match name {
        "dft" => vec![("N", 8 * s), ("K", 32 * s)],
        "heat" => vec![("N", 6 * s), ("M", 32 * s + 2)],
        "histogram" => vec![("T", 8), ("N", 64 * s)],
        "linreg" => vec![("N", 48 * s), ("M", 8 * s)],
        "matmul" => vec![("N", 8 * s), ("M", 8 * s), ("P", 8)],
        "stencil" => vec![("N", 64 * s + 2)],
        other => panic!("unknown corpus kernel {other}"),
    };
    corpus_kernel_with_consts(name, &consts).expect("corpus kernel builds")
}

/// `generic_x86` with the caches rescaled so every level's set count is
/// divisible by 7 (L1 28, L2 56, L3 112 sets): a budget of 7 yields 7
/// shards and the partitioner routes by modulo instead of the
/// power-of-two mask.
fn seven_way_machine() -> MachineConfig {
    let mut m = presets::generic_x86();
    m.name = "7-divisible test machine".into();
    m.caches.levels[0].size_bytes = 28 * 8 * 64;
    m.caches.levels[1].size_bytes = 56 * 8 * 64;
    m.caches.levels[2].size_bytes = 112 * 16 * 64;
    m
}

/// Write the diverging kernel as DSL next to the other test artifacts and
/// return the path for the assertion message.
fn dump_reproducer(kernel: &Kernel, tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("sim_shard_divergence_{tag}.loop"));
    let _ = std::fs::write(&path, fs_core::kernel_to_dsl(kernel));
    path
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full equivalence across the bundled corpus: shard budgets of 1
    /// (serial fallback), 2, 7 and 64 (= `generic_x86`'s L1 set count; on
    /// the 7-divisible machine the planner settles on its gcd, 28).
    #[test]
    fn sharded_replay_matches_serial_dense(
        name in prop::sample::select(vec![
            "dft",
            "heat",
            "histogram",
            "linreg",
            "matmul",
            "stencil",
        ]),
        scale in 1u64..4,
        threads in 1u32..9,
        chunk in prop::sample::select(vec![1u64, 2, 4, 16]),
        interleave in prop::sample::select(vec![
            Interleave::PerIteration,
            Interleave::PerChunk,
            Interleave::PerIterationSkewed,
        ]),
        budget in prop::sample::select(vec![1usize, 2, 7, 64]),
        seven_way in any::<bool>(),
    ) {
        let mut kernel = sized_corpus_kernel(name, scale);
        kernel.nest.parallel.schedule = loop_ir::Schedule::Static { chunk };
        let machine = if seven_way {
            seven_way_machine()
        } else {
            presets::generic_x86()
        };
        let opts = SimOptions::new(threads)
            .with_interleave(interleave)
            .without_prefetch();
        let serial = simulate_kernel(&kernel, &machine, opts.with_path(SimPath::Optimized));
        let sharded = simulate_kernel(
            &kernel,
            &machine,
            opts.with_path(SimPath::Sharded).with_replay_workers(budget),
        );
        if sharded != serial {
            let repro = dump_reproducer(&kernel, name);
            prop_assert_eq!(
                &sharded,
                &serial,
                "sharded replay diverges for {} scale={} threads={} chunk={} \
                 interleave={:?} budget={} machine={:?} — reproducer at {}",
                name, scale, threads, chunk, interleave, budget, machine.name,
                repro.display()
            );
        }
    }
}

/// Configs the sharded path cannot serve must route to the serial dense
/// engine with identical stats, and each routed replay must be counted:
/// prefetch (a next-line prefetch crosses set-residue classes), paper48's
/// prime L3 set count, and tiny_test's fully associative (single-set)
/// caches.
#[test]
fn unshardable_configs_fall_back_identically_and_are_counted() {
    let mut cfg = fs_core::obs::config();
    cfg.counters = true;
    fs_core::obs::configure(cfg);
    let kernel = loop_ir::kernels::transpose(24, 24, 1);

    // Prefetch on (the SimOptions default): documented serial fallback.
    let pf = &fs_core::obs::counters::SIM_SHARD_PREFETCH_FALLBACKS;
    let pf_before = pf.get();
    let machine = presets::generic_x86();
    let opts = SimOptions::new(4);
    let serial = simulate_kernel(&kernel, &machine, opts.with_path(SimPath::Optimized));
    let sharded = simulate_kernel(
        &kernel,
        &machine,
        opts.with_path(SimPath::Sharded).with_replay_workers(8),
    );
    assert_eq!(sharded, serial, "prefetch fallback must be an identity");
    assert!(pf.get() > pf_before, "prefetch fallback not counted");

    // Non-decomposable geometries: prime and single-set set counts.
    let geo = &fs_core::obs::counters::SIM_SHARD_GEOMETRY_FALLBACKS;
    for machine in [presets::paper48(), presets::tiny_test()] {
        let geo_before = geo.get();
        let opts = SimOptions::new(4).without_prefetch();
        let serial = simulate_kernel(&kernel, &machine, opts.with_path(SimPath::Optimized));
        let sharded = simulate_kernel(
            &kernel,
            &machine,
            opts.with_path(SimPath::Sharded).with_replay_workers(8),
        );
        assert_eq!(
            sharded, serial,
            "geometry fallback must be an identity on {}",
            machine.name
        );
        assert!(
            geo.get() > geo_before,
            "geometry fallback not counted on {}",
            machine.name
        );
    }
}

/// A shardable config (pow-of-two sets, no prefetch, budget >= 2) must
/// actually dispatch to the sharded engine — guards against the oracle
/// silently comparing the serial path against itself.
#[test]
fn shardable_configs_dispatch_sharded() {
    let mut cfg = fs_core::obs::config();
    cfg.counters = true;
    fs_core::obs::configure(cfg);
    let sharded = &fs_core::obs::counters::SIM_DISPATCH_SHARDED;
    let before = sharded.get();
    let kernel = loop_ir::kernels::transpose(24, 24, 1);
    let opts = SimOptions::new(4)
        .without_prefetch()
        .with_path(SimPath::Sharded)
        .with_replay_workers(8);
    simulate_kernel(&kernel, &presets::generic_x86(), opts);
    simulate_kernel(&kernel, &seven_way_machine(), opts);
    assert!(
        sharded.get() >= before + 2,
        "both machines should take the sharded dispatch"
    );
}

/// The divergence reproducer must round-trip: the dumped `.loop` source
/// parses back to the same kernel, so a shrunk failure is directly
/// replayable with `fsdetect --sim`.
#[test]
fn reproducer_dump_round_trips() {
    let kernel = sized_corpus_kernel("heat", 2);
    let path = dump_reproducer(&kernel, "roundtrip_check");
    let src = std::fs::read_to_string(&path).expect("reproducer written");
    let reparsed = fs_core::parse_kernel(&src).expect("reproducer parses");
    assert_eq!(reparsed, kernel);
    let _ = std::fs::remove_file(path);
}
