//! Integration: the full public pipeline — DSL/builder -> validation ->
//! analysis -> report -> advice — on every built-in kernel.

use fs_core::{machines, recommend_chunk, try_analyze, AnalysisOptions};
use loop_ir::kernels;

#[test]
fn analyze_every_builtin_kernel_on_every_preset() {
    let presets = [
        machines::paper48(),
        machines::generic_x86(),
        machines::tiny_test(),
    ];
    for machine in &presets {
        for k in kernels::all_kernels_small() {
            let threads = machine.num_cores.min(8);
            let r = try_analyze(&k, machine, &AnalysisOptions::new(threads))
                .expect("analysis succeeds");
            assert!(r.cost.total_cycles > 0.0, "{} on {}", k.name, machine.name);
            assert!(
                r.cost.fs_cycles >= 0.0 && r.cost.fs_fraction() <= 1.0,
                "{} on {}",
                k.name,
                machine.name
            );
            // Rendering never panics and always includes the kernel name.
            assert!(r.render().contains(&k.name));
        }
    }
}

#[test]
fn dsl_to_report_pipeline() {
    let src = "
        kernel stencil {
          const N = 514;
          array A[N]: f64;
          array B[N]: f64;
          parallel for i in 1..N-1 schedule(static, 1) {
            B[i] = (A[i-1] + A[i] + A[i+1]) / 3.0;
          }
        }";
    let k = fs_core::parse_kernel(src).unwrap();
    let m = machines::paper48();
    let r = try_analyze(&k, &m, &AnalysisOptions::new(8)).expect("analysis succeeds");
    assert!(r.cost.fs.fs_cases > 0, "chunk 1 stencil false-shares on B");
    assert_eq!(r.victims[0].array, "B");

    // Override the const to scale the kernel without editing the source.
    let big = fs_core::parse_kernel_with_consts(src, &[("N", 2050)]).unwrap();
    assert_eq!(big.nest.parallel_trip_count(), Some(2048));
}

#[test]
fn advisor_fixes_the_motivating_kernel() {
    // The paper's Fig. 2 workflow: linreg with chunk 1 suffers; the advisor
    // must recommend a chunk that removes most of the modeled FS cost.
    let m = machines::paper48();
    let k = kernels::linear_regression(192, 32, 1);
    let advice = recommend_chunk(&k, &m, 8, 64, None);
    assert!(advice.best_chunk >= 2, "best = {}", advice.best_chunk);
    let best = advice
        .points
        .iter()
        .find(|p| p.chunk == advice.best_chunk)
        .unwrap();
    let chunk1 = &advice.points[0];
    assert!(
        best.fs_cycles < chunk1.fs_cycles / 2.0,
        "advice must cut FS cycles: {} -> {}",
        chunk1.fs_cycles,
        best.fs_cycles
    );
}

#[test]
fn padded_and_packed_variants_rank_correctly() {
    let m = machines::paper48();
    let packed = try_analyze(
        &kernels::linear_regression(96, 32, 1),
        &m,
        &AnalysisOptions::new(8),
    )
    .expect("analysis succeeds");
    let padded = try_analyze(
        &kernels::linear_regression_padded(96, 32, 1),
        &m,
        &AnalysisOptions::new(8),
    )
    .expect("analysis succeeds");
    assert!(packed.cost.fs.fs_cases > 0);
    assert_eq!(padded.cost.fs.fs_cases, 0);
    assert!(packed.cost.total_cycles > padded.cost.total_cycles);
}

#[test]
fn report_is_stable_across_identical_runs() {
    let m = machines::paper48();
    let k = kernels::transpose(32, 32, 1);
    let a = try_analyze(&k, &m, &AnalysisOptions::new(4)).expect("analysis succeeds");
    let b = try_analyze(&k, &m, &AnalysisOptions::new(4)).expect("analysis succeeds");
    assert_eq!(a.cost.fs.fs_cases, b.cost.fs.fs_cases);
    assert_eq!(a.render(), b.render());
}

#[test]
fn prediction_pipeline_scales_to_paper_sizes() {
    // Paper-scale linreg (9600 series) is far too big to fully evaluate in
    // a test, but the predictor handles it in milliseconds.
    let m = machines::paper48();
    let k = kernels::linear_regression(9600, 50, 1);
    let r = try_analyze(&k, &m, &AnalysisOptions::new(48).with_prediction(4))
        .expect("analysis succeeds");
    assert!(r.cost.fs.fs_cases > 0);
    assert!(r.cost.fs.iterations <= 4 * 48 * 50 * 2);
}
