//! Differential accuracy oracle for the analytic (reuse-distance) path:
//! randomized kernels are run through `FsPath::Analytic` and replayed in
//! the execution-driven MESI simulator. The contract, calibrated on the
//! bundled corpus:
//!
//! * coherence counts are *exactly* the reference path's, always — the
//!   capacity prediction rides on top without perturbing the FS model;
//! * when the kernel stays inside the decidable fragment (capacity is
//!   `Some`), the prediction satisfies the stated error bounds below;
//! * leaving the fragment never panics — the path falls back and the
//!   fallback is counted and reported.
//!
//! Error bounds (relative tolerance overridable via `FS_ANALYTIC_REL_TOL`):
//!
//! * `accesses` is exact — aligned scalar elements never straddle lines;
//! * `distinct_lines` matches the sim's global cold misses within
//!   `tol + 8` lines;
//! * `level_misses[0]` lands inside the coherence-ambiguity bracket
//!   `[l1_misses − coherence_misses, l1_misses]` stretched by `tol` and 8
//!   lines of absolute slack: the model charges every thread's private
//!   first touch, which the simulator classifies as a coherence event when
//!   another thread wrote the line first;
//! * `mem_fetches` matches the sim's memory fetches within `tol + 8`.
//!
//! On divergence the failing configuration is minimized (shrink the scale,
//! then threads, then chunk) and the smallest diverging kernel is dumped
//! as a `.loop` reproducer, as in `tests/lint_differential.rs`.

use cache_sim::{simulate_kernel, SimOptions};
use cost_model::{run_fs_model, FsPath};
use fs_core::{corpus_kernel_with_consts, kernel_to_dsl, FsModelConfig};
use loop_ir::{kernels, Kernel};
use machine::presets;
use proptest::prelude::*;

const DSL_CORPUS: [&str; 6] = ["dft", "heat", "histogram", "linreg", "matmul", "stencil"];
/// Builder-based templates follow the DSL corpus in the template space.
const NUM_TEMPLATES: usize = DSL_CORPUS.len() + 5;

/// One point in the differential space.
#[derive(Debug, Clone, Copy)]
struct Params {
    template: usize,
    /// Problem-size multiplier, 1..=3.
    scale: u64,
    threads: u32,
    chunk: u64,
}

/// Relative tolerance for the capacity bounds; `FS_ANALYTIC_REL_TOL`
/// overrides the default for local triage of near-miss divergences.
fn rel_tol() -> f64 {
    std::env::var("FS_ANALYTIC_REL_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15)
}

/// Absolute slack in cache lines on every bound: small kernels round hard.
const ABS_SLACK: f64 = 8.0;

fn kernel_at(p: Params) -> Kernel {
    let s = p.scale as i64;
    let mut kernel = if p.template < DSL_CORPUS.len() {
        let name = DSL_CORPUS[p.template];
        let consts: Vec<(&str, i64)> = match name {
            "dft" => vec![("N", 8 * s), ("K", 32 * s)],
            "heat" => vec![("N", 6 * s), ("M", 32 * s + 2)],
            "histogram" => vec![("T", 8), ("N", 64 * s)],
            "linreg" => vec![("N", 48 * s), ("M", 8 * s)],
            "matmul" => vec![("N", 8 * s), ("M", 8 * s), ("P", 8)],
            "stencil" => vec![("N", 64 * s + 2)],
            other => panic!("unknown corpus kernel {other}"),
        };
        corpus_kernel_with_consts(name, &consts).expect("corpus kernel builds")
    } else {
        let s = p.scale;
        match p.template - DSL_CORPUS.len() {
            0 => kernels::transpose(8 * s, 8 * s, 1),
            1 => kernels::saxpy(512 * s, 1),
            2 => kernels::matvec(16 * s, 16 * s, 1),
            3 => kernels::dotprod_partials(p.threads as u64, 32 * s, false),
            4 => kernels::stencil1d(64 * s + 2, 1),
            _ => unreachable!("template out of range"),
        }
    };
    kernel.nest.parallel.schedule = loop_ir::Schedule::Static { chunk: p.chunk };
    kernel
}

fn cfg(p: Params, path: FsPath) -> FsModelConfig {
    let mut c = FsModelConfig::for_machine(&presets::paper48(), p.threads);
    c.path = path;
    c
}

/// Check one point; Some(description) on any violated bound.
fn divergence(p: Params) -> Option<String> {
    let kernel = kernel_at(p);
    let mut analytic = run_fs_model(&kernel, &cfg(p, FsPath::Analytic));
    let capacity = analytic.capacity.take();

    // Coherence counts must be exact whether or not the capacity
    // prediction attached.
    let reference = run_fs_model(&kernel, &cfg(p, FsPath::Reference));
    if analytic != reference {
        return Some(format!("analytic counts diverge from reference ({p:?})"));
    }

    // Outside the decidable fragment there is nothing further to check —
    // the fallback already produced reference-identical counts.
    let cap = capacity?;

    let tol = rel_tol();
    let stats = simulate_kernel(
        &kernel,
        &presets::paper48(),
        SimOptions::new(p.threads).without_prefetch(),
    );
    let acc: u64 = stats.per_thread.iter().map(|s| s.accesses).sum();
    let l1m: u64 = stats
        .per_thread
        .iter()
        .map(|s| s.accesses - s.l1_hits)
        .sum();
    let coh: u64 = stats.per_thread.iter().map(|s| s.coherence_misses).sum();
    let mem: u64 = stats.per_thread.iter().map(|s| s.mem_fetches).sum();

    if cap.accesses != acc {
        return Some(format!("accesses {} != sim {acc} ({p:?})", cap.accesses));
    }
    let cold = stats.cold_misses as f64;
    if (cap.distinct_lines - cold).abs() > tol * cold + ABS_SLACK {
        return Some(format!(
            "distinct_lines {:.1} vs sim cold {cold} ({p:?})",
            cap.distinct_lines
        ));
    }
    let lo = l1m.saturating_sub(coh) as f64;
    let hi = l1m as f64;
    if cap.level_misses[0] < (1.0 - tol) * lo - ABS_SLACK
        || cap.level_misses[0] > (1.0 + tol) * hi + ABS_SLACK
    {
        return Some(format!(
            "level_misses[0] {:.1} outside [{lo}, {hi}] ({p:?})",
            cap.level_misses[0]
        ));
    }
    if (cap.mem_fetches - mem as f64).abs() > tol * mem as f64 + ABS_SLACK {
        return Some(format!(
            "mem_fetches {:.1} vs sim {mem} ({p:?})",
            cap.mem_fetches
        ));
    }
    None
}

/// Shrink a diverging point — smaller problem, then fewer threads, then a
/// smaller chunk — keeping the divergence alive at every step.
fn minimize(mut p: Params) -> Params {
    loop {
        let mut shrunk = false;
        for cand in [
            Params {
                scale: p.scale.saturating_sub(1),
                ..p
            },
            Params {
                threads: p.threads.saturating_sub(1),
                ..p
            },
            Params {
                chunk: p.chunk / 2,
                ..p
            },
        ] {
            if cand.scale >= 1
                && cand.threads >= 2
                && cand.chunk >= 1
                && (cand.scale, cand.threads, cand.chunk) != (p.scale, p.threads, p.chunk)
                && divergence(cand).is_some()
            {
                p = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return p;
        }
    }
}

/// Dump a `.loop` reproducer for a diverging point and return its path.
fn dump_reproducer(p: Params) -> std::path::PathBuf {
    let dir = option_env!("CARGO_TARGET_TMPDIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let path = dir.join(format!(
        "analytic_divergence_tpl{}_s{}_t{}_c{}.loop",
        p.template, p.scale, p.threads, p.chunk
    ));
    std::fs::write(&path, kernel_to_dsl(&kernel_at(p))).expect("write reproducer");
    path
}

fn check_point(p: Params) {
    if let Some(msg) = divergence(p) {
        let small = minimize(p);
        let path = dump_reproducer(small);
        panic!(
            "analytic/sim divergence: {msg}\nminimized to {small:?}\n\
             reproducer: {} (run `fsdetect --path analytic {}`)",
            path.display(),
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline differential property: >= 256 random (template, scale,
    /// threads, chunk) points, zero panics, every in-fragment prediction
    /// within the stated bounds, every fallback reference-identical.
    #[test]
    fn analytic_predictions_within_bounds(
        template in 0usize..NUM_TEMPLATES,
        scale in 1u64..4,
        threads in 2u32..9,
        chunk in prop::sample::select(vec![1u64, 2, 4, 16]),
    ) {
        check_point(Params { template, scale, threads, chunk });
    }
}

/// Deterministic sweep so each template is exercised at least once per run
/// even if the random sampler clusters; reports the fragment-coverage rate.
#[test]
fn every_template_checked_and_fallbacks_reported() {
    let mut in_fragment = 0u32;
    let mut total = 0u32;
    for template in 0..NUM_TEMPLATES {
        for threads in [2u32, 8] {
            let p = Params {
                template,
                scale: 2,
                threads,
                chunk: 2,
            };
            check_point(p);
            total += 1;
            if run_fs_model(&kernel_at(p), &cfg(p, FsPath::Analytic))
                .capacity
                .is_some()
            {
                in_fragment += 1;
            }
        }
    }
    println!("analytic fragment coverage: {in_fragment}/{total} sweep points");
    // The bundled corpus shapes all sit inside the decidable fragment.
    assert_eq!(in_fragment, total, "corpus-shaped kernels fell back");
}

/// The bundled corpus at default sizes dispatches analytically with zero
/// fallbacks, and the fallback counter observably ticks when a kernel
/// leaves the fragment.
#[test]
fn corpus_dispatches_and_fallbacks_are_counted() {
    fs_obs::configure(fs_obs::ObsConfig::enabled());
    for name in DSL_CORPUS {
        let kernel = fs_core::corpus_kernel(name).expect("bundled kernel parses");
        let mut c = FsModelConfig::for_machine(&presets::paper48(), 8);
        c.path = FsPath::Analytic;
        let before = fs_obs::counters::FS_ANALYTIC_FALLBACKS.get();
        let r = run_fs_model(&kernel, &c);
        let after = fs_obs::counters::FS_ANALYTIC_FALLBACKS.get();
        assert_eq!(before, after, "{name}: bundled kernel fell back");
        assert!(r.capacity.is_some(), "{name}: no capacity prediction");
    }

    // Truncated-run configs leave the fragment: the counter must tick.
    let kernel = fs_core::corpus_kernel("stencil").unwrap();
    let mut c = FsModelConfig::for_machine(&presets::paper48(), 8);
    c.path = FsPath::Analytic;
    c.max_chunk_runs = Some(1);
    let before = fs_obs::counters::FS_ANALYTIC_FALLBACKS.get();
    let r = run_fs_model(&kernel, &c);
    assert!(r.capacity.is_none());
    assert!(
        fs_obs::counters::FS_ANALYTIC_FALLBACKS.get() > before,
        "fallback was not counted"
    );
}
