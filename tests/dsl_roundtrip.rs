//! Integration: the DSL front-end and pretty-printer are exact inverses on
//! every kernel the library ships, and on randomly generated kernels.

use loop_ir::dsl::parse_kernel;
use loop_ir::pretty::kernel_to_dsl;
use loop_ir::{kernels, validate};
use proptest::prelude::*;

#[test]
fn builtin_kernels_roundtrip_exactly() {
    for k in kernels::all_kernels_small() {
        let src = kernel_to_dsl(&k);
        let back = parse_kernel(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", k.name));
        assert_eq!(k, back, "{}", k.name);
        // And the second generation is a fixed point.
        assert_eq!(src, kernel_to_dsl(&back));
    }
}

#[test]
fn paper_scale_kernels_roundtrip() {
    for k in [
        kernels::linear_regression(9600, 128, 1),
        kernels::heat_diffusion(5000, 5000, 64),
        kernels::dft(4096, 4096, 16),
    ] {
        let src = kernel_to_dsl(&k);
        let back = parse_kernel(&src).unwrap();
        assert_eq!(k, back);
        validate(&back).unwrap();
    }
}

proptest! {
    /// Random rectangular 2-level kernels with random strides/offsets and
    /// chunk sizes survive print -> parse unchanged.
    #[test]
    fn random_stencils_roundtrip(
        n in 4u64..64,
        m in 4u64..64,
        chunk in 1u64..16,
        offs in prop::collection::vec(-2i64..=2, 1..5),
        par_outer in any::<bool>(),
        coeff in 1i64..3,
    ) {
        let mut b = loop_ir::KernelBuilder::new("rand");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        // Generous bounds so offsets stay inside.
        let a = b.array("a", &[n + 8, coeff as u64 * (m + 8)], loop_ir::ScalarType::F64);
        let out = b.array("o", &[n + 8, m + 8], loop_ir::ScalarType::F64);
        if par_outer {
            b.parallel_for(i, 2, (n - 1) as i64, loop_ir::Schedule::Static { chunk });
            b.seq_for(j, 2, (m - 1) as i64);
        } else {
            b.seq_for(i, 2, (n - 1) as i64);
            b.parallel_for(j, 2, (m - 1) as i64, loop_ir::Schedule::Static { chunk });
        }
        let mut rhs = loop_ir::Expr::num(0.5);
        for &o in &offs {
            rhs = loop_ir::Expr::add(
                rhs,
                loop_ir::Expr::read(loop_ir::ArrayRef::read(
                    a,
                    vec![
                        loop_ir::AffineExpr::linear(i, 1, o),
                        loop_ir::AffineExpr::linear(j, coeff, o.abs()),
                    ],
                )),
            );
        }
        b.stmt(loop_ir::Stmt::assign(
            loop_ir::ArrayRef::write(out, vec![loop_ir::AffineExpr::var(i), loop_ir::AffineExpr::var(j)]),
            rhs,
        ));
        let k = b.build();
        validate(&k).unwrap();
        let src = kernel_to_dsl(&k);
        let back = parse_kernel(&src).unwrap();
        prop_assert_eq!(k, back);
    }

    /// Round numbers written by the printer always re-lex as one float.
    #[test]
    fn float_literals_roundtrip(v in -1e12f64..1e12) {
        let mut b = loop_ir::KernelBuilder::new("f");
        let i = b.loop_var("i");
        let a = b.array("a", &[8], loop_ir::ScalarType::F64);
        b.parallel_for(i, 0, 8, loop_ir::Schedule::Static { chunk: 1 });
        b.stmt(loop_ir::Stmt::assign(
            loop_ir::ArrayRef::write(a, vec![loop_ir::AffineExpr::var(i)]),
            loop_ir::Expr::num(v),
        ));
        let k = b.build();
        let back = parse_kernel(&kernel_to_dsl(&k)).unwrap();
        prop_assert_eq!(k, back);
    }
}

#[test]
fn parse_errors_carry_positions() {
    let cases = [
        ("kernel k { array a[4]: f64;\n  parallel for i in 0..4 { a[i] = 1.0; } }", "schedule"),
        ("kernel k { array a[4]: f64;\n  parallel for i in 0..4 schedule(static, 1) { b[i] = 1.0; } }", "unknown array"),
        ("kernel k {\n  array a[4]: f32x;\n}", "unknown scalar type"),
    ];
    for (src, needle) in cases {
        let err = parse_kernel(src).unwrap_err();
        assert!(
            err.message.contains(needle),
            "expected '{needle}' in: {err}"
        );
        assert!(err.line >= 1 && err.col >= 1);
    }
}
