//! Integration: the paper's model vs. the related-work baseline.
//!
//! §V of the paper surveys detectors that find false sharing from address
//! sets or traces but "are applied at runtime and incur some amount of
//! overhead", and cannot say what the sharing *costs*. Our
//! [`cache_sim::SharingAnalysis`] implements that address-set family; these
//! tests pin down the relationship between the two tools:
//!
//! * they agree on *whether* a kernel false-shares and on the victim lines;
//! * only the cost model distinguishes cheap FS from expensive FS — the
//!   quantitative information the paper's contribution adds.

use cache_sim::SharingAnalysis;
use cost_model::{analyze_loop, run_fs_model, AnalysisOptions, FsModelConfig};
use loop_ir::kernels;
use machine::presets;

fn model(k: &loop_ir::Kernel, threads: u32) -> cost_model::FsModelResult {
    run_fs_model(k, &FsModelConfig::for_machine(&presets::paper48(), threads))
}

#[test]
fn detectors_agree_on_the_verdict() {
    let cases: Vec<(loop_ir::Kernel, bool)> = vec![
        (kernels::dotprod_partials(8, 32, false), true),
        (kernels::dotprod_partials(8, 32, true), false),
        (kernels::linear_regression(64, 8, 1), true),
        (kernels::linear_regression_padded(64, 8, 1), false),
        (kernels::transpose(32, 32, 1), true),
        (kernels::heat_diffusion(10, 130, 1), true),
        // chunk 64 on 512 elements aligns block boundaries with line
        // boundaries: genuinely FS-free. chunk 12 misaligns them.
        (kernels::saxpy(512, 64), false),
        (kernels::saxpy(512, 12), true),
    ];
    for (k, expect_fs) in cases {
        let baseline = SharingAnalysis::of_kernel(&k, 8, 64);
        let m = model(&k, 8);
        assert_eq!(
            baseline.has_false_sharing(),
            expect_fs,
            "baseline on {}",
            k.name
        );
        assert_eq!(m.fs_cases > 0, expect_fs, "model on {}", k.name);
    }
}

#[test]
fn victim_lines_coincide() {
    for k in [
        kernels::dotprod_partials(8, 32, false),
        kernels::linear_regression(64, 8, 1),
        kernels::dft(16, 128, 1),
    ] {
        let baseline = SharingAnalysis::of_kernel(&k, 8, 64);
        let m = model(&k, 8);
        let base_set: std::collections::HashSet<u64> = baseline
            .false_shared_lines()
            .iter()
            .map(|&(l, _)| l)
            .collect();
        // Every line the model blames must be one the baseline flags (the
        // baseline is exhaustive over the address sets).
        for (line, cases) in m.top_lines(10) {
            assert!(
                base_set.contains(&line),
                "{}: model blames line {line} ({cases} cases) unknown to baseline",
                k.name
            );
        }
    }
}

/// The baseline cannot rank kernels by *impact*: heat and DFT both have
/// plenty of falsely-shared lines, but only the cost model knows DFT's
/// RMW sharing is several times more expensive.
#[test]
fn only_the_model_quantifies_impact() {
    let machine = presets::paper48();
    let heat = kernels::heat_diffusion(18, 514, 1);
    let dft = kernels::dft(32, 512, 1);

    let b_heat = SharingAnalysis::of_kernel(&heat, 8, 64);
    let b_dft = SharingAnalysis::of_kernel(&dft, 8, 64);
    assert!(b_heat.has_false_sharing() && b_dft.has_false_sharing());

    let c_heat = analyze_loop(&heat, &machine, &AnalysisOptions::new(8));
    let c_dft = analyze_loop(&dft, &machine, &AnalysisOptions::new(8));
    assert!(
        c_dft.fs_fraction() > 1.5 * c_heat.fs_fraction(),
        "model: dft {:.1}% vs heat {:.1}%",
        c_dft.fs_fraction() * 100.0,
        c_heat.fs_fraction() * 100.0
    );
}

/// Chunking shrinks the falsely-shared *set* (baseline view) and the FS
/// *frequency* (model view) together.
#[test]
fn both_views_improve_with_chunking() {
    let line_count = |chunk| {
        SharingAnalysis::of_kernel(&kernels::stencil1d(1026, chunk), 8, 64)
            .false_shared_lines()
            .len()
    };
    let case_count = |chunk| model(&kernels::stencil1d(1026, chunk), 8).fs_cases;
    assert!(line_count(1) > line_count(64));
    assert!(case_count(1) > case_count(64));
}

/// The baseline's sharer counts match the model's conflict multiplicity on
/// the fully-contended line.
#[test]
fn sharer_counts_match_model_multiplicity() {
    let k = kernels::dotprod_partials(8, 16, false);
    let baseline = SharingAnalysis::of_kernel(&k, 8, 64);
    let hot = baseline.false_shared_lines();
    assert_eq!(hot[0].1.sharer_count(), 8);
    let m = model(&k, 8);
    // Each iteration performs two accesses (the accumulator's read and
    // write) to the contended line; in the persistent (paper) view each
    // sees 7 remote Modified copies, while the invalidating event view
    // counts one physical miss per iteration: cases/events -> ~14.
    let ratio = m.fs_cases as f64 / m.fs_events.max(1) as f64;
    assert!(
        (11.0..=14.5).contains(&ratio),
        "multiplicity ratio {ratio:.2}"
    );
}
