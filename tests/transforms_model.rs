//! Integration: the compiler workflow the cost models exist for — estimate
//! a loop's cost, transform it (interchange / tile / unroll / pad /
//! reschedule), estimate again, and keep the cheaper version. Verifies the
//! model's verdicts against the MESI simulator.

use cache_sim::{simulate_kernel, SimOptions};
use cost_model::{analyze_loop, AnalysisOptions};
use loop_ir::transforms::{interchange, tile, unroll_innermost, with_chunk};
use loop_ir::validate::validate_bounds;
use loop_ir::{kernels, Kernel};
use machine::presets;

fn total_cycles(k: &Kernel, threads: u32) -> f64 {
    analyze_loop(k, &presets::paper48(), &AnalysisOptions::new(threads)).total_cycles
}

fn sim_makespan(k: &Kernel, threads: u32) -> u64 {
    simulate_kernel(k, &presets::paper48(), SimOptions::new(threads)).makespan_cycles()
}

/// Tiling the parallel loop coarsens each thread's ownership exactly like a
/// larger chunk: the model must price the transformed nest lower, and the
/// simulator must agree.
#[test]
fn tiling_the_parallel_loop_removes_false_sharing() {
    let base = kernels::stencil1d(1026, 1); // trip 1024, chunk 1
    let tiled = tile(&base, 0, 64).unwrap(); // 16 parallel tiles of 64
    validate_bounds(&tiled).unwrap();

    let c_base = analyze_loop(&base, &presets::paper48(), &AnalysisOptions::new(8));
    let c_tiled = analyze_loop(&tiled, &presets::paper48(), &AnalysisOptions::new(8));
    assert!(
        c_tiled.fs.fs_cases * 10 < c_base.fs.fs_cases.max(1),
        "tiling must kill FS: {} -> {}",
        c_base.fs.fs_cases,
        c_tiled.fs.fs_cases
    );
    assert!(c_tiled.total_cycles < c_base.total_cycles);

    let s_base = sim_makespan(&base, 8);
    let s_tiled = sim_makespan(&tiled, 8);
    assert!(
        s_tiled < s_base,
        "simulator agrees: {s_base} -> {s_tiled} cycles"
    );
}

/// Tiling a *sequential* loop must not change the FS verdict materially
/// (ownership is untouched).
#[test]
fn tiling_a_sequential_loop_preserves_fs() {
    let base = kernels::matvec(64, 64, 1);
    let tiled = tile(&base, 1, 16).unwrap();
    let c_base = analyze_loop(&base, &presets::paper48(), &AnalysisOptions::new(8));
    let c_tiled = analyze_loop(&tiled, &presets::paper48(), &AnalysisOptions::new(8));
    let ratio = c_tiled.fs.fs_events as f64 / c_base.fs.fs_events.max(1) as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "FS events {} -> {}",
        c_base.fs.fs_events,
        c_tiled.fs.fs_events
    );
}

/// Interchanging matvec (parallel rows -> parallel columns... here: swap
/// i/j so the reduction loop becomes outermost) changes the FS exposure;
/// the model and the simulator must agree on the *direction*.
#[test]
fn interchange_direction_agreement() {
    let base = kernels::matvec(64, 64, 1); // parallel i, inner j
    let swapped = interchange(&base, 0, 1).unwrap(); // seq j outer, parallel i inner
    validate_bounds(&swapped).unwrap();

    let m_base = analyze_loop(&base, &presets::paper48(), &AnalysisOptions::new(8));
    let m_sw = analyze_loop(&swapped, &presets::paper48(), &AnalysisOptions::new(8));
    let s_base = sim_makespan(&base, 8);
    let s_sw = sim_makespan(&swapped, 8);

    let model_prefers_base = m_base.total_cycles <= m_sw.total_cycles;
    let sim_prefers_base = s_base <= s_sw;
    assert_eq!(
        model_prefers_base, sim_prefers_base,
        "model ({:.0} vs {:.0}) and sim ({} vs {}) must rank alike",
        m_base.total_cycles, m_sw.total_cycles, s_base, s_sw
    );
}

/// Unrolling multiplies per-iteration work and divides the iteration count;
/// the processor model's totals must stay within a small factor (unrolling
/// alone doesn't change the algorithm).
#[test]
fn unrolling_keeps_total_compute_stable() {
    let base = kernels::matvec(32, 64, 1);
    let unrolled = unroll_innermost(&base, 4).unwrap();
    let m = presets::paper48();
    let c_base = analyze_loop(&base, &m, &AnalysisOptions::new(4));
    let c_unr = analyze_loop(&unrolled, &m, &AnalysisOptions::new(4));
    // 4x ops per iteration, 1/4 the iterations.
    assert_eq!(
        c_unr.iters_per_thread * 4.0,
        c_base.iters_per_thread,
        "iteration count divides"
    );
    let total_ratio = c_unr.total_cycles / c_base.total_cycles;
    assert!(
        (0.4..=1.6).contains(&total_ratio),
        "total cost roughly preserved: ratio {total_ratio:.2}"
    );
    // Unrolling is itself a mild FS mitigation: one unrolled iteration
    // bursts 4 accesses to the accumulator line between interleaving
    // points, so the line ping-pongs once per burst instead of once per
    // original iteration — events drop by ~the unroll factor.
    let ev_ratio = c_unr.fs.fs_events as f64 / c_base.fs.fs_events.max(1) as f64;
    assert!(
        (0.15..=0.4).contains(&ev_ratio),
        "events ratio {ev_ratio:.2} (expected ~1/factor)"
    );
}

/// The chunk transformation and the tiling transformation of the parallel
/// loop are equivalent reschedulings; their modeled costs must be close.
#[test]
fn chunking_and_parallel_tiling_agree() {
    let base = kernels::stencil1d(1026, 1);
    let chunked = with_chunk(&base, 64);
    let tiled = tile(&base, 0, 64).unwrap();
    let c_chunk = total_cycles(&chunked, 8);
    let c_tile = total_cycles(&tiled, 8);
    let ratio = c_tile / c_chunk;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "chunk-64 {c_chunk:.0} vs tile-64 {c_tile:.0} (ratio {ratio:.2})"
    );
}

/// Transformed kernels keep round-tripping through the DSL, so `fsdetect
/// --eliminate` can always print its output as source.
#[test]
fn transformed_kernels_roundtrip_dsl() {
    let base = kernels::matvec(16, 32, 1);
    for k in [
        interchange(&base, 0, 1).unwrap(),
        tile(&base, 1, 8).unwrap(),
        unroll_innermost(&base, 2).unwrap(),
    ] {
        let src = loop_ir::pretty::kernel_to_dsl(&k);
        let back =
            loop_ir::dsl::parse_kernel(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", k.name));
        assert_eq!(k, back, "{}", k.name);
    }
}

/// End-to-end compiler loop: enumerate candidate schedules + layouts with
/// the public API and confirm the chosen winner simulates fastest among the
/// candidates.
#[test]
fn model_choice_matches_simulation_ranking() {
    let base = kernels::linear_regression(192, 32, 1);
    let candidates: Vec<Kernel> = vec![
        base.clone(),
        with_chunk(&base, 4),
        with_chunk(&base, 16),
        kernels::linear_regression_padded(192, 32, 1),
    ];
    let model_best = candidates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| total_cycles(a, 8).total_cmp(&total_cycles(b, 8)))
        .map(|(i, _)| i)
        .unwrap();
    let sim_times: Vec<u64> = candidates.iter().map(|k| sim_makespan(k, 8)).collect();
    let sim_best = sim_times
        .iter()
        .enumerate()
        .min_by_key(|&(_, t)| *t)
        .map(|(i, _)| i)
        .unwrap();
    // Model's pick must be within 25% of the simulator's optimum (exact
    // index agreement is not required — candidates can tie).
    let m = sim_times[model_best] as f64;
    let s = sim_times[sim_best] as f64;
    assert!(
        m <= s * 1.25,
        "model picked #{model_best} ({m} cy), sim optimum #{sim_best} ({s} cy): {sim_times:?}"
    );
}
