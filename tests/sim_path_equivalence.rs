//! Property test: the optimized measured-side replay (dense directory +
//! batched block generation) is bit-identical on [`SimStats`] to the
//! reference per-access MESI simulator, over randomized DSL-corpus kernels
//! × team sizes × schedules × interleave policies; plus a determinism test
//! that the pooled experiment harness returns byte-identical results to a
//! serial run.

use fs_core::corpus_kernel_with_consts;
use fs_core::simulation::{simulate_kernel, Interleave, SimOptions, SimPath, SimStats};
use loop_ir::Kernel;
use machine::presets;
use proptest::prelude::*;

/// Build a corpus kernel at a randomized (small) problem size. The const
/// names per kernel match `crates/core/src/corpus.rs`; sizes are scaled
/// down so a proptest case stays fast — every access is replayed through
/// both simulators.
fn sized_corpus_kernel(name: &str, scale: u64) -> Kernel {
    let s = scale as i64; // 1..=3
    let consts: Vec<(&str, i64)> = match name {
        "dft" => vec![("N", 8 * s), ("K", 32 * s)],
        "heat" => vec![("N", 6 * s), ("M", 32 * s + 2)],
        "histogram" => vec![("T", 8), ("N", 64 * s)],
        "linreg" => vec![("N", 48 * s), ("M", 8 * s)],
        "matmul" => vec![("N", 8 * s), ("M", 8 * s), ("P", 8)],
        "stencil" => vec![("N", 64 * s + 2)],
        other => panic!("unknown corpus kernel {other}"),
    };
    corpus_kernel_with_consts(name, &consts).expect("corpus kernel builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Full equivalence across the bundled corpus, both machine presets,
    /// all three interleave policies and the prefetcher toggle.
    #[test]
    fn optimized_replay_matches_reference(
        name in prop::sample::select(vec![
            "dft",
            "heat",
            "histogram",
            "linreg",
            "matmul",
            "stencil",
        ]),
        scale in 1u64..4,
        threads in 1u32..9,
        chunk in prop::sample::select(vec![1u64, 2, 4, 16]),
        interleave in prop::sample::select(vec![
            Interleave::PerIteration,
            Interleave::PerChunk,
            Interleave::PerIterationSkewed,
        ]),
        prefetch in any::<bool>(),
        tiny_machine in any::<bool>(),
    ) {
        let mut kernel = sized_corpus_kernel(name, scale);
        kernel.nest.parallel.schedule = loop_ir::Schedule::Static { chunk };
        let machine = if tiny_machine {
            presets::tiny_test()
        } else {
            presets::paper48()
        };
        let mut opts = SimOptions::new(threads).with_interleave(interleave);
        opts.prefetch = prefetch;
        let optimized = simulate_kernel(&kernel, &machine, opts.with_path(SimPath::Optimized));
        let reference = simulate_kernel(&kernel, &machine, opts.with_path(SimPath::Reference));
        prop_assert_eq!(
            &optimized,
            &reference,
            "replay paths diverge for {} scale={} threads={} chunk={} \
             interleave={:?} prefetch={} machine={}",
            name, scale, threads, chunk, interleave, prefetch,
            if tiny_machine { "tiny_test" } else { "paper48" }
        );
    }
}

/// The parallel experiment harness must be a pure reordering of work:
/// replaying the same grid serially and on the pool yields byte-identical
/// stats, in the same (canonical index) order, for every interleave
/// policy.
#[test]
fn pooled_harness_replays_are_deterministic() {
    let machine = presets::paper48();
    let kernel = loop_ir::kernels::transpose(48, 48, 1);
    let policies = [
        Interleave::PerIteration,
        Interleave::PerChunk,
        Interleave::PerIterationSkewed,
    ];
    let grid: Vec<SimStats> = policies
        .iter()
        .map(|&il| simulate_kernel(&kernel, &machine, SimOptions::new(6).with_interleave(il)))
        .collect();
    for workers in [1usize, 4] {
        let got = fs_core::run_indexed(policies.len(), workers, |i| {
            simulate_kernel(
                &kernel,
                &machine,
                SimOptions::new(6).with_interleave(policies[i]),
            )
        });
        assert_eq!(got, grid, "workers={workers}");
    }
}
