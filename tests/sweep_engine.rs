//! Integration tests for the parallel memoized sweep engine: determinism
//! (parallel == sequential, byte for byte), memoization correctness (cached
//! results never drift from direct analysis), and the advisor staying
//! faithful to the unmemoized path it replaced.

use fs_core::{
    machines, recommend_chunk, try_analyze, AnalysisOptions, EarlyExit, EvalMode, JsonValue,
    SweepEngine, SweepGrid,
};

/// The full bundled corpus (kernels/*.loop) as named kernels, scaled down
/// via const overrides so full-model sweeps stay fast in debug builds. The
/// FS structure (packed accumulators, shared rows, shared bins, ...) is
/// size-independent.
const SCALED_CORPUS: &[(&str, &[(&str, i64)])] = &[
    ("linreg", &[("N", 96), ("M", 16)]),
    ("heat", &[("N", 18), ("M", 130)]),
    ("dft", &[("N", 16), ("K", 128)]),
    ("stencil", &[("N", 514)]),
    ("histogram", &[("N", 512)]),
    ("matmul", &[("N", 16), ("M", 32), ("P", 16)]),
];

fn scaled_kernel(name: &str) -> loop_ir::Kernel {
    let (_, consts) = SCALED_CORPUS
        .iter()
        .find(|(n, _)| *n == name)
        .expect("kernel in scaled corpus");
    fs_core::corpus_kernel_with_consts(name, consts).expect("bundled kernel parses")
}

fn corpus_kernels() -> Vec<(String, loop_ir::Kernel)> {
    let names: Vec<&str> = fs_core::CORPUS.iter().map(|e| e.name).collect();
    assert!(names.len() >= 6, "bundled corpus shrank: {names:?}");
    for (n, _) in SCALED_CORPUS {
        assert!(names.contains(n), "bundled corpus lost '{n}'");
    }
    SCALED_CORPUS
        .iter()
        .map(|(n, _)| (n.to_string(), scaled_kernel(n)))
        .collect()
}

fn corpus_grid() -> SweepGrid {
    SweepGrid::new(
        corpus_kernels(),
        ("paper48".to_string(), machines::paper48()),
        vec![2, 4, 8],
        vec![1, 4, 16, 64],
    )
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential_over_corpus() {
    let grid = corpus_grid();
    let seq = SweepEngine::new().workers(1).run(&grid).unwrap();
    for workers in [2, 4, 8] {
        let par = SweepEngine::new().workers(workers).run(&grid).unwrap();
        assert_eq!(
            seq.to_json().render(),
            par.to_json().render(),
            "{workers}-worker sweep diverged from sequential"
        );
    }
}

#[test]
fn memoized_sweep_matches_direct_analysis() {
    let grid = corpus_grid();
    let result = SweepEngine::new().run(&grid).unwrap();
    assert_eq!(result.outcomes.len(), grid.len());
    for o in &result.outcomes {
        let kernel = scaled_kernel(&o.kernel);
        let k = fs_core::kernel_at_chunk(&kernel, o.chunk);
        let direct =
            try_analyze(&k, &machines::paper48(), &AnalysisOptions::new(o.threads)).unwrap();
        assert_eq!(
            o.cost.total_cycles, direct.cost.total_cycles,
            "{}@chunk{} t{}",
            o.kernel, o.chunk, o.threads
        );
        assert_eq!(o.cost.fs.fs_cases, direct.cost.fs.fs_cases);
    }
}

#[test]
fn repeated_grid_run_is_all_memo_hits() {
    let grid = corpus_grid();
    let engine = SweepEngine::new();
    let first = engine.run(&grid).unwrap();
    assert_eq!(first.memo_hits, 0);
    assert_eq!(first.memo_misses as usize, grid.len());
    let second = engine.run(&grid).unwrap();
    assert_eq!(second.memo_hits as usize, grid.len());
    assert_eq!(second.memo_misses, 0);
}

#[test]
fn early_exit_grid_keeps_order_and_bounded_error() {
    let grid = corpus_grid();
    let full = SweepEngine::new().run(&grid).unwrap();
    let fast = SweepEngine::new()
        .mode(EvalMode::EarlyExit(EarlyExit::default()))
        .run(&grid)
        .unwrap();
    assert_eq!(full.outcomes.len(), fast.outcomes.len());
    for (a, b) in full.outcomes.iter().zip(&fast.outcomes) {
        assert_eq!(
            (a.kernel.as_str(), a.machine.as_str(), a.threads, a.chunk),
            (b.kernel.as_str(), b.machine.as_str(), b.threads, b.chunk)
        );
        // The adaptive predictor may extrapolate, but not wildly: the FS
        // *verdict* (significant vs not) must agree within a loose band.
        let fa = a.cost.fs_fraction();
        let fb = b.cost.fs_fraction();
        assert!(
            (fa - fb).abs() < 0.25,
            "{}@chunk{} t{}: full fs {:.3} vs early-exit fs {:.3}",
            a.kernel,
            a.chunk,
            a.threads,
            fa,
            fb
        );
    }
}

#[test]
fn advisor_on_sweep_primitives_matches_direct_sweep() {
    // recommend_chunk now runs on the memoized sweep primitives; its output
    // must be indistinguishable from analyzing each candidate from scratch.
    let m = machines::paper48();
    for (name, kernel) in corpus_kernels() {
        let advice = recommend_chunk(&kernel, &m, 8, 64, None);
        for p in &advice.points {
            let k = fs_core::kernel_at_chunk(&kernel, p.chunk);
            let direct = try_analyze(&k, &m, &AnalysisOptions::new(8)).unwrap();
            assert_eq!(
                p.total_cycles, direct.cost.total_cycles,
                "{name}@chunk{}",
                p.chunk
            );
            assert_eq!(p.fs_cases, direct.cost.fs.fs_cases);
            assert_eq!(p.fs_cycles, direct.cost.fs_cycles);
        }
        let best = advice
            .points
            .iter()
            .min_by(|a, b| a.total_cycles.total_cmp(&b.total_cycles))
            .unwrap();
        assert_eq!(advice.best_chunk, best.chunk, "{name}");
    }
}

#[test]
fn sweep_json_document_shape_is_stable() {
    let grid = SweepGrid::new(
        vec![("histogram".to_string(), scaled_kernel("histogram"))],
        ("paper48".to_string(), machines::paper48()),
        vec![4],
        vec![1],
    );
    let r = SweepEngine::new().run(&grid).unwrap();
    let json = r.to_json().render();
    assert!(json.starts_with(r#"{"points":1,"memo_hits":0,"memo_misses":1,"results":[{"kernel":"histogram","machine":"paper48","threads":4,"chunk":1,"#));
    // Round-trip stability: rendering twice yields the same bytes.
    assert_eq!(json, r.to_json().render());
    assert!(matches!(r.to_json(), JsonValue::Obj(_)));
}
