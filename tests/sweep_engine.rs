//! Integration tests for the parallel memoized sweep engine: determinism
//! (parallel == sequential, byte for byte), memoization correctness (cached
//! results never drift from direct analysis), and the advisor staying
//! faithful to the unmemoized path it replaced.

use fs_core::{
    machines, recommend_chunk, try_analyze, AnalysisOptions, EarlyExit, EvalMode, JsonValue,
    SweepEngine, SweepGrid,
};

/// The full bundled corpus (kernels/*.loop) as named kernels, scaled down
/// via const overrides so full-model sweeps stay fast in debug builds. The
/// FS structure (packed accumulators, shared rows, shared bins, ...) is
/// size-independent.
const SCALED_CORPUS: &[(&str, &[(&str, i64)])] = &[
    ("linreg", &[("N", 96), ("M", 16)]),
    ("heat", &[("N", 18), ("M", 130)]),
    ("dft", &[("N", 16), ("K", 128)]),
    ("stencil", &[("N", 514)]),
    ("histogram", &[("N", 512)]),
    ("matmul", &[("N", 16), ("M", 32), ("P", 16)]),
];

fn scaled_kernel(name: &str) -> loop_ir::Kernel {
    let (_, consts) = SCALED_CORPUS
        .iter()
        .find(|(n, _)| *n == name)
        .expect("kernel in scaled corpus");
    fs_core::corpus_kernel_with_consts(name, consts).expect("bundled kernel parses")
}

fn corpus_kernels() -> Vec<(String, loop_ir::Kernel)> {
    let names: Vec<&str> = fs_core::CORPUS.iter().map(|e| e.name).collect();
    assert!(names.len() >= 6, "bundled corpus shrank: {names:?}");
    for (n, _) in SCALED_CORPUS {
        assert!(names.contains(n), "bundled corpus lost '{n}'");
    }
    SCALED_CORPUS
        .iter()
        .map(|(n, _)| (n.to_string(), scaled_kernel(n)))
        .collect()
}

fn corpus_grid() -> SweepGrid {
    SweepGrid::new(
        corpus_kernels(),
        ("paper48".to_string(), machines::paper48()),
        vec![2, 4, 8],
        vec![1, 4, 16, 64],
    )
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential_over_corpus() {
    let grid = corpus_grid();
    let seq = SweepEngine::new().workers(1).run(&grid).unwrap();
    for workers in [2, 4, 8] {
        let par = SweepEngine::new().workers(workers).run(&grid).unwrap();
        assert_eq!(
            seq.to_json().render(),
            par.to_json().render(),
            "{workers}-worker sweep diverged from sequential"
        );
    }
}

#[test]
fn memoized_sweep_matches_direct_analysis() {
    let grid = corpus_grid();
    let result = SweepEngine::new().run(&grid).unwrap();
    assert_eq!(result.outcomes.len(), grid.len());
    for o in &result.outcomes {
        let kernel = scaled_kernel(&o.kernel);
        let k = fs_core::kernel_at_chunk(&kernel, o.chunk);
        let direct =
            try_analyze(&k, &machines::paper48(), &AnalysisOptions::new(o.threads)).unwrap();
        assert_eq!(
            o.cost.total_cycles, direct.cost.total_cycles,
            "{}@chunk{} t{}",
            o.kernel, o.chunk, o.threads
        );
        assert_eq!(o.cost.fs.fs_cases, direct.cost.fs.fs_cases);
    }
}

#[test]
fn repeated_grid_run_is_all_memo_hits() {
    let grid = corpus_grid();
    let engine = SweepEngine::new();
    let first = engine.run(&grid).unwrap();
    assert_eq!(first.memo_hits, 0);
    assert_eq!(first.memo_misses as usize, grid.len());
    let second = engine.run(&grid).unwrap();
    assert_eq!(second.memo_hits as usize, grid.len());
    assert_eq!(second.memo_misses, 0);
}

#[test]
fn early_exit_grid_keeps_order_and_bounded_error() {
    let grid = corpus_grid();
    let full = SweepEngine::new().run(&grid).unwrap();
    let fast = SweepEngine::new()
        .mode(EvalMode::EarlyExit(EarlyExit::default()))
        .run(&grid)
        .unwrap();
    assert_eq!(full.outcomes.len(), fast.outcomes.len());
    for (a, b) in full.outcomes.iter().zip(&fast.outcomes) {
        assert_eq!(
            (a.kernel.as_str(), a.machine.as_str(), a.threads, a.chunk),
            (b.kernel.as_str(), b.machine.as_str(), b.threads, b.chunk)
        );
        // The adaptive predictor may extrapolate, but not wildly: the FS
        // *verdict* (significant vs not) must agree within a loose band.
        let fa = a.cost.fs_fraction();
        let fb = b.cost.fs_fraction();
        assert!(
            (fa - fb).abs() < 0.25,
            "{}@chunk{} t{}: full fs {:.3} vs early-exit fs {:.3}",
            a.kernel,
            a.chunk,
            a.threads,
            fa,
            fb
        );
    }
}

#[test]
fn advisor_on_sweep_primitives_matches_direct_sweep() {
    // recommend_chunk now runs on the memoized sweep primitives; its output
    // must be indistinguishable from analyzing each candidate from scratch.
    let m = machines::paper48();
    for (name, kernel) in corpus_kernels() {
        let advice = recommend_chunk(&kernel, &m, 8, 64, None);
        for p in &advice.points {
            let k = fs_core::kernel_at_chunk(&kernel, p.chunk);
            let direct = try_analyze(&k, &m, &AnalysisOptions::new(8)).unwrap();
            assert_eq!(
                p.total_cycles, direct.cost.total_cycles,
                "{name}@chunk{}",
                p.chunk
            );
            assert_eq!(p.fs_cases, direct.cost.fs.fs_cases);
            assert_eq!(p.fs_cycles, direct.cost.fs_cycles);
        }
        let best = advice
            .points
            .iter()
            .min_by(|a, b| a.total_cycles.total_cmp(&b.total_cycles))
            .unwrap();
        assert_eq!(advice.best_chunk, best.chunk, "{name}");
    }
}

#[test]
fn memo_accounting_survives_clear_memo() {
    let grid = corpus_grid();
    let n = grid.len() as u64;
    let engine = SweepEngine::new();
    assert_eq!(engine.memo_stats(), (0, 0));

    engine.run(&grid).unwrap();
    assert_eq!(engine.memo_stats(), (0, n), "cold cache: all misses");
    engine.run(&grid).unwrap();
    assert_eq!(engine.memo_stats(), (n, n), "warm cache: all hits");

    // clear_memo drops the entries but NOT the lifetime counters — they
    // describe the cache's history, not its contents. A re-run therefore
    // misses everything again on top of the accumulated stats.
    engine.clear_memo();
    assert_eq!(engine.memo_stats(), (n, n), "clear keeps lifetime counters");
    engine.run(&grid).unwrap();
    assert_eq!(engine.memo_stats(), (n, 2 * n), "cleared cache: all misses");
    engine.run(&grid).unwrap();
    assert_eq!(engine.memo_stats(), (2 * n, 2 * n));
}

#[test]
fn concurrent_runs_account_every_lookup() {
    let grid = corpus_grid();
    let n = grid.len() as u64;
    let reference = SweepEngine::new().workers(1).run(&grid).unwrap();
    let engine = std::sync::Arc::new(SweepEngine::new().workers(2));
    const RUNS: u64 = 4;

    let handles: Vec<_> = (0..RUNS)
        .map(|_| {
            let engine = std::sync::Arc::clone(&engine);
            let grid = corpus_grid();
            std::thread::spawn(move || engine.run(&grid).unwrap())
        })
        .collect();
    // Memoization must be invisible in the results, no matter how the
    // racing runs interleave. The document header's memo_hits/memo_misses
    // legitimately vary per racing run, so compare from `results` on.
    fn results_payload(doc: String) -> String {
        let at = doc.find("\"results\"").expect("results field");
        doc[at..].to_string()
    }
    let want = results_payload(reference.to_json().render());
    for h in handles {
        let r = h.join().expect("concurrent run panicked");
        assert_eq!(results_payload(r.to_json().render()), want);
    }

    let (hits, misses) = engine.memo_stats();
    // Every lookup is either a hit or a miss — the race may recompute a
    // point more than once (miss before another thread's insert lands),
    // but it can never lose accounting.
    assert_eq!(hits + misses, RUNS * n, "hits {hits} + misses {misses}");
    assert!(misses >= n, "at least one full grid of cold misses");
    assert!(hits >= n, "later runs hit the shared cache");
}

#[test]
fn obs_counters_mirror_memo_accounting() {
    let grid = corpus_grid();
    let n = grid.len() as u64;
    fs_core::obs::configure(fs_core::obs::ObsConfig::enabled());
    let before = fs_core::obs::snapshot();
    let engine = SweepEngine::new();
    engine.run(&grid).unwrap();
    engine.run(&grid).unwrap();
    let after = fs_core::obs::snapshot();
    fs_core::obs::configure(fs_core::obs::ObsConfig::disabled());
    // Other tests in this binary may run engines concurrently while obs is
    // enabled, so the global registry deltas are lower-bounded, not exact.
    let d_hits = after.counter("sweep.memo_hits") - before.counter("sweep.memo_hits");
    let d_misses = after.counter("sweep.memo_misses") - before.counter("sweep.memo_misses");
    let d_points =
        after.counter("sweep.points_evaluated") - before.counter("sweep.points_evaluated");
    assert!(d_hits >= n, "registry saw this engine's {n} hits: {d_hits}");
    assert!(
        d_misses >= n,
        "registry saw this engine's {n} misses: {d_misses}"
    );
    assert!(
        d_points >= 2 * n,
        "registry saw both runs' points: {d_points}"
    );
}

#[test]
fn point_keys_are_content_fingerprints() {
    use fs_core::point_key;
    let m = machines::paper48();
    let k = scaled_kernel("histogram");

    // Stable across calls and across structurally identical kernels built
    // independently — the key is a content fingerprint, not an identity.
    let path = fs_core::FsPath::default();
    let key = point_key(&k, &m, 8, &EvalMode::Full, path);
    assert_eq!(key, point_key(&k, &m, 8, &EvalMode::Full, path));
    assert_eq!(key, point_key(&k.clone(), &m, 8, &EvalMode::Full, path));
    assert_eq!(
        key,
        point_key(&scaled_kernel("histogram"), &m, 8, &EvalMode::Full, path)
    );

    // Any coordinate change must change the key.
    assert_ne!(key, point_key(&k, &m, 4, &EvalMode::Full, path));
    assert_ne!(
        key,
        point_key(&k, &m, 8, &EvalMode::EarlyExit(EarlyExit::default()), path)
    );
    assert_ne!(
        key,
        point_key(&k, &m, 8, &EvalMode::Full, fs_core::FsPath::Symbolic)
    );
    assert_ne!(
        key,
        point_key(
            &fs_core::kernel_at_chunk(&k, 4),
            &m,
            8,
            &EvalMode::Full,
            path
        )
    );
    let mut other_machine = machines::paper48();
    other_machine.caches.line_size *= 2;
    assert_ne!(key, point_key(&k, &other_machine, 8, &EvalMode::Full, path));
    assert_ne!(
        key,
        point_key(&scaled_kernel("heat"), &m, 8, &EvalMode::Full, path)
    );
}

#[test]
fn sweep_json_document_shape_is_stable() {
    let grid = SweepGrid::new(
        vec![("histogram".to_string(), scaled_kernel("histogram"))],
        ("paper48".to_string(), machines::paper48()),
        vec![4],
        vec![1],
    );
    let r = SweepEngine::new().run(&grid).unwrap();
    let json = r.to_json().render();
    assert!(json.starts_with(r#"{"points":1,"memo_hits":0,"memo_misses":1,"results":[{"kernel":"histogram","machine":"paper48","threads":4,"chunk":1,"#));
    // Round-trip stability: rendering twice yields the same bytes.
    assert_eq!(json, r.to_json().render());
    assert!(matches!(r.to_json(), JsonValue::Obj(_)));
}
