//! Integration: the linear-regression prediction model stays close to the
//! full FS model at a fraction of the evaluation cost (the paper's Tables
//! IV-VI claim), across kernels and team sizes.

use cost_model::{predict_fs, run_fs_model, FsModelConfig};
use loop_ir::{kernels, Kernel};
use machine::presets;

fn cfg(threads: u32) -> FsModelConfig {
    FsModelConfig::for_machine(&presets::paper48(), threads)
}

fn check(kernel: &Kernel, threads: u32, runs: u64, tolerance: f64) {
    let full = run_fs_model(kernel, &cfg(threads));
    let pred = predict_fs(kernel, &cfg(threads), runs)
        .unwrap_or_else(|| panic!("{}: series too short to fit", kernel.name));
    let err = (pred.predicted_cases - full.fs_cases as f64).abs() / full.fs_cases.max(1) as f64;
    assert!(
        err <= tolerance,
        "{} (T={threads}): predicted {:.0} vs modeled {} (err {:.1}%, tol {:.0}%)",
        kernel.name,
        pred.predicted_cases,
        full.fs_cases,
        err * 100.0,
        tolerance * 100.0
    );
    assert!(
        pred.sample.iterations < full.iterations,
        "{}: prediction must evaluate fewer iterations",
        kernel.name
    );
}

#[test]
fn dft_prediction_accurate_across_teams() {
    for threads in [2u32, 4, 8] {
        // Sample enough runs to cross several outer-loop instances.
        let runs = 3 * 256 / threads as u64;
        check(&kernels::dft(96, 256, 1), threads, runs, 0.06);
    }
}

#[test]
fn heat_prediction_accurate() {
    for threads in [4u32, 8] {
        let runs = 3 * 128 / threads as u64;
        check(&kernels::heat_diffusion(66, 130, 1), threads, runs, 0.08);
    }
}

#[test]
fn linreg_prediction_accurate() {
    // Outer-parallel: chunk runs are coarse; a handful suffices.
    check(&kernels::linear_regression(96, 64, 1), 8, 6, 0.15);
    check(&kernels::linear_regression(96, 64, 1), 4, 8, 0.15);
}

#[test]
fn prediction_efficiency_grows_with_problem_size() {
    let k = kernels::dft(256, 512, 1);
    let pred = predict_fs(&k, &cfg(8), 128).unwrap();
    // 128 of 256*64 = 16384 chunk runs evaluated.
    assert!(pred.evaluation_fraction() < 0.01);
    assert!(pred.fit.r2 > 0.99, "r2 = {}", pred.fit.r2);
}

#[test]
fn predicted_events_also_track_full_model() {
    let k = kernels::dft(96, 256, 1);
    let full = run_fs_model(&k, &cfg(8));
    let pred = predict_fs(&k, &cfg(8), 96).unwrap();
    let err = (pred.predicted_events - full.fs_events as f64).abs() / full.fs_events.max(1) as f64;
    assert!(
        err < 0.06,
        "events: {} vs {}",
        pred.predicted_events,
        full.fs_events
    );
}

#[test]
fn non_fs_loops_predict_zero() {
    let k = kernels::linear_regression_padded(96, 32, 1);
    if let Some(pred) = predict_fs(&k, &cfg(8), 6) {
        assert_eq!(pred.predicted_cases, 0.0);
        assert_eq!(pred.predicted_events, 0.0);
    }
}

#[test]
fn series_linearity_matches_fig6() {
    // Fig. 6: cumulative FS cases grow linearly with chunk runs. Check the
    // fit quality on the full series of a steady kernel.
    let k = kernels::dft(64, 256, 1);
    let full = run_fs_model(&k, &cfg(8));
    let pts: Vec<(f64, f64)> = full
        .series
        .iter()
        .map(|&(x, y)| (x as f64, y as f64))
        .collect();
    let fit = cost_model::least_squares(&pts[pts.len() / 4..]).unwrap();
    assert!(
        fit.r2 > 0.999,
        "series should be near-linear, r2 = {}",
        fit.r2
    );
}
