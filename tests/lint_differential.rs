//! Differential oracle for the symbolic lint: random valid kernels are
//! generated from DSL templates, linted in closed form, and replayed
//! through the `FsPath::Reference` simulator. The contract:
//!
//! * `FalseSharing` ⇒ the simulator counts at least one FS case at the same
//!   (threads, chunk) configuration;
//! * `Clean` ⇒ the simulator counts exactly zero;
//! * `Unknown` never occurs — every generated kernel stays inside the
//!   lint's decidable fragment.
//!
//! On divergence the failing configuration is minimized (shrink the trip
//! multiplier, then threads, then chunk) and the smallest diverging kernel
//! is dumped as a `.loop` reproducer for `fslint`/`fsdetect`.

use fs_core::{machines, try_lint_dsl, FsModelConfig, FsPath, LintVerdict};
use proptest::prelude::*;

/// Generator parameters: one point in the template space.
#[derive(Debug, Clone, Copy)]
struct Params {
    template: usize,
    threads: u32,
    chunk: u64,
    /// Trip count multiplier: trip = chunk * threads * k (zero skew).
    k: u64,
    /// Element stride multiplier inside subscripts.
    stride: i64,
}

const NUM_TEMPLATES: usize = 7;

/// Render the DSL source for one parameter point. Every template keeps the
/// per-thread footprint far below the paper machine's 64 KiB L1, so the
/// lint's residency assumption holds in the simulator.
fn render(p: Params) -> String {
    let trip = p.chunk * p.threads as u64 * p.k;
    let s = p.stride;
    match p.template {
        // Strided writes: FS whenever chunk*stride*8 misaligns with lines.
        0 => format!(
            "kernel strided {{
  array A[{n}]: f64;
  array B[{n}]: f64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    B[{s}*i] = A[{s}*i] + 1.0;
  }}
}}",
            n = s as u64 * trip + 1,
            chunk = p.chunk,
        ),
        // Padded elements: one line per iteration, always clean.
        1 => format!(
            "kernel padded {{
  array B[{n}] of {{ v: f64 }} pad 64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    B[{s}*i].v = 2.0;
  }}
}}",
            n = s as u64 * trip + 1,
            chunk = p.chunk,
        ),
        // Histogram-style read-modify-write accumulators.
        2 => format!(
            "kernel rmw {{
  array H[{trip}]: f64;
  array D[{trip}][16]: f64;
  parallel for t in 0..{trip} schedule(static, {chunk}) {{
    for i in 0..16 {{
      H[t] += D[t][i];
    }}
  }}
}}",
            chunk = p.chunk,
        ),
        // Outer sequential loop shifting the written row each instance.
        3 => format!(
            "kernel outer {{
  array A[{r}][{trip}]: f64;
  array B[{r}][{trip}]: f64;
  for r in 0..{r} {{
    parallel for j in 0..{trip} schedule(static, {chunk}) {{
      B[r][j] = A[r][j] * 0.5;
    }}
  }}
}}",
            r = (p.stride as u64).clamp(2, 4),
            chunk = p.chunk,
        ),
        // Struct-field accumulators (linear-regression shape, 16 B elems).
        4 => format!(
            "kernel fields {{
  array S[{trip}] of {{ a: f64, b: f64 }};
  array P[{trip}][8] of {{ x: f64, y: f64 }};
  parallel for j in 0..{trip} schedule(static, {chunk}) {{
    for i in 0..8 {{
      S[j].a += P[j][i].x;
      S[j].b += P[j][i].y;
    }}
  }}
}}",
            chunk = p.chunk,
        ),
        // Full-line element spacing (8 doubles): always clean.
        5 => format!(
            "kernel spaced {{
  array A[{n}]: f64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    A[8*i] = 1.0;
  }}
}}",
            n = 8 * trip + 1,
            chunk = p.chunk,
        ),
        // Negative stride: threads walk the array backwards.
        6 => format!(
            "kernel reversed {{
  array B[{n}]: f64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    B[{last} - {s}*i] = 3.0;
  }}
}}",
            n = s as u64 * (trip - 1) + 1,
            last = s as u64 * (trip - 1),
            chunk = p.chunk,
        ),
        _ => unreachable!("template out of range"),
    }
}

/// Simulated FS cases at the paper machine on the reference path.
fn oracle_cases(source: &str, threads: u32) -> u64 {
    let kernel = fs_core::parse_kernel(source).expect("generated kernel parses");
    let mut cfg = FsModelConfig::for_machine(&machines::paper48(), threads);
    cfg.path = FsPath::Reference;
    fs_core::run_fs_model(&kernel, &cfg).fs_cases
}

/// Check one point; Some(description) on divergence.
fn divergence(p: Params) -> Option<String> {
    let source = render(p);
    let report = try_lint_dsl(&source, &machines::paper48(), p.threads)
        .unwrap_or_else(|e| panic!("generated kernel rejected: {e}\n{source}"));
    let cases = oracle_cases(&source, p.threads);
    match report.result.verdict {
        LintVerdict::FalseSharing if cases == 0 => Some(format!(
            "lint says FalseSharing, simulator counted 0 ({p:?})"
        )),
        LintVerdict::Clean if cases > 0 => Some(format!(
            "lint says Clean, simulator counted {cases} ({p:?})"
        )),
        LintVerdict::Unknown => Some(format!(
            "generated kernel left the decidable fragment ({p:?})"
        )),
        _ => None,
    }
}

/// Shrink a diverging point: smaller trip multiplier, then fewer threads,
/// then smaller chunk — keeping the divergence alive at every step.
fn minimize(mut p: Params) -> Params {
    loop {
        let mut shrunk = false;
        for cand in [
            Params { k: p.k - 1, ..p },
            Params {
                threads: p.threads - 1,
                ..p
            },
            Params {
                chunk: p.chunk / 2,
                ..p
            },
            Params {
                stride: p.stride - 1,
                ..p
            },
        ] {
            if cand.k >= 1
                && cand.threads >= 2
                && cand.chunk >= 1
                && cand.stride >= 1
                && divergence(cand).is_some()
            {
                p = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return p;
        }
    }
}

/// Dump a `.loop` reproducer for a diverging point and return its path.
fn dump_reproducer(p: Params) -> std::path::PathBuf {
    let dir = option_env!("CARGO_TARGET_TMPDIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let path = dir.join(format!(
        "lint_divergence_t{}_c{}_k{}_s{}_tpl{}.loop",
        p.threads, p.chunk, p.k, p.stride, p.template
    ));
    std::fs::write(&path, render(p)).expect("write reproducer");
    path
}

fn check_point(p: Params) {
    if let Some(msg) = divergence(p) {
        let small = minimize(p);
        let path = dump_reproducer(small);
        panic!(
            "lint/simulator divergence: {msg}\nminimized to {small:?}\n\
             reproducer: {} (run `fslint {}` vs `fsdetect {}`)",
            path.display(),
            path.display(),
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline differential property: >= 256 random (template,
    /// threads, chunk, trip, stride) points, zero divergences.
    #[test]
    fn lint_verdicts_agree_with_reference_simulator(
        template in 0usize..NUM_TEMPLATES,
        threads in 2u32..=8,
        chunk_pow in 0u32..4,
        k in 1u64..=4,
        stride in 1i64..=4,
    ) {
        check_point(Params {
            template,
            threads,
            chunk: 1u64 << chunk_pow,
            k,
            stride,
        });
    }
}

#[test]
fn divergence_harness_covers_every_template() {
    // Deterministic sweep so each template is exercised at least once per
    // run even if the random sampler clusters.
    for template in 0..NUM_TEMPLATES {
        for threads in [2u32, 8] {
            for chunk in [1u64, 4] {
                check_point(Params {
                    template,
                    threads,
                    chunk,
                    k: 2,
                    stride: 2,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fragment-boundary kernels: shapes at or beyond the decidable fragment's
// edge. Unknown is allowed here — the contract is only that any claim the
// lint does make survives the simulator, and that leaving the fragment is
// reported honestly rather than guessed at.
// ---------------------------------------------------------------------------

const NUM_BOUNDARY_TEMPLATES: usize = 3;

fn render_boundary(p: Params) -> String {
    let trip = p.chunk * p.threads as u64 * p.k;
    let s = p.stride;
    match p.template {
        // Triangular: the inner bound rides the parallel variable, which
        // skews threads against each other — outside the fragment (FS003).
        0 => format!(
            "kernel tri {{
  array A[{trip}][{trip}]: f64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    for j in 0..i + 1 {{
      A[i][j] = 1.0;
    }}
  }}
}}",
            chunk = p.chunk,
        ),
        // Two writes to one array with different parallel strides: the seam
        // analysis needs a single stride per array, so s > 1 leaves the
        // fragment (and s == 1 collapses back inside it).
        1 => format!(
            "kernel mixed {{
  array B[{n}]: f64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    B[i] = 1.0;
    B[{s}*i] = 2.0;
  }}
}}",
            n = s as u64 * (trip - 1) + 1,
            chunk = p.chunk,
        ),
        // Multi-array nest with mixed, non-unit inner strides: decidable —
        // each array is analyzed independently at its own stride.
        2 => format!(
            "kernel nest {{
  array C[{cn}]: f64;
  array D[{dn}]: f64;
  parallel for i in 0..{trip} schedule(static, {chunk}) {{
    for j in 0..8 {{
      C[{s}*i] += D[16*i + 2*j];
    }}
  }}
}}",
            cn = s as u64 * (trip - 1) + 1,
            dn = 16 * (trip - 1) + 15,
            chunk = p.chunk,
        ),
        _ => unreachable!("boundary template out of range"),
    }
}

/// Check one boundary point: Unknown makes no claim; definite verdicts must
/// survive the simulator, as in [`divergence`].
fn check_boundary_point(p: Params) {
    let source = render_boundary(p);
    let report = try_lint_dsl(&source, &machines::paper48(), p.threads)
        .unwrap_or_else(|e| panic!("boundary kernel rejected: {e}\n{source}"));
    let cases = oracle_cases(&source, p.threads);
    match report.result.verdict {
        LintVerdict::FalseSharing => assert!(
            cases > 0,
            "lint says FalseSharing, simulator counted 0 ({p:?})\n{source}"
        ),
        LintVerdict::Clean => assert_eq!(
            cases, 0,
            "lint says Clean, simulator counted {cases} ({p:?})\n{source}"
        ),
        LintVerdict::Unknown => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Boundary kernels never panic and never produce a wrong claim.
    #[test]
    fn boundary_kernels_stay_sound(
        template in 0usize..NUM_BOUNDARY_TEMPLATES,
        threads in 2u32..=6,
        chunk_pow in 0u32..3,
        k in 1u64..=2,
        stride in 1i64..=4,
    ) {
        check_boundary_point(Params {
            template,
            threads,
            chunk: 1u64 << chunk_pow,
            k,
            stride,
        });
    }
}

#[test]
fn boundary_fragment_edges_are_reported_honestly() {
    let p = |template, stride| Params {
        template,
        threads: 4,
        chunk: 2,
        k: 2,
        stride,
    };
    // Triangular bounds leave the fragment: FS003, verdict Unknown.
    let tri = try_lint_dsl(&render_boundary(p(0, 2)), &machines::paper48(), 4).unwrap();
    assert_eq!(tri.result.verdict, LintVerdict::Unknown);
    assert!(
        tri.result.diagnostics.iter().any(|d| d.rule_id == "FS003"),
        "{:?}",
        tri.result.diagnostics
    );
    // Mixed strides on one array: out at s > 1, back in at s == 1.
    let mixed = try_lint_dsl(&render_boundary(p(1, 3)), &machines::paper48(), 4).unwrap();
    assert_eq!(mixed.result.verdict, LintVerdict::Unknown);
    let collapsed = try_lint_dsl(&render_boundary(p(1, 1)), &machines::paper48(), 4).unwrap();
    assert_ne!(collapsed.result.verdict, LintVerdict::Unknown);
    // The multi-array mixed-stride nest stays decidable.
    let nest = try_lint_dsl(&render_boundary(p(2, 2)), &machines::paper48(), 4).unwrap();
    assert_ne!(nest.result.verdict, LintVerdict::Unknown);
}

#[test]
fn minimizer_shrinks_and_dumps() {
    // Exercise the reproducer machinery itself on a synthetic "divergence"
    // (any strided point at chunk 1 false-shares, so treat the FS verdict
    // as the thing to reproduce): the dump must parse and round-trip.
    let p = Params {
        template: 0,
        threads: 4,
        chunk: 1,
        k: 2,
        stride: 1,
    };
    let path = dump_reproducer(p);
    let src = std::fs::read_to_string(&path).unwrap();
    let k = fs_core::parse_kernel(&src).unwrap();
    assert_eq!(k.name, "strided");
    std::fs::remove_file(&path).ok();
}
