//! End-to-end tests of the `fsdetect` binary: exit codes, flags, corpus
//! loading, const overrides, and the mitigation/baseline/contention output.

use std::process::{Command, Output};

fn fsdetect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fsdetect"))
        .args(args)
        .output()
        .expect("fsdetect runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn list_enumerates_the_corpus() {
    let out = fsdetect(&["--list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in [
        "@linreg",
        "@heat",
        "@dft",
        "@stencil",
        "@histogram",
        "@matmul",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn fs_kernel_exits_nonzero_and_reports_victims() {
    let out = fsdetect(&["@histogram", "--threads", "8"]);
    assert_eq!(out.status.code(), Some(1), "significant FS -> exit 1");
    let text = stdout(&out);
    assert!(text.contains("false-sharing cases"));
    assert!(text.contains("counts"), "victim array named:\n{text}");
    assert!(text.contains("% of estimated execution time"));
}

#[test]
fn clean_kernel_exits_zero() {
    // stencil at a line-aligned chunk has no significant FS.
    let out = fsdetect(&["@stencil", "--threads", "8", "--const", "N=4098"]);
    // chunk is 1 in the source; rescale instead with a clean kernel:
    // histogram with padded counters does not exist in the corpus, so use
    // single-threaded analysis which can never false-share.
    let out1 = fsdetect(&["@histogram", "--threads", "1"]);
    assert_eq!(out1.status.code(), Some(0), "one thread -> no FS");
    // (The rescaled stencil still false-shares at chunk 1; just check it ran.)
    assert!(out.status.code() == Some(0) || out.status.code() == Some(1));
}

#[test]
fn eliminate_prints_a_transformed_kernel() {
    let out = fsdetect(&["@histogram", "--threads", "8", "--eliminate"]);
    let text = stdout(&out);
    assert!(text.contains("mitigation search"), "{text}");
    assert!(text.contains("best:"), "{text}");
    assert!(
        text.contains("pad 64") || text.contains("schedule(static,"),
        "transformed kernel printed:\n{text}"
    );
}

#[test]
fn baseline_and_contention_sections_print() {
    let out = fsdetect(&[
        "@linreg",
        "--threads",
        "4",
        "--predict",
        "8",
        "--baseline",
        "--contention",
    ]);
    let text = stdout(&out);
    assert!(text.contains("address-set baseline"), "{text}");
    assert!(text.contains("false-shared"), "{text}");
    assert!(text.contains("contention extensions"), "{text}");
    assert!(text.contains("memory bus"), "{text}");
}

#[test]
fn const_override_rescales() {
    let small = fsdetect(&[
        "@heat",
        "--threads",
        "4",
        "--const",
        "N=10",
        "--const",
        "M=66",
    ]);
    let text = stdout(&small);
    // 8 outer x 64 inner iterations per thread-team.
    assert!(
        text.contains("512 iterations") || text.contains("evaluated 512"),
        "{text}"
    );
}

#[test]
fn sim_flag_prints_measured_counters() {
    let out = fsdetect(&["@histogram", "--threads", "4", "--sim"]);
    let text = stdout(&out);
    assert!(text.contains("MESI simulator"), "{text}");
    assert!(text.contains("coherence="), "{text}");
}

#[test]
fn file_input_and_errors() {
    let dir = std::env::temp_dir().join("fsdetect_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ok.loop");
    std::fs::write(
        &path,
        "kernel k { array a[64]: f64; parallel for i in 0..64 schedule(static, 1) { a[i] = 1.0; } }",
    )
    .unwrap();
    let out = fsdetect(&[path.to_str().unwrap(), "--threads", "4"]);
    assert!(stdout(&out).contains("== false-sharing analysis: k =="));

    let bad = dir.join("bad.loop");
    std::fs::write(&bad, "kernel k { array a[64]: f64; }").unwrap();
    let out = fsdetect(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "parse error -> failure exit");
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));

    let out = fsdetect(&["/nonexistent/file.loop"]);
    assert_eq!(out.status.code(), Some(1));
    let out = fsdetect(&["@nope"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--list"));
}

#[test]
fn json_stdout_stays_clean_under_quiet() {
    let out = fsdetect(&["@histogram", "--threads", "8", "--json", "--quiet"]);
    assert_eq!(out.status.code(), Some(1), "FS verdict survives --json");
    assert!(
        out.stderr.is_empty(),
        "--quiet --json leaks to stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.starts_with('{'), "stdout is pure JSON:\n{text}");
    assert!(text.contains("\"metrics\""), "{text}");
    assert!(text.contains("\"fs.model_runs\""), "{text}");
    assert!(text.contains("\"span_coverage\""), "{text}");
}

#[test]
fn verbose_notes_go_to_stderr_not_stdout() {
    let out = fsdetect(&["@histogram", "--threads", "8", "--verbose"]);
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("fsdetect:"), "verbose notes on stderr: {err}");
    assert!(
        !stdout(&out).contains("fsdetect:"),
        "notes leaked to stdout"
    );

    let quiet = fsdetect(&["@histogram", "--threads", "8", "--quiet"]);
    assert!(quiet.stderr.is_empty(), "--quiet silences diagnostics");
}

#[test]
fn trace_out_writes_a_chrome_trace() {
    let dir = std::env::temp_dir().join("fsdetect_cli_trace");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.trace.json");
    let out = fsdetect(&[
        "@histogram",
        "--threads",
        "4",
        "--sweep-grid",
        "2,4:1,4",
        "--workers",
        "2",
        "--trace-out",
        path.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.code() == Some(0) || out.status.code() == Some(1),
        "analysis ran"
    );
    let trace = std::fs::read_to_string(&path).expect("trace file written");
    assert!(
        trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "{trace}"
    );
    assert!(trace.contains("\"ph\":\"X\""), "complete events present");
    assert!(
        trace.contains("\"fsdetect.main\""),
        "top-level span present"
    );
    assert!(trace.contains("\"sweep.point\""), "per-point spans present");
}

#[test]
fn profile_summary_prints_to_stderr() {
    let out = fsdetect(&["@histogram", "--threads", "4", "--profile"]);
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("-- profile --"), "{err}");
    assert!(err.contains("span coverage"), "{err}");
    assert!(err.contains("fs.model_runs"), "{err}");
    assert!(!stdout(&out).contains("-- profile --"), "profile on stdout");
}

#[test]
fn sweep_json_carries_stats_and_memo_metrics() {
    let out = fsdetect(&["@histogram", "--sweep-grid", "2,4:1,4", "--json", "--quiet"]);
    let text = stdout(&out);
    assert!(text.contains("\"sweep_stats\""), "{text}");
    assert!(text.contains("\"slowest_points\""), "{text}");
    assert!(text.contains("\"points_per_sec\""), "{text}");
    assert!(text.contains("\"sweep.memo_misses\""), "{text}");
}

#[test]
fn unknown_machine_rejected() {
    let out = fsdetect(&["@heat", "--machine", "cray1"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown machine"));
}

#[test]
fn advise_prints_recommendation() {
    let out = fsdetect(&["@stencil", "--threads", "8", "--advise", "--predict", "8"]);
    let text = stdout(&out);
    assert!(text.contains("chunk-size advice"), "{text}");
    assert!(text.contains("recommended chunk size:"), "{text}");
}
