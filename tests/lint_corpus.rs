//! Corpus-level acceptance tests for the symbolic lint:
//!
//! * on every bundled `kernels/*.loop`, the `fslint` verdict agrees with
//!   the `FsPath::Reference` simulator oracle at the same (threads, chunk)
//!   configuration — `FalseSharing` ⇒ simulated cases > 0, `Clean` ⇒ 0;
//! * the `fslint` binary's exit codes, human output, `--json`, and SARIF
//!   2.1.0 output carry the required structure;
//! * `fsdetect --json` includes the `lint` section and prints
//!   `file:line:col:`-prefixed parse errors.

use fs_core::{kernel_at_chunk, machines, try_lint, FsModelConfig, LintVerdict};
use std::process::{Command, Output};

fn fslint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fslint"))
        .args(args)
        .output()
        .expect("fslint runs")
}

fn fsdetect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fsdetect"))
        .args(args)
        .output()
        .expect("fsdetect runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn kernels_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../kernels")
}

/// Oracle: simulated FS cases on the reference path.
fn simulated_cases(kernel: &loop_ir::Kernel, threads: u32) -> u64 {
    let mut cfg = FsModelConfig::for_machine(&machines::paper48(), threads);
    cfg.path = fs_core::FsPath::Reference;
    fs_core::run_fs_model(kernel, &cfg).fs_cases
}

#[test]
fn corpus_verdicts_agree_with_reference_oracle() {
    let machine = machines::paper48();
    for entry in fs_core::CORPUS {
        let kernel = fs_core::parse_kernel(entry.source).unwrap();
        let source_chunk = kernel.nest.parallel.schedule.chunk();
        for threads in [2u32, 8] {
            for chunk in [source_chunk, 4] {
                let k = kernel_at_chunk(&kernel, chunk);
                let report = try_lint(&k, &machine, threads).unwrap();
                let cases = simulated_cases(&k, threads);
                match report.result.verdict {
                    LintVerdict::FalseSharing => assert!(
                        cases > 0,
                        "@{} threads={threads} chunk={chunk}: lint says FalseSharing, \
                         simulator counted 0",
                        entry.name
                    ),
                    LintVerdict::Clean => assert_eq!(
                        cases, 0,
                        "@{} threads={threads} chunk={chunk}: lint says Clean, \
                         simulator counted {cases}",
                        entry.name
                    ),
                    LintVerdict::Unknown => panic!(
                        "@{} threads={threads} chunk={chunk}: corpus kernel left the \
                         decidable fragment",
                        entry.name
                    ),
                }
            }
        }
    }
}

#[test]
fn every_corpus_kernel_false_shares_at_chunk1() {
    // The bundled kernels are the paper's FS case studies: all of them
    // false-share at 8 threads, chunk 1, and the lint must say so.
    let machine = machines::paper48();
    for entry in fs_core::CORPUS {
        let kernel = fs_core::parse_kernel(entry.source).unwrap();
        let report = try_lint(&kernel, &machine, 8).unwrap();
        assert_eq!(
            report.result.verdict,
            LintVerdict::FalseSharing,
            "@{}",
            entry.name
        );
        assert!(report.has_findings(), "@{}", entry.name);
    }
}

#[test]
fn fslint_flags_all_loop_files_with_spans() {
    // Run the binary over the real files so diagnostics carry file paths
    // and DSL source positions.
    let dir = kernels_dir();
    let mut paths: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().and_then(|x| x.to_str()) == Some("loop"))
                .then(|| p.to_str().unwrap().to_string())
        })
        .collect();
    paths.sort();
    assert!(paths.len() >= 6, "expected the bundled corpus in {dir:?}");
    let args: Vec<&str> = paths.iter().map(|s| s.as_str()).collect();
    let out = fslint(&args);
    assert_eq!(out.status.code(), Some(1), "findings -> exit 1");
    let text = stdout(&out);
    for p in &paths {
        assert!(text.contains(p.as_str()), "report covers {p}:\n{text}");
    }
    // Spans from the DSL parser: every finding line is file:line:col.
    assert!(
        text.contains(".loop:"),
        "file:line:col positions present:\n{text}"
    );
    assert!(text.contains("[FS002]"), "{text}");
    assert!(text.contains("fix:"), "{text}");
}

#[test]
fn fslint_sarif_has_required_210_fields() {
    let stencil = kernels_dir().join("stencil.loop");
    let out = fslint(&[stencil.to_str().unwrap(), "--format", "sarif"]);
    assert_eq!(out.status.code(), Some(1));
    let doc = stdout(&out);
    for key in [
        "\"version\": \"2.1.0\"",
        "\"name\": \"fslint\"",
        "\"rules\"",
        "\"ruleId\": \"FS002\"",
        "\"level\": \"error\"",
        "\"message\"",
        "\"physicalLocation\"",
        "\"artifactLocation\"",
        "\"startLine\"",
        "\"startColumn\"",
    ] {
        assert!(doc.contains(key), "SARIF missing {key}:\n{doc}");
    }
    // stdout is pure JSON (pretty-printed object).
    assert!(doc.trim_start().starts_with('{'), "{doc}");
}

#[test]
fn fslint_json_covers_all_inputs() {
    let out = fslint(&["@stencil", "@histogram", "--json", "--threads", "8"]);
    assert_eq!(out.status.code(), Some(1));
    let doc = stdout(&out);
    for key in [
        "\"reports\"",
        "\"file\": \"@stencil\"",
        "\"file\": \"@histogram\"",
        "\"verdict\": \"false-sharing\"",
        "\"diagnostics\"",
        "\"sites\"",
        "\"findings\": true",
    ] {
        assert!(doc.contains(key), "missing {key}:\n{doc}");
    }
}

#[test]
fn fslint_exit_codes() {
    // No inputs -> usage (2).
    let out = fslint(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
    // Unknown bundled kernel -> error (1).
    let out = fslint(&["@nope"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("--list"));
    // Unknown machine -> error (1).
    let out = fslint(&["@stencil", "--machine", "vax"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown machine"));
    // A clean kernel -> 0.
    let dir = std::env::temp_dir();
    let clean = dir.join("fslint_clean_test.loop");
    std::fs::write(
        &clean,
        "kernel clean {\n  array B[4096] of { v: f64 } pad 64;\n  \
         parallel for i in 0..4096 schedule(static, 1) {\n    B[i].v = 1.0;\n  }\n}\n",
    )
    .unwrap();
    let out = fslint(&[clean.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("verdict clean"));
    std::fs::remove_file(&clean).ok();
}

#[test]
fn fslint_parse_errors_carry_file_positions() {
    let dir = std::env::temp_dir();
    let bad = dir.join("fslint_bad_test.loop");
    std::fs::write(&bad, "kernel broken {\n  array A[8]: f64;\n}\n").unwrap();
    let out = fslint(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("parse error"), "{err}");
    // file:line:col prefix from with_source_name.
    assert!(
        err.contains(&format!("{}:3:", bad.to_str().unwrap())),
        "position prefix present: {err}"
    );
    std::fs::remove_file(&bad).ok();
}

#[test]
fn fsdetect_json_carries_lint_section() {
    let out = fsdetect(&["@stencil", "--threads", "8", "--json", "--quiet"]);
    let doc = stdout(&out);
    for key in [
        "\"lint\"",
        "\"verdict\": \"false-sharing\"",
        "\"rule_id\": \"FS002\"",
        "\"suggested_fix\"",
    ] {
        assert!(doc.contains(key), "missing {key}:\n{doc}");
    }
}

#[test]
fn fslint_explain_prints_every_rule_from_the_shared_table() {
    for r in fs_core::LINT_RULES {
        let out = fslint(&["--explain", r.id]);
        assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
        let text = stdout(&out);
        assert!(
            text.contains(r.id) && text.contains(r.name) && text.contains(r.short),
            "--explain {} incomplete:\n{text}",
            r.id
        );
    }
    let out = fslint(&["--explain", "FS999"]);
    assert_eq!(out.status.code(), Some(2), "unknown rule -> usage exit");
    assert!(stderr(&out).contains("FS005"), "error lists known rules");
}

#[test]
fn fslint_capacity_warning_fires_on_tiny_machine() {
    let dir = std::env::temp_dir();
    let p = dir.join("fslint_thrash_test.loop");
    std::fs::write(
        &p,
        "kernel t {\n  array A[4096]: f64;\n  array B[4096]: f64;\n  \
         parallel for i in 0..4096 schedule(static, 64) {\n    B[i] = A[i] + 1.0;\n  }\n}\n",
    )
    .unwrap();
    let out = fslint(&[p.to_str().unwrap(), "--machine", "tiny", "--threads", "4"]);
    assert_eq!(out.status.code(), Some(1), "FS005 warning is a finding");
    let text = stdout(&out);
    assert!(text.contains("[FS005]"), "{text}");
    assert!(text.contains("capacity thrashing"), "{text}");
    assert!(
        text.contains("re-lints without FS005"),
        "verified fix:\n{text}"
    );
    // The same kernel against paper48's 8 MB of private cache is quiet.
    let out = fslint(&[
        p.to_str().unwrap(),
        "--machine",
        "paper48",
        "--threads",
        "4",
    ]);
    assert!(!stdout(&out).contains("FS005"), "{}", stdout(&out));
    std::fs::remove_file(&p).ok();
}

#[test]
fn fsdetect_parse_errors_carry_file_positions() {
    let dir = std::env::temp_dir();
    let bad = dir.join("fsdetect_bad_pos_test.loop");
    std::fs::write(&bad, "kernel broken {\n  array A[8]: f64;\n}\n").unwrap();
    let out = fsdetect(&[bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(
        err.contains(&format!("{}:3:", bad.to_str().unwrap())) && err.contains("parse error"),
        "{err}"
    );
    std::fs::remove_file(&bad).ok();
}
