//! End-to-end tests of `fsd`, the analysis daemon: a real Unix-socket
//! server per test, driven by real clients.
//!
//! The contracts under test are the ones `docs/DAEMON.md` promises:
//!
//! - **Differential**: the line a daemon writes for a request is
//!   byte-identical to the envelope an in-process [`fs_core::Service`]
//!   renders for the same request history (the daemon adds transport, not
//!   semantics). Checked for every bundled corpus kernel and for sweep
//!   grids.
//! - **Determinism under concurrency**: after a warm-up request, N
//!   concurrent clients issuing the same grid request all read identical
//!   bytes, and the shared cache serves them without a single new miss.
//! - Control plane: `ping`, `stats`, `shutdown`, malformed lines, and the
//!   HTTP/1.1 fallback.

use fs_core::json::{parse, JsonValue};
use fs_core::service::parse_request;
use fs_core::{obs, Service};
use fs_daemon::{bind_unix, Daemon};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

static NEXT_SOCKET: AtomicU32 = AtomicU32::new(0);

/// The obs registry is process-global: tests that reconfigure it (metrics
/// scrape, ring tracing) serialize here and restore the disabled default.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// A live daemon on a unique temp socket.
struct TestServer {
    daemon: Arc<Daemon>,
    path: PathBuf,
    accept_loop: JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start() -> Self {
        let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("fsd-test-{}-{n}.sock", std::process::id()));
        let listener = bind_unix(&path).expect("bind test socket");
        let daemon = Arc::new(Daemon::new(None));
        let server = Arc::clone(&daemon);
        let accept_loop = thread::spawn(move || server.serve_unix(listener));
        TestServer {
            daemon,
            path,
            accept_loop,
        }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.path).expect("connect to test daemon")
    }

    /// Send one request line, read one response line.
    fn round_trip(&self, line: &str) -> String {
        let mut stream = self.connect();
        writeln!(stream, "{line}").unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response
    }

    fn stop(self) {
        self.daemon.request_shutdown();
        self.accept_loop.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&self.path);
    }
}

fn analyze_request(kernels: &[&str], grid: bool) -> String {
    let mut req = JsonValue::obj().field(
        "kernels",
        JsonValue::Arr(
            kernels
                .iter()
                .map(|k| JsonValue::Str(k.to_string()))
                .collect(),
        ),
    );
    if grid {
        req = req.field(
            "grid",
            JsonValue::obj()
                .field("threads", JsonValue::Arr(vec![2u64.into(), 4u64.into()]))
                .field("chunks", JsonValue::Arr(vec![1u64.into(), 8u64.into()])),
        );
    }
    req.render()
}

/// The in-process reference bytes for a protocol line, replayed against
/// `svc` (so cache history can be made to match the daemon's).
fn reference_line(svc: &Service, line: &str) -> String {
    let parsed = parse_request(&parse(line).unwrap()).unwrap();
    format!("{}\n", svc.handle(&parsed.request).envelope().render())
}

#[test]
fn socket_responses_match_in_process_service_for_the_corpus() {
    let server = TestServer::start();
    // One fresh in-process service per request: without a grid the
    // envelope carries no per-run memo tallies, so daemon cache state
    // cannot (and must not) show through.
    for entry in fs_core::CORPUS {
        let line = analyze_request(&[&format!("@{}", entry.name)], false);
        let from_daemon = server.round_trip(&line);
        let reference = reference_line(&Service::new(), &line);
        assert_eq!(
            from_daemon, reference,
            "daemon response for @{} diverges from in-process service",
            entry.name
        );
    }
    server.stop();
}

#[test]
fn socket_grid_responses_match_in_process_history() {
    let server = TestServer::start();
    let svc = Service::new();
    let line = analyze_request(&["@histogram", "@stencil"], true);
    // Same request replayed against both sides: run 1 is all cold misses,
    // run 2 all hits. The envelopes carry those tallies, so byte-identity
    // here proves the daemon's cache behaves exactly like the library's.
    for run in 1..=2 {
        let from_daemon = server.round_trip(&line);
        let reference = reference_line(&svc, &line);
        assert_eq!(from_daemon, reference, "grid run {run} diverges");
    }
    server.stop();
}

#[test]
fn concurrent_clients_get_identical_bytes_with_zero_new_misses() {
    let server = TestServer::start();
    let line = analyze_request(&["@histogram"], true);

    // Warm the shared cache (the cold response carries all-miss memo
    // tallies, so the reference bytes are the *second*, fully-warm run),
    // then snapshot the lifetime miss count.
    server.round_trip(&line);
    let warm = server.round_trip(&line);
    let stats = parse(server.round_trip("{\"cmd\": \"stats\"}").trim()).unwrap();
    let misses_before = stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(|m| m.as_u64())
        .expect("stats reports cache misses");

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let line = line.clone();
            let path = server.path.clone();
            thread::spawn(move || {
                let mut stream = UnixStream::connect(&path).unwrap();
                writeln!(stream, "{line}").unwrap();
                let mut response = String::new();
                BufReader::new(stream).read_line(&mut response).unwrap();
                response
            })
        })
        .collect();
    for client in clients {
        let response = client.join().unwrap();
        assert_eq!(response, warm, "a concurrent client saw different bytes");
    }

    let stats = parse(server.round_trip("{\"cmd\": \"stats\"}").trim()).unwrap();
    let misses_after = stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(|m| m.as_u64())
        .unwrap();
    assert_eq!(
        misses_before, misses_after,
        "warm concurrent requests must be pure cache hits"
    );
    server.stop();
}

#[test]
fn one_connection_can_issue_many_requests_and_streams() {
    let server = TestServer::start();
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    // ping
    writeln!(stream, "{{\"cmd\": \"ping\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\""), "got: {line}");

    // a malformed line keeps the connection alive
    line.clear();
    writeln!(stream, "this is not json").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"error\""), "got: {line}");

    // a streamed lint: two result events, then done
    line.clear();
    writeln!(
        stream,
        "{{\"cmd\": \"lint\", \"kernels\": [\"@histogram\", \"@stencil\"], \"stream\": true}}"
    )
    .unwrap();
    for expected_file in ["@histogram", "@stencil"] {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let v = parse(line.trim()).unwrap();
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("result"));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("file"))
                .and_then(|f| f.as_str()),
            Some(expected_file)
        );
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    let done = parse(line.trim()).unwrap();
    assert_eq!(done.get("event").and_then(|e| e.as_str()), Some("done"));
    server.stop();
}

#[test]
fn shutdown_command_stops_the_accept_loop() {
    let server = TestServer::start();
    let ack = server.round_trip("{\"cmd\": \"shutdown\"}");
    assert!(ack.contains("\"shutdown\""), "got: {ack}");
    // The accept loop observes the latch and returns; join proves it.
    server.accept_loop.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&server.path);
}

#[test]
fn http_fallback_serves_ping_and_analyze() {
    let daemon = Arc::new(Daemon::new(None));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::clone(&daemon);
    let http_loop = thread::spawn(move || server.serve_http(listener));

    let http = |request: String| -> (String, String) {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = http("GET /ping HTTP/1.1\r\nHost: fsd\r\n\r\n".to_string());
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    assert!(body.contains("\"pong\""), "got: {body}");

    let payload = analyze_request(&["@histogram"], false);
    let (head, body) = http(format!(
        "POST /analyze HTTP/1.1\r\nHost: fsd\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    ));
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    // The body is the very same envelope line the socket path writes.
    let reference = reference_line(&Service::new(), &payload);
    assert_eq!(body, reference);

    let (head, _) = http("GET /nope HTTP/1.1\r\nHost: fsd\r\n\r\n".to_string());
    assert!(head.starts_with("HTTP/1.1 404"), "got: {head}");

    daemon.request_shutdown();
    http_loop.join().unwrap().unwrap();
}

/// An HTTP daemon on an ephemeral TCP port, for the fallback tests.
struct HttpServer {
    daemon: Arc<Daemon>,
    addr: std::net::SocketAddr,
    http_loop: JoinHandle<std::io::Result<()>>,
}

impl HttpServer {
    fn start() -> Self {
        let daemon = Arc::new(Daemon::new(None));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = Arc::clone(&daemon);
        let http_loop = thread::spawn(move || server.serve_http(listener));
        HttpServer {
            daemon,
            addr,
            http_loop,
        }
    }

    /// Send raw request bytes, return `(status line + headers, body)`.
    fn raw(&self, request: &str) -> (String, String) {
        let mut stream = std::net::TcpStream::connect(self.addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("http header/body split");
        (head.to_string(), body.to_string())
    }

    fn stop(self) {
        self.daemon.request_shutdown();
        self.http_loop.join().unwrap().unwrap();
    }
}

#[test]
fn http_fallback_rejects_malformed_and_oversized_requests() {
    let server = HttpServer::start();

    // Unknown route: 404 with a JSON error body.
    let (head, body) = server.raw("GET /definitely/not/a/route HTTP/1.1\r\nHost: fsd\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 404"), "got: {head}");
    let v = parse(body.trim()).expect("404 body is JSON");
    assert!(v.get("error").is_some(), "got: {body}");

    // Malformed POST body: 400, and the body is the protocol's JSON error
    // envelope (versioned, connection-survivable on the socket path).
    let bad = "this is not json";
    let (head, body) = server.raw(&format!(
        "POST /analyze HTTP/1.1\r\nHost: fsd\r\nContent-Length: {}\r\n\r\n{bad}",
        bad.len()
    ));
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head}");
    let v = parse(body.trim()).expect("400 body is JSON");
    assert_eq!(v.get("fsd_version").and_then(|v| v.as_u64()), Some(1));
    assert!(
        v.get("error")
            .and_then(|e| e.as_str())
            .is_some_and(|e| e.contains("parse error")),
        "got: {body}"
    );

    // A valid JSON body that is not a valid request also gets the envelope.
    let empty = "{\"kernels\": []}";
    let (head, body) = server.raw(&format!(
        "POST / HTTP/1.1\r\nHost: fsd\r\nContent-Length: {}\r\n\r\n{empty}",
        empty.len()
    ));
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head}");
    assert!(parse(body.trim()).unwrap().get("error").is_some());

    // An oversized request line must be refused, not buffered: the 8 KiB
    // line limit turns it into a 400 before the path is even parsed.
    let (head, _) = server.raw(&format!(
        "GET /{} HTTP/1.1\r\nHost: fsd\r\n\r\n",
        "a".repeat(16 * 1024)
    ));
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head}");

    // An oversized header line is refused the same way.
    let (head, _) = server.raw(&format!(
        "GET /ping HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
        "b".repeat(16 * 1024)
    ));
    assert!(head.starts_with("HTTP/1.1 400"), "got: {head}");

    // The server survives all of the above.
    let (head, body) = server.raw("GET /ping HTTP/1.1\r\nHost: fsd\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    assert!(body.contains("\"pong\""));
    server.stop();
}

/// One parsed Prometheus exposition sample: `(metric name, optional label
/// set, value)`.
struct PromSample {
    name: String,
    labels: Option<String>,
    value: f64,
}

/// A strict-enough text-format parser: every line must be a comment or a
/// `name[{labels}] value` sample with a legal metric name, every `# TYPE`
/// must declare a known type, and every sample must follow a `# TYPE` for
/// its family. Returns the samples in file order.
fn parse_prometheus(text: &str) -> Vec<PromSample> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && !s.starts_with(|c: char| c.is_ascii_digit())
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut typed: Vec<String> = Vec::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().expect("TYPE declares a name");
                let kind = parts.next().expect("TYPE declares a kind");
                assert!(valid_name(name), "bad metric name in: {line}");
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                    "unknown TYPE in: {line}"
                );
                typed.push(name.to_string());
            }
            continue;
        }
        let (name_part, value_part) = line.rsplit_once(' ').expect("sample has a value");
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let labels = rest.strip_suffix('}').expect("labels close");
                (n.to_string(), Some(labels.to_string()))
            }
            None => (name_part.to_string(), None),
        };
        assert!(valid_name(&name), "bad metric name in: {line}");
        let value: f64 = value_part.parse().unwrap_or_else(|_| {
            panic!("unparseable value in: {line}");
        });
        // Histogram series suffix back to the declared family name.
        let family = ["_bucket", "_sum", "_count", "_total"]
            .iter()
            .find_map(|suf| name.strip_suffix(suf))
            .unwrap_or(&name);
        assert!(
            typed.contains(&name) || typed.contains(&family.to_string()),
            "sample before its # TYPE: {line}"
        );
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    samples
}

#[test]
fn http_metrics_endpoint_serves_parseable_prometheus_text() {
    let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::configure(obs::ObsConfig {
        spans: false,
        counters: true,
        ring: None,
    });
    let server = HttpServer::start();

    // Drive one analyze through the HTTP path so the request counter and
    // the latency histogram have something to say.
    let payload = analyze_request(&["@histogram"], false);
    let (head, _) = server.raw(&format!(
        "POST /analyze HTTP/1.1\r\nHost: fsd\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    ));
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");

    let (head, body) = server.raw("GET /metrics HTTP/1.1\r\nHost: fsd\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "got: {head}"
    );

    let samples = parse_prometheus(&body);
    let get = |name: &str, labels: Option<&str>| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name && s.labels.as_deref() == labels)
            .unwrap_or_else(|| panic!("missing sample {name} {labels:?}"))
            .value
    };

    assert!(get("fsd_uptime_seconds", None) >= 0.0);
    // This daemon saw exactly one analyze; the process-wide obs counter
    // (shared with concurrently running tests) saw at least that one.
    assert_eq!(get("fsd_requests_total", Some("cmd=\"analyze\"")) as u64, 1);
    assert!(get("svc_requests_total", None) >= 1.0);

    // Histogram series are sound: ascending `le`, non-decreasing
    // cumulative counts, and `+Inf` == `_count`.
    for family in ["svc_request_ns", "fs_model_ns"] {
        let buckets: Vec<&PromSample> = samples
            .iter()
            .filter(|s| s.name == format!("{family}_bucket"))
            .collect();
        assert!(
            !buckets.is_empty(),
            "{family} exposes at least its +Inf bucket"
        );
        let mut last_le = f64::NEG_INFINITY;
        let mut last_cum = f64::NEG_INFINITY;
        for b in &buckets {
            let labels = b.labels.as_deref().expect("bucket has an le label");
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|l| l.strip_suffix('"'))
                .expect("le label");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().expect("numeric le")
            };
            assert!(le > last_le, "{family} le bounds out of order");
            assert!(b.value >= last_cum, "{family} cumulative counts decrease");
            last_le = le;
            last_cum = b.value;
        }
        assert_eq!(last_le, f64::INFINITY, "{family} ends with +Inf");
        assert_eq!(last_cum, get(&format!("{family}_count"), None));
    }
    // The daemon handled one request, so its latency histogram is live.
    assert!(get("svc_request_ns_count", None) >= 1.0);

    server.stop();
    obs::configure(obs::ObsConfig::disabled());
}

#[test]
fn ring_traced_daemon_survives_10k_requests_with_bounded_spans() {
    let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    const RING: usize = 256;
    obs::configure(obs::ObsConfig::ring(RING));
    obs::reset();

    let server = TestServer::start();
    let line = analyze_request(&["@histogram"], false);
    // One connection, 10k requests: the steady state an editor
    // integration produces against a `fsd --trace` daemon. With the
    // vector recorder this would accumulate ~10k span events; the ring
    // must hold memory constant at its capacity.
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut response = String::new();
    for i in 0..10_000 {
        writeln!(stream, "{line}").unwrap();
        response.clear();
        reader.read_line(&mut response).unwrap();
        assert!(
            response.contains("\"fsd_version\""),
            "request {i} got: {response}"
        );
    }

    let snap = obs::snapshot();
    assert!(
        snap.spans.len() <= RING,
        "ring overflowed: {} spans recorded, capacity {RING}",
        snap.spans.len()
    );
    assert!(
        snap.dropped_spans > 0,
        "10k requests must wrap a {RING}-event ring"
    );
    // The retained tail still exports as valid trace JSON.
    let trace = obs::trace::chrome_trace(&snap);
    assert!(parse(&trace).is_ok(), "chrome_trace invalid after wrap");

    server.stop();
    obs::configure(obs::ObsConfig::disabled());
}

#[test]
fn envelope_carries_request_id_and_timing_only_when_asked() {
    let server = TestServer::start();

    // Default: deterministic envelope, no request_id, no timing.
    let plain = server.round_trip(&analyze_request(&["@histogram"], true));
    let v = parse(plain.trim()).unwrap();
    assert!(v.get("request_id").is_none(), "got: {plain}");
    assert!(v.get("timing").is_none(), "got: {plain}");
    assert!(v.get("sweep_stats").is_none(), "got: {plain}");

    // timing:true opts into the nondeterministic fields.
    let line = "{\"kernels\": [\"@histogram\"], \
                \"grid\": {\"threads\": [2], \"chunks\": [1, 8]}, \
                \"timing\": true}";
    let timed = server.round_trip(line);
    let v = parse(timed.trim()).unwrap();
    assert!(
        v.get("request_id")
            .and_then(|r| r.as_u64())
            .is_some_and(|id| id >= 1),
        "got: {timed}"
    );
    let timing = v.get("timing").expect("timing present when asked");
    for field in ["total_ms", "resolve_ms", "analyze_ms", "grid_ms"] {
        assert!(timing.get(field).is_some(), "timing lacks {field}: {timed}");
    }
    // The cache tallies in timing agree with the envelope's sweep memo:
    // run 2 of the same grid is pure hits.
    let timed2 = server.round_trip(line);
    let v2 = parse(timed2.trim()).unwrap();
    let hits = v2
        .get("timing")
        .and_then(|t| t.get("cache_hits"))
        .and_then(|h| h.as_u64())
        .unwrap();
    assert!(
        hits >= 2,
        "warm grid rerun reports cache hits, got: {timed2}"
    );

    // Ids are fresh per request.
    let id1 = v.get("request_id").and_then(|r| r.as_u64()).unwrap();
    let id2 = v2.get("request_id").and_then(|r| r.as_u64()).unwrap();
    assert!(id2 > id1, "request ids must be monotonic: {id1} then {id2}");
    server.stop();
}

#[test]
fn stats_and_metrics_commands_report_uptime_and_tallies() {
    let server = TestServer::start();
    server.round_trip("{\"cmd\": \"ping\"}");
    server.round_trip("{\"cmd\": \"ping\"}");

    let stats = parse(server.round_trip("{\"cmd\": \"stats\"}").trim()).unwrap();
    assert!(stats
        .get("uptime_s")
        .and_then(|u| u.as_f64())
        .is_some_and(|u| u >= 0.0));
    let commands = stats.get("commands").expect("per-command tallies");
    assert_eq!(commands.get("ping").and_then(|p| p.as_u64()), Some(2));
    // The tally is bumped before dispatch, so stats counts itself.
    assert_eq!(commands.get("stats").and_then(|s| s.as_u64()), Some(1));
    assert_eq!(commands.get("analyze").and_then(|a| a.as_u64()), Some(0));
    // Latency quantiles ride along even with obs disabled (count 0 then).
    assert!(stats.get("latency").and_then(|l| l.get("count")).is_some());

    let metrics = parse(server.round_trip("{\"cmd\": \"metrics\"}").trim()).unwrap();
    assert_eq!(
        metrics.get("event").and_then(|e| e.as_str()),
        Some("metrics")
    );
    assert!(metrics.get("uptime_s").is_some());
    assert_eq!(
        metrics
            .get("commands")
            .and_then(|c| c.get("metrics"))
            .and_then(|m| m.as_u64()),
        Some(1),
        "the metrics command counts itself"
    );
    let registry = metrics.get("metrics").expect("registry snapshot");
    for section in ["counters", "gauges", "hists", "spans"] {
        assert!(registry.get(section).is_some(), "registry lacks {section}");
    }
    assert!(registry
        .get("hists")
        .and_then(|h| h.get("svc.request_ns"))
        .is_some());
    server.stop();
}
