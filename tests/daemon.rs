//! End-to-end tests of `fsd`, the analysis daemon: a real Unix-socket
//! server per test, driven by real clients.
//!
//! The contracts under test are the ones `docs/DAEMON.md` promises:
//!
//! - **Differential**: the line a daemon writes for a request is
//!   byte-identical to the envelope an in-process [`fs_core::Service`]
//!   renders for the same request history (the daemon adds transport, not
//!   semantics). Checked for every bundled corpus kernel and for sweep
//!   grids.
//! - **Determinism under concurrency**: after a warm-up request, N
//!   concurrent clients issuing the same grid request all read identical
//!   bytes, and the shared cache serves them without a single new miss.
//! - Control plane: `ping`, `stats`, `shutdown`, malformed lines, and the
//!   HTTP/1.1 fallback.

use fs_core::json::{parse, JsonValue};
use fs_core::service::parse_request;
use fs_core::Service;
use fs_daemon::{bind_unix, Daemon};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

static NEXT_SOCKET: AtomicU32 = AtomicU32::new(0);

/// A live daemon on a unique temp socket.
struct TestServer {
    daemon: Arc<Daemon>,
    path: PathBuf,
    accept_loop: JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start() -> Self {
        let n = NEXT_SOCKET.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("fsd-test-{}-{n}.sock", std::process::id()));
        let listener = bind_unix(&path).expect("bind test socket");
        let daemon = Arc::new(Daemon::new(None));
        let server = Arc::clone(&daemon);
        let accept_loop = thread::spawn(move || server.serve_unix(listener));
        TestServer {
            daemon,
            path,
            accept_loop,
        }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.path).expect("connect to test daemon")
    }

    /// Send one request line, read one response line.
    fn round_trip(&self, line: &str) -> String {
        let mut stream = self.connect();
        writeln!(stream, "{line}").unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response
    }

    fn stop(self) {
        self.daemon.request_shutdown();
        self.accept_loop.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&self.path);
    }
}

fn analyze_request(kernels: &[&str], grid: bool) -> String {
    let mut req = JsonValue::obj().field(
        "kernels",
        JsonValue::Arr(
            kernels
                .iter()
                .map(|k| JsonValue::Str(k.to_string()))
                .collect(),
        ),
    );
    if grid {
        req = req.field(
            "grid",
            JsonValue::obj()
                .field("threads", JsonValue::Arr(vec![2u64.into(), 4u64.into()]))
                .field("chunks", JsonValue::Arr(vec![1u64.into(), 8u64.into()])),
        );
    }
    req.render()
}

/// The in-process reference bytes for a protocol line, replayed against
/// `svc` (so cache history can be made to match the daemon's).
fn reference_line(svc: &Service, line: &str) -> String {
    let parsed = parse_request(&parse(line).unwrap()).unwrap();
    format!("{}\n", svc.handle(&parsed.request).envelope().render())
}

#[test]
fn socket_responses_match_in_process_service_for_the_corpus() {
    let server = TestServer::start();
    // One fresh in-process service per request: without a grid the
    // envelope carries no per-run memo tallies, so daemon cache state
    // cannot (and must not) show through.
    for entry in fs_core::CORPUS {
        let line = analyze_request(&[&format!("@{}", entry.name)], false);
        let from_daemon = server.round_trip(&line);
        let reference = reference_line(&Service::new(), &line);
        assert_eq!(
            from_daemon, reference,
            "daemon response for @{} diverges from in-process service",
            entry.name
        );
    }
    server.stop();
}

#[test]
fn socket_grid_responses_match_in_process_history() {
    let server = TestServer::start();
    let svc = Service::new();
    let line = analyze_request(&["@histogram", "@stencil"], true);
    // Same request replayed against both sides: run 1 is all cold misses,
    // run 2 all hits. The envelopes carry those tallies, so byte-identity
    // here proves the daemon's cache behaves exactly like the library's.
    for run in 1..=2 {
        let from_daemon = server.round_trip(&line);
        let reference = reference_line(&svc, &line);
        assert_eq!(from_daemon, reference, "grid run {run} diverges");
    }
    server.stop();
}

#[test]
fn concurrent_clients_get_identical_bytes_with_zero_new_misses() {
    let server = TestServer::start();
    let line = analyze_request(&["@histogram"], true);

    // Warm the shared cache (the cold response carries all-miss memo
    // tallies, so the reference bytes are the *second*, fully-warm run),
    // then snapshot the lifetime miss count.
    server.round_trip(&line);
    let warm = server.round_trip(&line);
    let stats = parse(server.round_trip("{\"cmd\": \"stats\"}").trim()).unwrap();
    let misses_before = stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(|m| m.as_u64())
        .expect("stats reports cache misses");

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let line = line.clone();
            let path = server.path.clone();
            thread::spawn(move || {
                let mut stream = UnixStream::connect(&path).unwrap();
                writeln!(stream, "{line}").unwrap();
                let mut response = String::new();
                BufReader::new(stream).read_line(&mut response).unwrap();
                response
            })
        })
        .collect();
    for client in clients {
        let response = client.join().unwrap();
        assert_eq!(response, warm, "a concurrent client saw different bytes");
    }

    let stats = parse(server.round_trip("{\"cmd\": \"stats\"}").trim()).unwrap();
    let misses_after = stats
        .get("cache")
        .and_then(|c| c.get("misses"))
        .and_then(|m| m.as_u64())
        .unwrap();
    assert_eq!(
        misses_before, misses_after,
        "warm concurrent requests must be pure cache hits"
    );
    server.stop();
}

#[test]
fn one_connection_can_issue_many_requests_and_streams() {
    let server = TestServer::start();
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();

    // ping
    writeln!(stream, "{{\"cmd\": \"ping\"}}").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"pong\""), "got: {line}");

    // a malformed line keeps the connection alive
    line.clear();
    writeln!(stream, "this is not json").unwrap();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"error\""), "got: {line}");

    // a streamed lint: two result events, then done
    line.clear();
    writeln!(
        stream,
        "{{\"cmd\": \"lint\", \"kernels\": [\"@histogram\", \"@stencil\"], \"stream\": true}}"
    )
    .unwrap();
    for expected_file in ["@histogram", "@stencil"] {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let v = parse(line.trim()).unwrap();
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("result"));
        assert_eq!(
            v.get("result")
                .and_then(|r| r.get("file"))
                .and_then(|f| f.as_str()),
            Some(expected_file)
        );
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    let done = parse(line.trim()).unwrap();
    assert_eq!(done.get("event").and_then(|e| e.as_str()), Some("done"));
    server.stop();
}

#[test]
fn shutdown_command_stops_the_accept_loop() {
    let server = TestServer::start();
    let ack = server.round_trip("{\"cmd\": \"shutdown\"}");
    assert!(ack.contains("\"shutdown\""), "got: {ack}");
    // The accept loop observes the latch and returns; join proves it.
    server.accept_loop.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&server.path);
}

#[test]
fn http_fallback_serves_ping_and_analyze() {
    let daemon = Arc::new(Daemon::new(None));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::clone(&daemon);
    let http_loop = thread::spawn(move || server.serve_http(listener));

    let http = |request: String| -> (String, String) {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("http header/body split");
        (head.to_string(), body.to_string())
    };

    let (head, body) = http("GET /ping HTTP/1.1\r\nHost: fsd\r\n\r\n".to_string());
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    assert!(body.contains("\"pong\""), "got: {body}");

    let payload = analyze_request(&["@histogram"], false);
    let (head, body) = http(format!(
        "POST /analyze HTTP/1.1\r\nHost: fsd\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    ));
    assert!(head.starts_with("HTTP/1.1 200"), "got: {head}");
    // The body is the very same envelope line the socket path writes.
    let reference = reference_line(&Service::new(), &payload);
    assert_eq!(body, reference);

    let (head, _) = http("GET /nope HTTP/1.1\r\nHost: fsd\r\n\r\n".to_string());
    assert!(head.starts_with("HTTP/1.1 404"), "got: {head}");

    daemon.request_shutdown();
    http_loop.join().unwrap().unwrap();
}
