//! Integration: the qualitative shapes of the paper's evaluation hold on
//! scaled-down instances — who wins, in which direction effects move, and
//! where the structure of a kernel changes the trend.

use cache_sim::{simulate_kernel, SimOptions};
use cost_model::{modeled_fs_overhead, run_fs_model, AnalysisOptions, FsModelConfig};
use loop_ir::kernels;
use machine::presets;

fn modeled_pct(fs: &loop_ir::Kernel, nfs: &loop_ir::Kernel, threads: u32) -> f64 {
    modeled_fs_overhead(fs, nfs, &presets::paper48(), &AnalysisOptions::new(threads))
        .fs_overhead_fraction
        * 100.0
}

fn measured_pct(fs: &loop_ir::Kernel, nfs: &loop_ir::Kernel, threads: u32) -> f64 {
    let m = presets::paper48();
    let t_fs = simulate_kernel(fs, &m, SimOptions::new(threads)).makespan_cycles() as f64;
    let t_nfs = simulate_kernel(nfs, &m, SimOptions::new(threads)).makespan_cycles() as f64;
    ((t_fs - t_nfs) / t_fs).max(0.0) * 100.0
}

/// Tables I & II shape: DFT suffers several times more from FS than heat
/// diffusion, in both the model and the measurement.
#[test]
fn dft_fs_impact_exceeds_heat() {
    let threads = 8;
    let heat_m = modeled_pct(
        &kernels::heat_diffusion(34, 514, 1),
        &kernels::heat_diffusion(34, 514, 64),
        threads,
    );
    let dft_m = modeled_pct(
        &kernels::dft(48, 512, 1),
        &kernels::dft(48, 512, 16),
        threads,
    );
    assert!(
        dft_m > 1.5 * heat_m,
        "modeled: dft {dft_m:.1}% vs heat {heat_m:.1}%"
    );
    let heat_s = measured_pct(
        &kernels::heat_diffusion(34, 514, 1),
        &kernels::heat_diffusion(34, 514, 64),
        threads,
    );
    let dft_s = measured_pct(
        &kernels::dft(48, 512, 1),
        &kernels::dft(48, 512, 16),
        threads,
    );
    assert!(
        dft_s > heat_s,
        "measured: dft {dft_s:.1}% vs heat {heat_s:.1}%"
    );
}

/// Table III shape: linreg's *modeled* FS decays as threads grow. The
/// paper's kernel strong-scales — its inner loop runs `M/num_threads`
/// points — so the total work and with it the FS case count fall with the
/// team size.
#[test]
fn linreg_modeled_fs_decays_with_threads() {
    let cases: Vec<u64> = [2u32, 8, 24]
        .iter()
        .map(|&t| {
            run_fs_model(
                &kernels::linear_regression_scaled(96, 768, t as u64, 1),
                &FsModelConfig::for_machine(&presets::paper48(), t),
            )
            .fs_cases
        })
        .collect();
    assert!(
        cases[0] > cases[1] && cases[1] > cases[2],
        "cases must decay with threads: {cases:?}"
    );
}

/// Heat/DFT (inner-parallel) keep x_max = (m*n)/(T*C) and their FS case
/// totals stay roughly flat (paper: 94M -> 98M over 2..48 threads).
#[test]
fn inner_parallel_fs_roughly_flat_in_threads() {
    let cases: Vec<u64> = [2u32, 4, 8]
        .iter()
        .map(|&t| {
            run_fs_model(
                &kernels::heat_diffusion(18, 514, 1),
                &FsModelConfig::for_machine(&presets::paper48(), t),
            )
            .fs_events
        })
        .collect();
    let max = *cases.iter().max().unwrap() as f64;
    let min = *cases.iter().min().unwrap() as f64;
    assert!(
        max / min.max(1.0) < 2.0,
        "events should be roughly flat: {cases:?}"
    );
}

/// Fig. 2 shape: simulated execution time decreases as chunk size grows
/// from 1 toward 30 on the linreg kernel.
#[test]
fn fig2_chunk_sweep_monotone() {
    // 960 series across 8 threads: even at chunk 30 every thread gets
    // several chunks (the paper used 9600 series for the same reason).
    let m = presets::paper48();
    let times: Vec<u64> = [1u64, 4, 30]
        .iter()
        .map(|&c| {
            simulate_kernel(
                &kernels::linear_regression(960, 16, c),
                &m,
                SimOptions::new(8),
            )
            .makespan_cycles()
        })
        .collect();
    assert!(
        times[0] > times[1] && times[1] > times[2],
        "time must fall with chunk: {times:?}"
    );
    // And the gain is substantial (paper reports up to 30%).
    let gain = (times[0] - times[2]) as f64 / times[0] as f64;
    assert!(gain > 0.10, "gain = {:.1}%", gain * 100.0);
}

/// Fig. 6 shape: cumulative FS cases grow linearly in chunk runs.
#[test]
fn fig6_linearity() {
    let k = kernels::transpose(96, 96, 1);
    let r = run_fs_model(&k, &FsModelConfig::for_machine(&presets::paper48(), 8));
    let pts: Vec<(f64, f64)> = r
        .series
        .iter()
        .map(|&(x, y)| (x as f64, y as f64))
        .collect();
    assert!(pts.len() >= 8);
    let fit = cost_model::least_squares(&pts[2..]).unwrap();
    assert!(fit.r2 > 0.99, "r2 = {}", fit.r2);
    assert!(fit.a > 0.0);
}

/// Modeled and measured FS percentages land in the same band (the paper's
/// accuracy claim, Tables I-II): within a factor ~2.5 of each other for
/// inner-parallel kernels.
#[test]
fn modeled_tracks_measured_percentages() {
    let threads = 8;
    for (fs_k, nfs_k) in [
        (
            kernels::heat_diffusion(34, 514, 1),
            kernels::heat_diffusion(34, 514, 64),
        ),
        (kernels::dft(48, 512, 1), kernels::dft(48, 512, 16)),
    ] {
        let mm = modeled_pct(&fs_k, &nfs_k, threads);
        let ms = measured_pct(&fs_k, &nfs_k, threads);
        assert!(mm > 0.0 && ms > 0.0, "{}: {mm:.1}% vs {ms:.1}%", fs_k.name);
        let ratio = mm / ms;
        assert!(
            (0.4..=2.5).contains(&ratio),
            "{}: modeled {mm:.1}% vs measured {ms:.1}% (ratio {ratio:.2})",
            fs_k.name
        );
    }
}
