//! `loop_ir::validate` coverage:
//!
//! * a property test that everything `parse_kernel` produces from the
//!   bundled corpus — under random const overrides and chunk rewrites —
//!   passes structural validation (the parser's output is validate-clean by
//!   construction), and
//! * a table-driven test constructing one rejected kernel per
//!   `ValidateError` variant, checking both the variant and its rendering.

use fs_core::kernels;
use loop_ir::{
    validate, validate_bounds, AffineExpr, ArrayRef, Expr, KernelBuilder, ScalarType, Schedule,
    Stmt, ValidateError, VarId,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parser output is always structurally valid: any corpus kernel, any
    /// `N` override, any chunk size.
    #[test]
    fn parse_kernel_output_always_validates(
        entry_idx in 0usize..6,
        n in 8i64..=256,
        chunk in 1u64..=64,
    ) {
        let entry = fs_core::CORPUS[entry_idx];
        let k = fs_core::parse_kernel_with_consts(entry.source, &[("N", n)])
            .unwrap_or_else(|e| panic!("@{}: {e}", entry.name));
        prop_assert_eq!(validate(&k), Ok(()), "@{} N={} parses but fails validate", entry.name, n);
        let rechunked = fs_core::kernel_at_chunk(&k, chunk);
        prop_assert_eq!(validate(&rechunked), Ok(()), "@{} chunk={}", entry.name, chunk);
        // Round-trip through the printer stays valid too.
        let back = fs_core::parse_kernel(&loop_ir::pretty::kernel_to_dsl(&k)).unwrap();
        prop_assert_eq!(validate(&back), Ok(()));
    }
}

#[test]
fn corpus_defaults_pass_the_bounds_walk() {
    // The dynamic O(iterations) check, on the corpus at stock sizes.
    for entry in fs_core::CORPUS {
        let k = fs_core::parse_kernel(entry.source).unwrap();
        assert_eq!(validate_bounds(&k), Ok(()), "@{}", entry.name);
    }
    for k in kernels::all_kernels_small() {
        assert_eq!(validate_bounds(&k), Ok(()), "{}", k.name);
    }
}

fn base_kernel() -> loop_ir::Kernel {
    let mut b = KernelBuilder::new("t");
    let i = b.loop_var("i");
    let a = b.array("A", &[16], ScalarType::F64);
    b.parallel_for(i, 0, 16, Schedule::Static { chunk: 2 });
    b.stmt(Stmt::assign(
        ArrayRef::write(a, vec![b.idx(i)]),
        Expr::num(1.0),
    ));
    b.build()
}

/// One row per `ValidateError` variant: (name, kernel mutation, expected).
#[test]
fn every_validate_error_variant_is_reachable() {
    type Case = (
        &'static str,
        Box<dyn Fn() -> loop_ir::Kernel>,
        fn(&ValidateError) -> bool,
    );
    let cases: Vec<Case> = vec![
        (
            "NoLoops",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.loops.clear();
                k
            }),
            |e| matches!(e, ValidateError::NoLoops),
        ),
        (
            "EmptyBody",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.body.clear();
                k
            }),
            |e| matches!(e, ValidateError::EmptyBody),
        ),
        (
            "BadParallelLevel",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.parallel.level = 3;
                k
            }),
            |e| matches!(e, ValidateError::BadParallelLevel { level: 3, depth: 1 }),
        ),
        (
            "ZeroChunk",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.parallel.schedule = Schedule::Static { chunk: 0 };
                k
            }),
            |e| matches!(e, ValidateError::ZeroChunk),
        ),
        (
            "NonPositiveStep",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.loops[0].step = 0;
                k
            }),
            |e| matches!(e, ValidateError::NonPositiveStep { level: 0 }),
        ),
        (
            "NonConstParallelBounds",
            Box::new(|| {
                let mut b = KernelBuilder::new("t");
                let i = b.loop_var("i");
                let j = b.loop_var("j");
                let a = b.array("A", &[16, 16], ScalarType::F64);
                b.seq_for(i, 0, 16);
                b.parallel_for(j, 0, AffineExpr::var(i), Schedule::Static { chunk: 1 });
                b.stmt(Stmt::assign(
                    ArrayRef::write(a, vec![b.idx(i), b.idx(j)]),
                    Expr::num(1.0),
                ));
                b.build()
            }),
            |e| matches!(e, ValidateError::NonConstParallelBounds),
        ),
        (
            "BoundUsesInnerVar",
            Box::new(|| {
                let mut b = KernelBuilder::new("t");
                let i = b.loop_var("i");
                let j = b.loop_var("j");
                let a = b.array("A", &[16, 16], ScalarType::F64);
                b.seq_for(i, 0, AffineExpr::var(j));
                b.parallel_for(j, 0, 4, Schedule::Static { chunk: 1 });
                b.stmt(Stmt::assign(
                    ArrayRef::write(a, vec![b.idx(i), b.idx(j)]),
                    Expr::num(1.0),
                ));
                b.build()
            }),
            |e| matches!(e, ValidateError::BoundUsesInnerVar { level: 0, .. }),
        ),
        (
            "RankMismatch",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.body[0].lhs.indices.push(AffineExpr::constant(0));
                k
            }),
            |e| {
                matches!(
                    e,
                    ValidateError::RankMismatch {
                        expected: 1,
                        got: 2,
                        ..
                    }
                )
            },
        ),
        (
            "UnboundVar",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.body[0].lhs.indices[0] = AffineExpr::var(VarId(9));
                k
            }),
            |e| matches!(e, ValidateError::UnboundVar { var_index: 9, .. }),
        ),
        (
            "FieldOnScalar",
            Box::new(|| {
                let mut k = base_kernel();
                k.nest.body[0].lhs.field = Some(loop_ir::FieldId(0));
                k
            }),
            |e| matches!(e, ValidateError::FieldOnScalar { .. }),
        ),
        (
            "BadField",
            Box::new(|| {
                let mut b = KernelBuilder::new("t");
                let i = b.loop_var("i");
                let a = b.struct_array(
                    "S",
                    &[16],
                    loop_ir::ElemLayout::packed_struct(&[("x", ScalarType::F64)]),
                );
                b.parallel_for(i, 0, 16, Schedule::Static { chunk: 1 });
                b.stmt(Stmt::assign(
                    ArrayRef::write(a, vec![b.idx(i)]).with_field(loop_ir::FieldId(7)),
                    Expr::num(1.0),
                ));
                b.build()
            }),
            |e| matches!(e, ValidateError::BadField { field: 7, .. }),
        ),
    ];
    for (name, make, check) in &cases {
        let err = validate(&make()).expect_err(&format!("{name}: kernel should be rejected"));
        assert!(check(&err), "{name}: got {err:?}");
        // Every rendering carries human-usable context.
        assert!(!err.to_string().is_empty(), "{name}");
    }
}

#[test]
fn out_of_bounds_is_reached_by_the_bounds_walk() {
    let mut b = KernelBuilder::new("oob");
    let i = b.loop_var("i");
    let a = b.array("A", &[8], ScalarType::F64);
    b.parallel_for(i, 0, 8, Schedule::Static { chunk: 1 });
    b.stmt(Stmt::assign(
        ArrayRef::write(a, vec![AffineExpr::linear(i, 1, 1)]),
        Expr::num(0.0),
    ));
    let k = b.build();
    assert_eq!(validate(&k), Ok(()));
    match validate_bounds(&k) {
        Err(ValidateError::OutOfBounds { linear, elems, .. }) => {
            assert_eq!((linear, elems), (8, 8));
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn team_too_large_is_reported_by_analysis_entry_points() {
    let k = base_kernel();
    let err = fs_core::try_analyze(
        &k,
        &fs_core::machines::paper48(),
        &fs_core::AnalysisOptions::new(65),
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("65"),
        "TeamTooLarge surfaces through try_analyze: {err}"
    );
    let err = fs_core::try_lint(&k, &fs_core::machines::paper48(), 65).unwrap_err();
    assert!(err.to_string().contains("65"), "{err}");
}
