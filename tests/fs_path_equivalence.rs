//! Property test: all three FS-model paths — the optimized dense-table
//! walk, the symbolic closed-form path, and the reference transcription of
//! the paper's algorithm — are exact count-identical, over randomized
//! DSL-corpus kernels × team sizes × schedules × cache-state geometries.
//!
//! On divergence the failing configuration is minimized (shrink the scale,
//! then threads, then chunk, then the config knobs) and the smallest
//! diverging kernel is dumped as a `.loop` reproducer, as in
//! `tests/lint_differential.rs`.

use cost_model::{run_fs_model, FsPath};
use fs_core::{corpus_kernel_with_consts, kernel_to_dsl};
use fs_core::{FsModelConfig, FsModelResult};
use loop_ir::Kernel;
use machine::presets;
use proptest::prelude::*;

const CORPUS: [&str; 6] = ["dft", "heat", "histogram", "linreg", "matmul", "stencil"];

/// One point in the differential space.
#[derive(Debug, Clone, Copy)]
struct Params {
    template: usize,
    /// Problem-size multiplier, 1..=3.
    scale: u64,
    threads: u32,
    chunk: u64,
    stack_sets: u32,
    invalidate: bool,
    count_ts: bool,
    max_runs: Option<u64>,
}

/// Build a corpus kernel at a randomized (small) problem size. The const
/// names per kernel match `crates/core/src/corpus.rs`; sizes are scaled
/// down so a proptest case stays fast.
fn kernel_at(p: Params) -> Kernel {
    let s = p.scale as i64; // 1..=3
    let name = CORPUS[p.template];
    let consts: Vec<(&str, i64)> = match name {
        "dft" => vec![("N", 8 * s), ("K", 32 * s)],
        "heat" => vec![("N", 6 * s), ("M", 32 * s + 2)],
        "histogram" => vec![("T", 8), ("N", 64 * s)],
        "linreg" => vec![("N", 48 * s), ("M", 8 * s)],
        "matmul" => vec![("N", 8 * s), ("M", 8 * s), ("P", 8)],
        "stencil" => vec![("N", 64 * s + 2)],
        other => panic!("unknown corpus kernel {other}"),
    };
    let mut kernel = corpus_kernel_with_consts(name, &consts).expect("corpus kernel builds");
    kernel.nest.parallel.schedule = loop_ir::Schedule::Static { chunk: p.chunk };
    kernel
}

fn cfg(p: Params, path: FsPath) -> FsModelConfig {
    let mut c = FsModelConfig::for_machine(&presets::paper48(), p.threads);
    c.stack_sets = p.stack_sets;
    c.invalidate_on_detect = p.invalidate;
    c.count_true_sharing = p.count_ts;
    c.max_chunk_runs = p.max_runs;
    c.path = path;
    c
}

fn run(p: Params, path: FsPath) -> FsModelResult {
    run_fs_model(&kernel_at(p), &cfg(p, path))
}

/// Compare every counting field of both non-reference paths against the
/// reference; Some(description) on any mismatch.
fn divergence(p: Params) -> Option<String> {
    let reference = run(p, FsPath::Reference);
    for path in [FsPath::Optimized, FsPath::Symbolic] {
        let candidate = run(p, path);
        if candidate != reference {
            return Some(format!("{path} path diverges from reference ({p:?})"));
        }
    }
    None
}

/// Shrink a diverging point — smaller problem, then fewer threads, smaller
/// chunk, simpler config — keeping the divergence alive at every step.
fn minimize(mut p: Params) -> Params {
    loop {
        let mut candidates = vec![
            Params {
                scale: p.scale.saturating_sub(1),
                ..p
            },
            Params {
                threads: p.threads.saturating_sub(1),
                ..p
            },
            Params {
                chunk: p.chunk / 2,
                ..p
            },
            Params { stack_sets: 1, ..p },
            Params {
                invalidate: false,
                ..p
            },
            Params {
                count_ts: false,
                ..p
            },
            Params {
                max_runs: None,
                ..p
            },
        ];
        candidates.retain(|c| {
            c.scale >= 1
                && c.threads >= 1
                && c.chunk >= 1
                && (
                    c.scale,
                    c.threads,
                    c.chunk,
                    c.stack_sets,
                    c.invalidate,
                    c.count_ts,
                    c.max_runs,
                ) != (
                    p.scale,
                    p.threads,
                    p.chunk,
                    p.stack_sets,
                    p.invalidate,
                    p.count_ts,
                    p.max_runs,
                )
        });
        match candidates.into_iter().find(|&c| divergence(c).is_some()) {
            Some(c) => p = c,
            None => return p,
        }
    }
}

/// Dump a `.loop` reproducer for a diverging point and return its path.
fn dump_reproducer(p: Params) -> std::path::PathBuf {
    let dir = option_env!("CARGO_TARGET_TMPDIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let path = dir.join(format!(
        "fs_path_divergence_{}_s{}_t{}_c{}.loop",
        CORPUS[p.template], p.scale, p.threads, p.chunk
    ));
    std::fs::write(&path, kernel_to_dsl(&kernel_at(p))).expect("write reproducer");
    path
}

fn check_point(p: Params) {
    if let Some(msg) = divergence(p) {
        let small = minimize(p);
        let path = dump_reproducer(small);
        panic!(
            "FS-path divergence: {msg}\nminimized to {small:?}\n\
             reproducer: {} (run `fsdetect {}` per path)",
            path.display(),
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The headline differential property: >= 256 random (corpus template,
    /// scale, threads, chunk, cache geometry, model knobs) points, all
    /// three paths exact count-identical.
    #[test]
    fn all_paths_match_reference(
        template in 0usize..CORPUS.len(),
        scale in 1u64..4,
        threads in 1u32..9,
        chunk in prop::sample::select(vec![1u64, 2, 4, 16]),
        stack_sets in prop::sample::select(vec![1u32, 2, 3, 64, 1024]),
        invalidate in any::<bool>(),
        count_ts in any::<bool>(),
        max_runs in prop::sample::select(vec![None, Some(1u64), Some(2), Some(5)]),
    ) {
        check_point(Params {
            template,
            scale,
            threads,
            chunk,
            stack_sets,
            invalidate,
            count_ts,
            max_runs,
        });
    }

    /// Tiny cache states force constant eviction traffic — the hardest case
    /// for the dense tables' writer-mask bookkeeping and the symbolic
    /// path's steady-state verification.
    #[test]
    fn equivalence_under_heavy_eviction(
        name in prop::sample::select(vec!["dft", "transpose_like", "stencil"]),
        threads in 2u32..9,
        stack_lines in prop::sample::select(vec![2usize, 4, 8, 16]),
        stack_sets in prop::sample::select(vec![1u32, 2, 8]),
    ) {
        let kernel = match name {
            "transpose_like" => loop_ir::kernels::transpose(24, 24, 1),
            "dft" => {
                let p = Params {
                    template: 0, scale: 1, threads, chunk: 1,
                    stack_sets, invalidate: false, count_ts: false, max_runs: None,
                };
                kernel_at(p)
            }
            _ => {
                let p = Params {
                    template: 5, scale: 1, threads, chunk: 1,
                    stack_sets, invalidate: false, count_ts: false, max_runs: None,
                };
                kernel_at(p)
            }
        };
        let mk = |path| {
            let mut c = FsModelConfig::for_machine(&presets::paper48(), threads);
            c.stack_sets = stack_sets;
            c.stack_lines = stack_lines;
            c.path = path;
            run_fs_model(&kernel, &c)
        };
        let reference = mk(FsPath::Reference);
        for path in [FsPath::Optimized, FsPath::Symbolic] {
            let candidate = mk(path);
            assert_eq!(
                candidate, reference,
                "{path} diverges: {name} threads={threads} lines={stack_lines} sets={stack_sets}"
            );
        }
    }
}

/// Corpus kernels at their *bundled* default sizes must both dispatch
/// symbolically (no fallback — the acceptance criterion) and agree exactly
/// with the reference path.
#[test]
fn bundled_corpus_is_symbolic_and_exact() {
    fs_obs::configure(fs_obs::ObsConfig::enabled());
    for name in CORPUS {
        let kernel = fs_core::corpus_kernel(name).expect("bundled kernel parses");
        let mut reference = FsModelConfig::for_machine(&presets::paper48(), 8);
        reference.path = FsPath::Reference;
        let want = run_fs_model(&kernel, &reference);

        let mut symbolic = reference.clone();
        symbolic.path = FsPath::Symbolic;
        let fallbacks_before = fs_obs::counters::FS_SYMBOLIC_FALLBACKS.get();
        let got = run_fs_model(&kernel, &symbolic);
        let fallbacks_after = fs_obs::counters::FS_SYMBOLIC_FALLBACKS.get();
        assert_eq!(
            fallbacks_before, fallbacks_after,
            "{name}: bundled kernel fell back off the symbolic path"
        );
        assert_eq!(got, want, "{name}: symbolic counts diverge at bundled size");
    }
}

/// Fragment-boundary kernels on the analytic path: kernels whose shape
/// sits at or beyond the reuse-distance fragment's edge (triangular inner
/// bounds, non-unit mixed strides) must either attach a capacity
/// prediction or fall back — and in both cases the coherence counts are
/// reference-identical.
#[test]
fn analytic_boundary_kernels_fall_back_identically() {
    // (source, expect_capacity): the triangular nest has non-constant inner
    // trip counts so the footprint recursion must decline; the mixed-stride
    // multi-array nest is constant-bounded and stays in the fragment.
    let cases: [(&str, bool); 3] = [
        (
            "kernel tri {
  array A[32][32]: f64;
  parallel for i in 0..32 schedule(static, 2) {
    for j in 0..i + 1 {
      A[i][j] = 1.0;
    }
  }
}",
            false,
        ),
        (
            "kernel nest {
  array C[63]: f64;
  array D[511]: f64;
  parallel for i in 0..32 schedule(static, 2) {
    for j in 0..8 {
      C[2*i] += D[16*i + 2*j];
    }
  }
}",
            true,
        ),
        (
            "kernel mixed {
  array B[94]: f64;
  parallel for i in 0..32 schedule(static, 4) {
    B[i] = 1.0;
    B[3*i] = 2.0;
  }
}",
            true,
        ),
    ];
    for threads in [2u32, 8] {
        for (src, expect_capacity) in cases {
            let kernel = fs_core::parse_kernel(src).unwrap();
            let mut reference = FsModelConfig::for_machine(&presets::paper48(), threads);
            reference.path = FsPath::Reference;
            let want = run_fs_model(&kernel, &reference);

            let mut analytic = reference.clone();
            analytic.path = FsPath::Analytic;
            let mut got = run_fs_model(&kernel, &analytic);
            let capacity = got.capacity.take();
            assert_eq!(
                capacity.is_some(),
                expect_capacity,
                "{} threads={threads}: fragment membership flipped",
                kernel.name
            );
            assert_eq!(
                got, want,
                "{} threads={threads}: analytic counts diverge",
                kernel.name
            );
        }
    }
}
