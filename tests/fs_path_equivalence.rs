//! Property test: the optimized FS-model path (strength-reduced address
//! streams + dense line tables) is count-identical to the reference
//! transcription of the paper's algorithm, over randomized DSL-corpus
//! kernels × team sizes × schedules × cache-state geometries.

use cost_model::{run_fs_model, FsPath};
use fs_core::corpus_kernel_with_consts;
use fs_core::{FsModelConfig, FsModelResult};
use loop_ir::Kernel;
use machine::presets;
use proptest::prelude::*;

/// Build a corpus kernel at a randomized (small) problem size. The const
/// names per kernel match `crates/core/src/corpus.rs`; sizes are scaled
/// down so a proptest case stays fast.
fn sized_corpus_kernel(name: &str, scale: u64) -> Kernel {
    let s = scale as i64; // 1..=3
    let consts: Vec<(&str, i64)> = match name {
        "dft" => vec![("N", 8 * s), ("K", 32 * s)],
        "heat" => vec![("N", 6 * s), ("M", 32 * s + 2)],
        "histogram" => vec![("T", 8), ("N", 64 * s)],
        "linreg" => vec![("N", 48 * s), ("M", 8 * s)],
        "matmul" => vec![("N", 8 * s), ("M", 8 * s), ("P", 8)],
        "stencil" => vec![("N", 64 * s + 2)],
        other => panic!("unknown corpus kernel {other}"),
    };
    corpus_kernel_with_consts(name, &consts).expect("corpus kernel builds")
}

fn cfg(
    threads: u32,
    stack_sets: u32,
    invalidate: bool,
    count_ts: bool,
    max_runs: Option<u64>,
    path: FsPath,
) -> FsModelConfig {
    let mut c = FsModelConfig::for_machine(&presets::paper48(), threads);
    c.stack_sets = stack_sets;
    c.invalidate_on_detect = invalidate;
    c.count_true_sharing = count_ts;
    c.max_chunk_runs = max_runs;
    c.path = path;
    c
}

/// Assert every counting field matches between the two results.
fn assert_paths_agree(opt: &FsModelResult, reference: &FsModelResult, ctx: &str) {
    assert_eq!(opt, reference, "paths diverge for {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full equivalence across the bundled corpus and the model's knobs.
    #[test]
    fn optimized_path_matches_reference(
        name in prop::sample::select(vec![
            "dft",
            "heat",
            "histogram",
            "linreg",
            "matmul",
            "stencil",
        ]),
        scale in 1u64..4,
        threads in 1u32..9,
        chunk in prop::sample::select(vec![1u64, 2, 4, 16]),
        stack_sets in prop::sample::select(vec![1u32, 2, 3, 64, 1024]),
        invalidate in any::<bool>(),
        count_ts in any::<bool>(),
        max_runs in prop::sample::select(vec![None, Some(1u64), Some(2), Some(5)]),
    ) {
        let mut kernel = sized_corpus_kernel(name, scale);
        kernel.nest.parallel.schedule = loop_ir::Schedule::Static { chunk };
        let opt = run_fs_model(
            &kernel,
            &cfg(threads, stack_sets, invalidate, count_ts, max_runs, FsPath::Optimized),
        );
        let reference = run_fs_model(
            &kernel,
            &cfg(threads, stack_sets, invalidate, count_ts, max_runs, FsPath::Reference),
        );
        assert_paths_agree(
            &opt,
            &reference,
            &format!(
                "{name} scale={scale} threads={threads} chunk={chunk} \
                 sets={stack_sets} invalidate={invalidate} count_ts={count_ts} \
                 max_runs={max_runs:?}"
            ),
        );
    }

    /// Tiny cache states force constant eviction traffic — the hardest case
    /// for the dense tables' writer-mask bookkeeping.
    #[test]
    fn equivalence_under_heavy_eviction(
        name in prop::sample::select(vec!["dft", "transpose_like", "stencil"]),
        threads in 2u32..9,
        stack_lines in prop::sample::select(vec![2usize, 4, 8, 16]),
        stack_sets in prop::sample::select(vec![1u32, 2, 8]),
    ) {
        let kernel = match name {
            "transpose_like" => loop_ir::kernels::transpose(24, 24, 1),
            other => sized_corpus_kernel(other, 1),
        };
        let mk = |path| {
            let mut c = cfg(threads, stack_sets, false, false, None, path);
            c.stack_lines = stack_lines;
            run_fs_model(&kernel, &c)
        };
        let opt = mk(FsPath::Optimized);
        let reference = mk(FsPath::Reference);
        assert_paths_agree(
            &opt,
            &reference,
            &format!("{name} threads={threads} lines={stack_lines} sets={stack_sets}"),
        );
    }
}
