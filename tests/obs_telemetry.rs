//! Telemetry-primitive coverage: the log-scale [`Histogram`] and the
//! bounded ring span recorder added for the always-on daemon.
//!
//! Property tests (via the vendored proptest shim):
//!
//! * every recorded value lands in the bucket whose bounds contain it,
//! * quantile estimates are monotone in `q`, and
//! * merging per-shard snapshots equals recording every observation into
//!   one histogram.
//!
//! Plus ring-recorder semantics: overwrite keeps the newest spans, the
//! overwritten count is reported, and `chrome_trace` of a wrapped ring is
//! still valid JSON.
//!
//! The obs registry is process-global, so every test that reconfigures it
//! serializes on [`OBS_LOCK`] and restores the disabled default on exit.

use fs_core::obs::hist::{bucket_hi, bucket_index, bucket_lo, NUM_BUCKETS};
use fs_core::obs::{self, Histogram, ObsConfig};
use proptest::prelude::*;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Lock the global obs registry (tolerating poisoning from a failed test)
/// and turn counters on so `record_ns` actually records.
fn lock_counters_on() -> std::sync::MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::configure(ObsConfig {
        spans: false,
        counters: true,
        ring: None,
    });
    guard
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A recorded value increments exactly the bucket whose inclusive
    /// bounds contain it. `base << shift` sweeps every octave, not just
    /// the small values a plain range would favor.
    #[test]
    fn recorded_value_lands_in_its_bucket(base in 0u64..4096, shift in 0u32..52) {
        let _obs = lock_counters_on();
        let v = base << shift;
        let h = Histogram::new("test.prop_bucket");
        h.record_ns(v);
        let s = h.snapshot();
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.sum, v);
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert_eq!(s.buckets[i], 1, "v={} bucket={}", v, i);
        prop_assert!(bucket_lo(i) <= v && v <= bucket_hi(i),
            "v={} outside bucket {} = [{}, {}]", v, i, bucket_lo(i), bucket_hi(i));
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quantile estimates never decrease as `q` grows, and are bracketed
    /// by the estimates at q=0 and q=1.
    #[test]
    fn quantiles_are_monotone_in_q(
        values in prop::collection::vec(0u64..2_000_000_000, 1..64),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let _obs = lock_counters_on();
        let h = Histogram::new("test.prop_quantile");
        for &v in &values {
            h.record_ns(v);
        }
        let s = h.snapshot();
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(s.quantile(lo_q) <= s.quantile(hi_q),
            "quantile({}) > quantile({})", lo_q, hi_q);
        prop_assert!(s.quantile(0.0) <= s.quantile(lo_q));
        prop_assert!(s.quantile(hi_q) <= s.quantile(1.0));
        // The max estimate covers the true max (errs high by one bucket).
        let max = *values.iter().max().unwrap();
        prop_assert!(s.quantile(1.0) >= max);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Splitting a stream across two histograms and merging the snapshots
    /// is indistinguishable from recording everything into one — the
    /// property that makes per-interval / per-shard aggregation sound.
    #[test]
    fn merge_equals_recording_into_one(
        values in prop::collection::vec(0u64..(1u64 << 48), 1..64),
        cut in 0usize..64,
    ) {
        let _obs = lock_counters_on();
        let cut = cut % (values.len() + 1);
        let (left, right) = values.split_at(cut);
        let h_left = Histogram::new("test.prop_merge");
        let h_right = Histogram::new("test.prop_merge");
        let h_all = Histogram::new("test.prop_merge");
        for &v in left {
            h_left.record_ns(v);
        }
        for &v in right {
            h_right.record_ns(v);
        }
        for &v in &values {
            h_all.record_ns(v);
        }
        let mut merged = h_left.snapshot();
        merged.merge(&h_right.snapshot());
        let all = h_all.snapshot();
        prop_assert_eq!(merged.count, all.count);
        prop_assert_eq!(merged.sum, all.sum);
        prop_assert_eq!(merged.buckets, all.buckets);
        // The Prometheus series agrees too: final cumulative == count.
        let cum = merged.cumulative_buckets();
        prop_assert_eq!(cum.last().map(|&(_, c)| c), Some(merged.count));
    }
}

#[test]
fn ring_overwrite_keeps_newest_spans_and_valid_chrome_trace() {
    let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::configure(ObsConfig::ring(4));
    obs::reset();

    // 3 old spans, then 5 new ones: a capacity-4 ring must retain the
    // newest 4 (all "telemetry.new") and report 4 overwrites.
    for _ in 0..3 {
        let _span = obs::span("telemetry.old");
    }
    for _ in 0..5 {
        let _span = obs::span("telemetry.new");
    }
    let snap = obs::snapshot();
    assert_eq!(snap.spans.len(), 4, "ring holds exactly its capacity");
    assert!(
        snap.spans.iter().all(|s| s.name == "telemetry.new"),
        "overwrite must evict oldest-first: {:?}",
        snap.spans.iter().map(|s| s.name).collect::<Vec<_>>()
    );
    assert_eq!(snap.dropped_spans, 4, "3 old + 1 surplus new overwritten");
    // Retained spans stay in chronological order after wraparound.
    assert!(snap
        .spans
        .windows(2)
        .all(|w| w[0].start_ns <= w[1].start_ns));

    // A wrapped ring still exports as well-formed Chrome trace JSON.
    let trace = obs::trace::chrome_trace(&snap);
    let doc = fs_core::json::parse(&trace).expect("chrome_trace emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| match e {
            fs_core::JsonValue::Arr(v) => Some(v.len()),
            _ => None,
        })
        .expect("traceEvents array");
    assert!(events >= 4, "one trace event per retained span");

    obs::configure(ObsConfig::disabled());
}

#[test]
fn reconfiguring_ring_capacity_clears_stale_spans() {
    let _obs = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    obs::configure(ObsConfig::ring(8));
    obs::reset();
    {
        let _span = obs::span("telemetry.stale");
    }
    assert_eq!(obs::snapshot().spans.len(), 1);

    // Shrinking the ring drops buffered spans rather than carrying a
    // buffer larger than the new bound.
    obs::configure(ObsConfig::ring(2));
    let snap = obs::snapshot();
    assert!(snap.spans.is_empty(), "capacity change clears the ring");
    assert_eq!(obs::config().ring, Some(2));

    obs::configure(ObsConfig::disabled());
}
