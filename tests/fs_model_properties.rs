//! Property tests on the FS model's invariants over randomized kernels.

use cost_model::{run_fs_model, FsModelConfig};
use loop_ir::{
    kernels, AffineExpr, ArrayRef, ElemLayout, Expr, Kernel, KernelBuilder, ScalarType, Schedule,
    Stmt,
};
use machine::presets;
use proptest::prelude::*;

fn cfg(threads: u32) -> FsModelConfig {
    FsModelConfig::for_machine(&presets::paper48(), threads)
}

/// A reduction kernel with a parameterized accumulator element size — the
/// canonical FS shape (`acc[t] += data[t][i]`).
fn acc_kernel(slots: u64, inner: u64, chunk: u64, elem_size: usize) -> Kernel {
    let mut b = KernelBuilder::new("prop_acc");
    let t = b.loop_var("t");
    let i = b.loop_var("i");
    let data = b.array("data", &[slots, inner], ScalarType::F64);
    let elem = if elem_size == 8 {
        ElemLayout::packed_struct(&[("v", ScalarType::F64)])
    } else {
        ElemLayout::padded_struct(&[("v", ScalarType::F64)], elem_size)
    };
    let acc = b.struct_array("acc", &[slots], elem);
    b.parallel_for(t, 0, slots as i64, Schedule::Static { chunk });
    b.seq_for(i, 0, inner as i64);
    let v = b.field(acc, "v");
    b.stmt(Stmt::add_assign(
        ArrayRef::write(acc, vec![AffineExpr::var(t)]).with_field(v),
        Expr::read(ArrayRef::read(
            data,
            vec![AffineExpr::var(t), AffineExpr::var(i)],
        )),
    ));
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One thread can never false-share, whatever the kernel.
    #[test]
    fn single_thread_never_false_shares(
        slots in 2u64..24,
        inner in 1u64..32,
        chunk in 1u64..8,
        elem in prop::sample::select(vec![8usize, 24, 40, 64, 128]),
    ) {
        let k = acc_kernel(slots, inner, chunk, elem);
        let r = run_fs_model(&k, &cfg(1));
        prop_assert_eq!(r.fs_cases, 0);
        prop_assert_eq!(r.fs_events, 0);
        prop_assert_eq!(r.true_sharing_cases, 0);
    }

    /// Binary events never exceed multiplicity cases; bookkeeping sums hold.
    #[test]
    fn events_bounded_and_sums_consistent(
        slots in 2u64..24,
        inner in 1u64..24,
        chunk in 1u64..6,
        threads in 2u32..9,
        elem in prop::sample::select(vec![8usize, 24, 40, 64]),
    ) {
        let k = acc_kernel(slots, inner, chunk, elem);
        let r = run_fs_model(&k, &cfg(threads));
        prop_assert!(r.fs_events <= r.fs_cases.max(r.fs_events));
        prop_assert_eq!(r.fs_events, r.fs_read_events + r.fs_write_events);
        prop_assert_eq!(r.per_thread_cases.iter().sum::<u64>(), r.fs_cases);
        prop_assert_eq!(r.per_line_cases.values().sum::<u64>(), r.fs_cases);
        // Series is monotone and ends at the total.
        for w in r.series.windows(2) {
            prop_assert!(w[1].1 >= w[0].1);
        }
        if let Some(&(_, last)) = r.series.last() {
            prop_assert_eq!(last, r.fs_cases);
        }
    }

    /// Line-filling elements eliminate FS entirely; sub-line elements with
    /// chunk 1 and a real team always produce it.
    #[test]
    fn padding_dichotomy(
        slots in 4u64..24,
        inner in 2u64..24,
        threads in 2u32..9,
        elem in prop::sample::select(vec![8usize, 24, 40, 64, 128]),
    ) {
        let k = acc_kernel(slots, inner, 1, elem);
        let r = run_fs_model(&k, &cfg(threads));
        if elem % 64 == 0 {
            prop_assert_eq!(r.fs_cases, 0, "line-multiple elements cannot share");
        } else {
            prop_assert!(r.fs_cases > 0, "packed accumulators must conflict");
        }
    }

    /// The model is deterministic.
    #[test]
    fn model_is_deterministic(
        slots in 2u64..16,
        inner in 1u64..16,
        chunk in 1u64..4,
        threads in 2u32..6,
    ) {
        let k = acc_kernel(slots, inner, chunk, 8);
        let a = run_fs_model(&k, &cfg(threads));
        let b = run_fs_model(&k, &cfg(threads));
        prop_assert_eq!(a.fs_cases, b.fs_cases);
        prop_assert_eq!(a.fs_events, b.fs_events);
        prop_assert_eq!(a.series, b.series);
    }

    /// Evaluated iterations always equal the nest's total (full runs).
    #[test]
    fn iteration_accounting(
        slots in 2u64..16,
        inner in 1u64..16,
        chunk in 1u64..4,
        threads in 1u32..6,
    ) {
        let k = acc_kernel(slots, inner, chunk, 8);
        let r = run_fs_model(&k, &cfg(threads));
        prop_assert_eq!(r.iterations, slots * inner);
        prop_assert!(r.evaluated_chunk_runs <= r.total_chunk_runs);
    }

    /// Truncated evaluation (the predictor's sampling) never yields more
    /// cases than the full run and matches its prefix.
    #[test]
    fn truncation_is_a_prefix(
        slots in 8u64..32,
        inner in 2u64..16,
        threads in 2u32..6,
        keep in 1u64..4,
    ) {
        let k = acc_kernel(slots, inner, 1, 8);
        let full = run_fs_model(&k, &cfg(threads));
        let mut c = cfg(threads);
        c.max_chunk_runs = Some(keep);
        let cut = run_fs_model(&k, &c);
        prop_assert!(cut.fs_cases <= full.fs_cases);
        for (a, b) in cut.series.iter().zip(full.series.iter()) {
            prop_assert_eq!(a, b, "truncated series must be a prefix");
        }
    }
}

/// Non-proptest sanity anchors for the same invariants on the paper
/// kernels.
#[test]
fn paper_kernels_satisfy_invariants() {
    for k in kernels::all_kernels_small() {
        for threads in [1u32, 4] {
            let r = run_fs_model(&k, &cfg(threads));
            assert_eq!(
                r.per_thread_cases.iter().sum::<u64>(),
                r.fs_cases,
                "{}",
                k.name
            );
            assert_eq!(
                r.fs_events,
                r.fs_read_events + r.fs_write_events,
                "{}",
                k.name
            );
            if threads == 1 {
                assert_eq!(r.fs_cases + r.true_sharing_cases, 0, "{}", k.name);
            }
        }
    }
}
