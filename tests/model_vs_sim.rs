//! Integration: the compile-time FS model and the execution-driven MESI
//! simulator must tell the same story — the paper's central accuracy claim,
//! checked here in its qualitative form on small instances.

use cache_sim::{simulate_kernel, SimOptions};
use cost_model::{run_fs_model, FsModelConfig};
use loop_ir::{kernels, Kernel};
use machine::presets;

fn model_events(k: &Kernel, threads: u32) -> u64 {
    run_fs_model(k, &FsModelConfig::for_machine(&presets::paper48(), threads)).fs_events
}

fn sim_fs(k: &Kernel, threads: u32) -> u64 {
    simulate_kernel(k, &presets::paper48(), SimOptions::new(threads)).total_false_sharing()
}

/// Both sides must agree on *which* variant false-shares: the FS-case loop
/// must dominate the non-FS-case loop by a large factor in both.
#[test]
fn model_and_sim_agree_on_chunk_effect() {
    let cases: Vec<(Kernel, Kernel)> = vec![
        (
            kernels::heat_diffusion(34, 130, 1),
            kernels::heat_diffusion(34, 130, 64),
        ),
        (kernels::dft(64, 256, 1), kernels::dft(64, 256, 16)),
        (kernels::transpose(64, 64, 1), kernels::transpose(64, 64, 8)),
    ];
    for (fs_k, nfs_k) in cases {
        let (m_fs, m_nfs) = (model_events(&fs_k, 8), model_events(&nfs_k, 8));
        let (s_fs, s_nfs) = (sim_fs(&fs_k, 8), sim_fs(&nfs_k, 8));
        assert!(
            m_fs > 3 * m_nfs.max(1),
            "{}: model {m_fs} vs {m_nfs}",
            fs_k.name
        );
        assert!(
            s_fs > 3 * s_nfs.max(1),
            "{}: sim {s_fs} vs {s_nfs}",
            fs_k.name
        );
    }
}

/// Event *counts* should land within a small factor of the simulator's
/// coherence misses (the model is independent per-thread stacks; the
/// simulator invalidates, so they bracket each other).
#[test]
fn model_event_counts_track_sim_counts() {
    for (k, threads) in [
        (kernels::transpose(64, 64, 1), 8u32),
        (kernels::dft(64, 256, 1), 8),
        (kernels::dotprod_partials(8, 128, false), 8),
        (kernels::linear_regression(64, 32, 1), 8),
    ] {
        let m = model_events(&k, threads) as f64;
        // Sim counts FS read misses plus the upgrades writers pay.
        let stats = simulate_kernel(&k, &presets::paper48(), SimOptions::new(threads));
        let s = (stats.total_false_sharing() + stats.total_upgrades()) as f64;
        assert!(s > 0.0, "{}: sim found nothing", k.name);
        let ratio = m / s;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "{}: model {m} vs sim {s} (ratio {ratio:.2})",
            k.name
        );
    }
}

/// Padding eliminates FS in both the model and the simulator.
#[test]
fn both_sides_see_padding_fix() {
    let packed = kernels::dotprod_partials(8, 128, false);
    let padded = kernels::dotprod_partials(8, 128, true);
    assert!(model_events(&packed, 8) > 100);
    assert_eq!(model_events(&padded, 8), 0);
    assert!(sim_fs(&packed, 8) > 100);
    assert_eq!(sim_fs(&padded, 8), 0);
}

/// The simulator's victim lines and the model's victim lines coincide.
#[test]
fn victim_lines_agree() {
    let k = kernels::dotprod_partials(8, 64, false);
    let machine = presets::paper48();
    let model = run_fs_model(&k, &FsModelConfig::for_machine(&machine, 8));
    let sim = simulate_kernel(&k, &machine, SimOptions::new(8));
    let top_model: Vec<u64> = model.top_lines(2).into_iter().map(|(l, _)| l).collect();
    let top_sim: Vec<u64> = sim.top_fs_lines(2).into_iter().map(|(l, _)| l).collect();
    assert_eq!(top_model[0], top_sim[0], "hottest line must match");
}

/// Single-threaded runs produce zero sharing everywhere.
#[test]
fn single_thread_is_clean_everywhere() {
    for k in kernels::all_kernels_small() {
        assert_eq!(model_events(&k, 1), 0, "{}", k.name);
        assert_eq!(sim_fs(&k, 1), 0, "{}", k.name);
    }
}

/// On a line the whole team writes, the model's multiplicity *cases* grow
/// with the team (each insertion conflicts with every other writer, Eq. 4),
/// while binary *events* — one per insertion — stay flat, matching the
/// simulator's per-miss counting.
#[test]
fn fs_grows_with_team_on_shared_line() {
    let machine = presets::paper48();
    let counts: Vec<(u64, u64)> = [2u32, 4, 8]
        .iter()
        .map(|&t| {
            let r = run_fs_model(
                &kernels::dotprod_partials(8, 64, false),
                &FsModelConfig::for_machine(&machine, t),
            );
            (r.fs_cases, r.fs_events)
        })
        .collect();
    assert!(
        counts[0].0 < counts[1].0 && counts[1].0 < counts[2].0,
        "cases must grow with team: {counts:?}"
    );
    let spread = counts.iter().map(|c| c.1).max().unwrap() as f64
        / counts.iter().map(|c| c.1).min().unwrap().max(1) as f64;
    assert!(spread < 1.5, "events roughly flat: {counts:?}");
    // The simulator, which invalidates on every conflict, also sees
    // substantial FS at every team size.
    for t in [2u32, 8] {
        assert!(
            sim_fs(&kernels::dotprod_partials(8, 64, false), t) > 200,
            "T={t}"
        );
    }
}
