//! Array declarations with element layouts (plain scalars or structs).
//!
//! The Phoenix linear-regression kernel that motivates the paper accumulates
//! into an *array of structs* (`tid_args[j].sx += ...`), and the false
//! sharing it suffers comes precisely from neighbouring structs sharing a
//! cache line. [`ElemLayout`] therefore models both plain scalar elements and
//! structured elements with named fields at byte offsets.

use crate::types::ScalarType;

/// Identifier of an array within a [`crate::Kernel`] (index into its array
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl ArrayId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a field within a struct-element array (index into
/// [`ElemLayout::fields`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldId(pub u32);

impl FieldId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named field of a struct element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub name: String,
    /// Byte offset of the field within the element.
    pub offset: usize,
    pub ty: ScalarType,
}

/// Byte-level layout of one array element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElemLayout {
    /// A single scalar per element.
    Scalar(ScalarType),
    /// A struct per element: `size` bytes total (including any padding the
    /// declarer chose), with `fields` at fixed offsets.
    Struct { size: usize, fields: Vec<FieldDef> },
}

impl ElemLayout {
    /// Build a packed struct layout from `(name, type)` pairs, assigning
    /// offsets sequentially with no padding (the layout a C compiler gives
    /// homogeneous f64 structs, and the worst case for false sharing).
    pub fn packed_struct(fields: &[(&str, ScalarType)]) -> Self {
        let mut defs = Vec::with_capacity(fields.len());
        let mut off = 0;
        for &(name, ty) in fields {
            defs.push(FieldDef {
                name: name.to_string(),
                offset: off,
                ty,
            });
            off += ty.size_bytes();
        }
        ElemLayout::Struct {
            size: off,
            fields: defs,
        }
    }

    /// Like [`Self::packed_struct`] but padded up to `size` bytes — the
    /// classic false-sharing mitigation of padding each element to a full
    /// cache line.
    pub fn padded_struct(fields: &[(&str, ScalarType)], size: usize) -> Self {
        match Self::packed_struct(fields) {
            ElemLayout::Struct {
                size: packed,
                fields,
            } => {
                assert!(
                    size >= packed,
                    "padded size {size} smaller than packed size {packed}"
                );
                ElemLayout::Struct { size, fields }
            }
            ElemLayout::Scalar(_) => unreachable!(),
        }
    }

    /// Total size of one element in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ElemLayout::Scalar(t) => t.size_bytes(),
            ElemLayout::Struct { size, .. } => *size,
        }
    }

    /// The struct fields (empty slice for scalar elements).
    pub fn fields(&self) -> &[FieldDef] {
        match self {
            ElemLayout::Scalar(_) => &[],
            ElemLayout::Struct { fields, .. } => fields,
        }
    }

    /// Look up a field by name.
    pub fn field_named(&self, name: &str) -> Option<(FieldId, &FieldDef)> {
        self.fields()
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FieldId(i as u32), f))
    }

    /// Byte offset and access size of a field (or of the whole scalar when
    /// `field` is `None`).
    pub fn field_offset_size(&self, field: Option<FieldId>) -> (usize, usize) {
        match (self, field) {
            (ElemLayout::Scalar(t), _) => (0, t.size_bytes()),
            (ElemLayout::Struct { size, .. }, None) => (0, *size),
            (ElemLayout::Struct { fields, .. }, Some(fid)) => {
                let f = &fields[fid.index()];
                (f.offset, f.ty.size_bytes())
            }
        }
    }

    /// Scalar type used for arithmetic on this element (a struct uses the
    /// type of its first field; homogeneous structs are the common case).
    pub fn arith_type(&self) -> ScalarType {
        match self {
            ElemLayout::Scalar(t) => *t,
            ElemLayout::Struct { fields, .. } => {
                fields.first().map(|f| f.ty).unwrap_or(ScalarType::U8)
            }
        }
    }
}

/// A declared array: a name, dimensions (row-major), and an element layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    pub name: String,
    /// Extents, outermost dimension first (row-major storage).
    pub dims: Vec<u64>,
    pub elem: ElemLayout,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn num_elems(&self) -> u64 {
        self.dims.iter().product()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.num_elems() * self.elem.size_bytes() as u64
    }

    /// Row-major linear element index for a subscript vector.
    ///
    /// Out-of-bounds subscripts are *not* rejected here (stencil kernels read
    /// halo cells like `A[i-1]`); they linearize arithmetically, and
    /// [`crate::validate()`] flags genuinely invalid programs.
    #[inline]
    pub fn linearize(&self, subs: &[i64]) -> i64 {
        debug_assert_eq!(subs.len(), self.dims.len());
        let mut lin: i64 = 0;
        for (k, &s) in subs.iter().enumerate() {
            lin = lin * self.dims[k] as i64 + s;
        }
        lin
    }

    /// Byte offset of `(subs, field)` from the start of the array.
    #[inline]
    pub fn byte_offset(&self, subs: &[i64], field: Option<FieldId>) -> i64 {
        let (foff, _) = self.elem.field_offset_size(field);
        self.linearize(subs) * self.elem.size_bytes() as i64 + foff as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_struct_layout() {
        let l = ElemLayout::packed_struct(&[
            ("sx", ScalarType::F64),
            ("sy", ScalarType::F64),
            ("n", ScalarType::I32),
        ]);
        assert_eq!(l.size_bytes(), 20);
        let (fid, f) = l.field_named("sy").unwrap();
        assert_eq!(fid, FieldId(1));
        assert_eq!(f.offset, 8);
        assert_eq!(l.field_offset_size(Some(fid)), (8, 8));
        assert!(l.field_named("nope").is_none());
    }

    #[test]
    fn padded_struct_layout() {
        let l = ElemLayout::padded_struct(&[("sx", ScalarType::F64)], 64);
        assert_eq!(l.size_bytes(), 64);
        assert_eq!(l.field_offset_size(None), (0, 64));
    }

    #[test]
    #[should_panic(expected = "smaller than packed")]
    fn padded_struct_too_small_panics() {
        ElemLayout::padded_struct(&[("a", ScalarType::F64), ("b", ScalarType::F64)], 8);
    }

    #[test]
    fn linearize_row_major() {
        let a = ArrayDecl {
            name: "A".into(),
            dims: vec![4, 8],
            elem: ElemLayout::Scalar(ScalarType::F64),
        };
        assert_eq!(a.linearize(&[0, 0]), 0);
        assert_eq!(a.linearize(&[1, 0]), 8);
        assert_eq!(a.linearize(&[2, 3]), 19);
        assert_eq!(a.byte_offset(&[1, 1], None), 9 * 8);
        assert_eq!(a.num_elems(), 32);
        assert_eq!(a.size_bytes(), 256);
    }

    #[test]
    fn negative_halo_linearizes_arithmetically() {
        let a = ArrayDecl {
            name: "A".into(),
            dims: vec![8],
            elem: ElemLayout::Scalar(ScalarType::F64),
        };
        assert_eq!(a.linearize(&[-1]), -1);
    }

    #[test]
    fn struct_array_byte_offsets() {
        let a = ArrayDecl {
            name: "args".into(),
            dims: vec![16],
            elem: ElemLayout::packed_struct(&[("sx", ScalarType::F64), ("sxx", ScalarType::F64)]),
        };
        let (sxx, _) = a.elem.field_named("sxx").unwrap();
        assert_eq!(a.byte_offset(&[3], Some(sxx)), 3 * 16 + 8);
    }
}
