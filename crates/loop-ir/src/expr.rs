//! Affine expressions over loop index variables.
//!
//! Array subscripts and loop bounds in the IR are *affine*: a sum of
//! `coefficient * loop_variable` terms plus an integer constant. Affinity is
//! what lets the false-sharing model compute, at compile time, exactly which
//! cache line a reference touches at a given iteration.

use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Identifier of a loop index variable.
///
/// `VarId(d)` refers to the variable introduced by the loop at depth `d`
/// within a [`crate::Kernel`] (outermost loop is depth 0). Evaluation
/// environments are plain slices indexed by this id, which keeps the
/// per-iteration hot path allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An affine expression `c0 + c1*v1 + c2*v2 + ...`.
///
/// Terms are kept sorted by [`VarId`] with no zero coefficients and no
/// duplicate variables, so structural equality coincides with semantic
/// equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    terms: Vec<(VarId, i64)>,
    constant: i64,
}

impl AffineExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        AffineExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single variable `v`.
    pub fn var(v: VarId) -> Self {
        AffineExpr {
            terms: vec![(v, 1)],
            constant: 0,
        }
    }

    /// Builds `coeff * v + constant`.
    pub fn linear(v: VarId, coeff: i64, constant: i64) -> Self {
        let mut e = AffineExpr {
            terms: vec![(v, coeff)],
            constant,
        };
        e.normalize();
        e
    }

    /// Builds an expression from raw parts; terms are normalized.
    pub fn from_terms(terms: Vec<(VarId, i64)>, constant: i64) -> Self {
        let mut e = AffineExpr { terms, constant };
        e.normalize();
        e
    }

    fn normalize(&mut self) {
        self.terms.sort_by_key(|&(v, _)| v);
        let mut out: Vec<(VarId, i64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0);
        self.terms = out;
    }

    /// The constant component.
    pub fn constant_part(&self) -> i64 {
        self.constant
    }

    /// The (variable, coefficient) terms, sorted by variable.
    pub fn terms(&self) -> &[(VarId, i64)] {
        &self.terms
    }

    /// Coefficient of variable `v` (0 if absent).
    pub fn coeff(&self, v: VarId) -> i64 {
        self.terms
            .iter()
            .find(|&&(tv, _)| tv == v)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// True if the expression has no variable terms.
    pub fn is_const(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if [`Self::is_const`].
    pub fn as_const(&self) -> Option<i64> {
        if self.is_const() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// True if the expression mentions variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        self.coeff(v) != 0
    }

    /// The largest [`VarId`] referenced, if any.
    pub fn max_var(&self) -> Option<VarId> {
        self.terms.last().map(|&(v, _)| v)
    }

    /// Evaluate under an environment mapping `VarId(i)` to `env[i]`.
    ///
    /// # Panics
    /// Panics if a referenced variable is out of range of `env`.
    #[inline]
    pub fn eval(&self, env: &[i64]) -> i64 {
        let mut acc = self.constant;
        for &(v, c) in &self.terms {
            acc += c * env[v.index()];
        }
        acc
    }

    /// Multiply by an integer scalar.
    pub fn scaled(&self, k: i64) -> Self {
        let mut e = AffineExpr {
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        };
        e.normalize();
        e
    }

    /// Substitute a constant value for variable `v`.
    pub fn substitute(&self, v: VarId, value: i64) -> Self {
        let mut constant = self.constant;
        let mut terms = Vec::with_capacity(self.terms.len());
        for &(tv, c) in &self.terms {
            if tv == v {
                constant += c * value;
            } else {
                terms.push((tv, c));
            }
        }
        AffineExpr { terms, constant }
    }

    /// Render with variable names supplied by `names` (indexed by `VarId`).
    pub fn display_with<'a>(&'a self, names: &'a [String]) -> impl fmt::Display + 'a {
        DisplayWith { expr: self, names }
    }
}

impl From<i64> for AffineExpr {
    fn from(c: i64) -> Self {
        AffineExpr::constant(c)
    }
}

impl From<VarId> for AffineExpr {
    fn from(v: VarId) -> Self {
        AffineExpr::var(v)
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(self, rhs: AffineExpr) -> AffineExpr {
        let mut terms = self.terms;
        terms.extend(rhs.terms);
        AffineExpr::from_terms(terms, self.constant + rhs.constant)
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: AffineExpr) -> AffineExpr {
        self + rhs.neg()
    }
}

impl Neg for AffineExpr {
    type Output = AffineExpr;
    fn neg(self) -> AffineExpr {
        self.scaled(-1)
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(self, k: i64) -> AffineExpr {
        self.scaled(k)
    }
}

struct DisplayWith<'a> {
    expr: &'a AffineExpr,
    names: &'a [String],
}

impl fmt::Display for DisplayWith<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e = self.expr;
        if e.terms.is_empty() {
            return write!(f, "{}", e.constant);
        }
        let mut first = true;
        for &(v, c) in &e.terms {
            let name = self.names.get(v.index()).map(|s| s.as_str()).unwrap_or("?");
            if first {
                match c {
                    1 => write!(f, "{name}")?,
                    -1 => write!(f, "-{name}")?,
                    _ => write!(f, "{c}*{name}")?,
                }
                first = false;
            } else if c < 0 {
                if c == -1 {
                    write!(f, " - {name}")?;
                } else {
                    write!(f, " - {}*{name}", -c)?;
                }
            } else if c == 1 {
                write!(f, " + {name}")?;
            } else {
                write!(f, " + {c}*{name}")?;
            }
        }
        if e.constant > 0 {
            write!(f, " + {}", e.constant)?;
        } else if e.constant < 0 {
            write!(f, " - {}", -e.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn normalization_merges_and_drops_zeros() {
        let e = AffineExpr::from_terms(vec![(v(1), 2), (v(0), 3), (v(1), -2)], 5);
        assert_eq!(e.terms(), &[(v(0), 3)]);
        assert_eq!(e.constant_part(), 5);
    }

    #[test]
    fn eval_matches_definition() {
        // 2*i - 3*j + 7 at i=4, j=2 => 8 - 6 + 7 = 9
        let e = AffineExpr::from_terms(vec![(v(0), 2), (v(1), -3)], 7);
        assert_eq!(e.eval(&[4, 2]), 9);
    }

    #[test]
    fn arithmetic_ops() {
        let i = AffineExpr::var(v(0));
        let j = AffineExpr::var(v(1));
        let e = i.clone() * 2 + j.clone() - AffineExpr::constant(1);
        assert_eq!(e.eval(&[3, 10]), 15);
        let cancelled = e.clone() - e;
        assert!(cancelled.is_const());
        assert_eq!(cancelled.as_const(), Some(0));
    }

    #[test]
    fn substitute_removes_var() {
        let e = AffineExpr::from_terms(vec![(v(0), 2), (v(1), 1)], 1);
        let s = e.substitute(v(0), 10);
        assert_eq!(s.terms(), &[(v(1), 1)]);
        assert_eq!(s.constant_part(), 21);
        assert!(!s.uses_var(v(0)));
    }

    #[test]
    fn display_is_readable() {
        let names = vec!["i".to_string(), "j".to_string()];
        let e = AffineExpr::from_terms(vec![(v(0), 1), (v(1), -2)], 3);
        assert_eq!(format!("{}", e.display_with(&names)), "i - 2*j + 3");
        let c = AffineExpr::constant(-4);
        assert_eq!(format!("{}", c.display_with(&names)), "-4");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_expr() -> impl Strategy<Value = AffineExpr> {
            (
                prop::collection::vec((0u32..6, -50i64..50), 0..6),
                -1000i64..1000,
            )
                .prop_map(|(terms, c)| {
                    AffineExpr::from_terms(
                        terms.into_iter().map(|(v, k)| (VarId(v), k)).collect(),
                        c,
                    )
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Structural equality after normalization implies evaluation
            /// equality, and arithmetic commutes with evaluation.
            #[test]
            fn eval_homomorphism(a in arb_expr(), b in arb_expr(), env in prop::collection::vec(-100i64..100, 6)) {
                let sum = a.clone() + b.clone();
                prop_assert_eq!(sum.eval(&env), a.eval(&env) + b.eval(&env));
                let diff = a.clone() - b.clone();
                prop_assert_eq!(diff.eval(&env), a.eval(&env) - b.eval(&env));
                let scaled = a.clone() * 3;
                prop_assert_eq!(scaled.eval(&env), 3 * a.eval(&env));
            }

            /// Addition is commutative and associative structurally (thanks
            /// to normalization), not just semantically.
            #[test]
            fn addition_laws(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
                prop_assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
                prop_assert_eq!(
                    (a.clone() + b.clone()) + c.clone(),
                    a.clone() + (b.clone() + c.clone())
                );
                let zero = AffineExpr::constant(0);
                prop_assert_eq!(a.clone() + zero, a.clone());
            }

            /// x - x = 0 and substitution removes the variable.
            #[test]
            fn cancellation_and_substitution(a in arb_expr(), v in 0u32..6, val in -100i64..100) {
                let cancelled = a.clone() - a.clone();
                prop_assert_eq!(cancelled.as_const(), Some(0));
                let s = a.substitute(VarId(v), val);
                prop_assert!(!s.uses_var(VarId(v)));
                // Substitution agrees with evaluation.
                let mut env = vec![7i64; 6];
                env[v as usize] = val;
                prop_assert_eq!(s.eval(&env), a.eval(&env));
            }

            /// display_with -> DSL affine parser round trip.
            #[test]
            fn display_reparses(a in arb_expr()) {
                let names: Vec<String> = (0..6).map(|i| format!("v{i}")).collect();
                let shown = format!("{}", a.display_with(&names));
                // Parse through a tiny kernel whose subscript is `shown`.
                let src = format!(
                    "kernel k {{ array x[1000000]: f64;
                       parallel for v0 in 0..2 schedule(static, 1) {{
                       for v1 in 0..2 {{ for v2 in 0..2 {{ for v3 in 0..2 {{
                       for v4 in 0..2 {{ for v5 in 0..2 {{
                         x[({shown}) + 500000] = 1.0;
                       }} }} }} }} }} }} }}"
                );
                let k = crate::dsl::parse_kernel(&src).unwrap_or_else(|e| panic!("{e}
        {src}"));
                let parsed = &k.nest.body[0].lhs.indices[0];
                let expected = a.clone() + AffineExpr::constant(500000);
                prop_assert_eq!(parsed, &expected);
            }
        }
    }

    #[test]
    fn coeff_and_max_var() {
        let e = AffineExpr::from_terms(vec![(v(2), 5), (v(0), 1)], 0);
        assert_eq!(e.coeff(v(2)), 5);
        assert_eq!(e.coeff(v(1)), 0);
        assert_eq!(e.max_var(), Some(v(2)));
        assert_eq!(AffineExpr::constant(3).max_var(), None);
    }
}
