//! Textual DSL front-end for kernels.
//!
//! Since the reproduction cannot reuse Open64's C front-end and WHIRL IR, it
//! accepts parallel loop nests in a small, C-like text form and parses them
//! into [`crate::Kernel`]s — the "custom loop IR analyzer" substrate. The
//! grammar covers exactly what the paper's model consumes:
//!
//! ```text
//! kernel heat {
//!   const N = 1024;
//!   array A[N][N]: f64;
//!   array B[N][N]: f64;
//!   array acc[N] of { sx: f64, sy: f64 } pad 64;   // struct elements
//!   for i in 1..N-1 {
//!     parallel for j in 1..N-1 schedule(static, 4) {
//!       B[i][j] = A[i][j] + 0.1 * (A[i-1][j] + A[i+1][j] - 2.0 * A[i][j]);
//!       acc[j].sx += A[i][j];
//!     }
//!   }
//! }
//! ```
//!
//! * `const` names are folded at parse time (and can be overridden via
//!   [`parse_kernel_with_consts`], which is how the experiment harness
//!   scales workloads).
//! * Array subscripts and loop bounds must be *affine* in the loop
//!   variables; the parser rejects anything else.
//! * Exactly one loop carries the `parallel ... schedule(static, chunk)`
//!   annotation.
//! * Statement RHS grammar: `+ - * /`, unary `-`, `sqrt(e)`, `sincos(e)`,
//!   f64 literals, and array/field reads. Assignment operators: `=`, `+=`,
//!   `-=`, `*=`.

mod lexer;
mod parser;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_kernel, parse_kernel_with_consts, ParseError};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::pretty::kernel_to_dsl;
    use crate::validate::validate;

    #[test]
    fn parse_minimal_kernel() {
        let k = parse_kernel(
            "kernel k { array A[8]: f64; parallel for i in 0..8 schedule(static, 1) { A[i] = 1.0; } }",
        )
        .unwrap();
        assert_eq!(k.name, "k");
        assert_eq!(k.nest.depth(), 1);
        validate(&k).unwrap();
    }

    #[test]
    fn roundtrip_all_builtin_kernels() {
        for k in kernels::all_kernels_small() {
            let src = kernel_to_dsl(&k);
            let back = parse_kernel(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", k.name));
            assert_eq!(k, back, "round-trip mismatch for {}\n{src}", k.name);
        }
    }

    #[test]
    fn consts_fold_and_override() {
        let src = "kernel k {
            const N = 16;
            array A[N]: f64;
            parallel for i in 0..N schedule(static, 1) { A[i] = 0.0; }
        }";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.arrays[0].dims, vec![16]);
        assert_eq!(k.nest.parallel_trip_count(), Some(16));
        let k2 = parse_kernel_with_consts(src, &[("N", 64)]).unwrap();
        assert_eq!(k2.arrays[0].dims, vec![64]);
        assert_eq!(k2.nest.parallel_trip_count(), Some(64));
    }
}
