//! Textual DSL front-end for kernels.
//!
//! Since the reproduction cannot reuse Open64's C front-end and WHIRL IR, it
//! accepts parallel loop nests in a small, C-like text form and parses them
//! into [`crate::Kernel`]s — the "custom loop IR analyzer" substrate. The
//! grammar covers exactly what the paper's model consumes:
//!
//! ```text
//! kernel heat {
//!   const N = 1024;
//!   array A[N][N]: f64;
//!   array B[N][N]: f64;
//!   array acc[N] of { sx: f64, sy: f64 } pad 64;   // struct elements
//!   for i in 1..N-1 {
//!     parallel for j in 1..N-1 schedule(static, 4) {
//!       B[i][j] = A[i][j] + 0.1 * (A[i-1][j] + A[i+1][j] - 2.0 * A[i][j]);
//!       acc[j].sx += A[i][j];
//!     }
//!   }
//! }
//! ```
//!
//! * `const` names are folded at parse time (and can be overridden via
//!   [`parse_kernel_with_consts`], which is how the experiment harness
//!   scales workloads).
//! * Array subscripts and loop bounds must be *affine* in the loop
//!   variables; the parser rejects anything else.
//! * Exactly one loop carries the `parallel ... schedule(static, chunk)`
//!   annotation.
//! * Statement RHS grammar: `+ - * /`, unary `-`, `sqrt(e)`, `sincos(e)`,
//!   f64 literals, and array/field reads. Assignment operators: `=`, `+=`,
//!   `-=`, `*=`.

mod lexer;
mod parser;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_kernel, parse_kernel_with_consts, ParseError, SourceNamed};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::pretty::kernel_to_dsl;
    use crate::validate::validate;

    #[test]
    fn parse_minimal_kernel() {
        let k = parse_kernel(
            "kernel k { array A[8]: f64; parallel for i in 0..8 schedule(static, 1) { A[i] = 1.0; } }",
        )
        .unwrap();
        assert_eq!(k.name, "k");
        assert_eq!(k.nest.depth(), 1);
        validate(&k).unwrap();
    }

    #[test]
    fn roundtrip_all_builtin_kernels() {
        for k in kernels::all_kernels_small() {
            let src = kernel_to_dsl(&k);
            let back = parse_kernel(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", k.name));
            assert_eq!(k, back, "round-trip mismatch for {}\n{src}", k.name);
        }
    }

    #[test]
    fn parsed_references_carry_spans() {
        let src = "kernel k {
  array A[8]: f64;
  array B[8]: f64;
  parallel for i in 0..8 schedule(static, 1) {
    A[i] = B[i] + 1.0;
  }
}";
        let k = parse_kernel(src).unwrap();
        let stmt = &k.nest.body[0];
        // LHS `A` sits on line 5, column 5; RHS `B` at column 12.
        assert_eq!(stmt.lhs.span, Some(crate::SourceSpan::new(5, 5)));
        let mut reads = Vec::new();
        stmt.rhs.collect_reads(&mut reads);
        assert_eq!(reads[0].span, Some(crate::SourceSpan::new(5, 12)));
        // Builder-built kernels carry no spans yet still compare equal to
        // their parsed round-trip (span-neutral equality).
        let back = parse_kernel(&kernel_to_dsl(&k)).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn with_source_name_prefixes_file_position() {
        let err = parse_kernel("kernel k { array A[8]: f64; }").unwrap_err();
        let text = err.with_source_name("kernels/k.loop").to_string();
        assert!(
            text.starts_with("kernels/k.loop:"),
            "file prefix present: {text}"
        );
        assert!(text.contains("parse error"), "{text}");
        // line:col between name and message
        let rest = text.strip_prefix("kernels/k.loop:").unwrap();
        let mut it = rest.splitn(3, ':');
        it.next().unwrap().parse::<u32>().unwrap();
        it.next().unwrap().parse::<u32>().unwrap();

        let lex_err = crate::dsl::lexer::lex("kernel k { ~ }").unwrap_err();
        let text = lex_err.with_source_name("bad.loop").to_string();
        assert!(text.starts_with("bad.loop:1:"), "{text}");
        assert!(text.contains("lex error"), "{text}");
    }

    #[test]
    fn consts_fold_and_override() {
        let src = "kernel k {
            const N = 16;
            array A[N]: f64;
            parallel for i in 0..N schedule(static, 1) { A[i] = 0.0; }
        }";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.arrays[0].dims, vec![16]);
        assert_eq!(k.nest.parallel_trip_count(), Some(16));
        let k2 = parse_kernel_with_consts(src, &[("N", 64)]).unwrap();
        assert_eq!(k2.arrays[0].dims, vec![64]);
        assert_eq!(k2.nest.parallel_trip_count(), Some(64));
    }
}
