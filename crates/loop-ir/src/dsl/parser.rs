//! Recursive-descent parser lowering DSL source to [`Kernel`].

use super::lexer::{lex, LexError, Token, TokenKind};
use crate::array::{ArrayDecl, ArrayId, ElemLayout, FieldDef};
use crate::expr::{AffineExpr, VarId};
use crate::kernel::Kernel;
use crate::nest::{Loop, LoopNest, Parallel, Schedule};
use crate::reference::{AccessKind, ArrayRef, SourceSpan};
use crate::stmt::{AssignOp, BinOp, Expr, Stmt, UnOp};
use crate::types::ScalarType;
use crate::validate::{validate, ValidateError};
use std::collections::HashMap;
use std::fmt;

/// A parse (or post-parse validation) error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Display adapter prefixing the error with a file name, in the
    /// `file:line:col: message` shape editors and CI annotators parse:
    /// `kernels/stencil.loop:3:5: parse error: unknown array 'c'`.
    pub fn with_source_name<'a>(&'a self, name: &'a str) -> SourceNamed<'a> {
        SourceNamed {
            name,
            line: self.line,
            col: self.col,
            kind: "parse error",
            message: &self.message,
        }
    }
}

impl LexError {
    /// Display adapter prefixing the error with a file name (see
    /// [`ParseError::with_source_name`]).
    pub fn with_source_name<'a>(&'a self, name: &'a str) -> SourceNamed<'a> {
        SourceNamed {
            name,
            line: self.line,
            col: self.col,
            kind: "lex error",
            message: &self.message,
        }
    }
}

/// See [`ParseError::with_source_name`].
#[derive(Debug, Clone, Copy)]
pub struct SourceNamed<'a> {
    name: &'a str,
    line: u32,
    col: u32,
    kind: &'static str,
    message: &'a str,
}

impl fmt::Display for SourceNamed<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.name, self.line, self.col, self.kind, self.message
        )
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parse DSL source into a validated [`Kernel`].
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    parse_kernel_with_consts(src, &[])
}

/// Parse with externally supplied `const` overrides: any `const NAME = ...;`
/// in the source whose name appears in `consts` takes the supplied value
/// instead. Names not declared in the source are also made visible. This is
/// how the experiment harness scales a kernel without editing its source.
pub fn parse_kernel_with_consts(src: &str, consts: &[(&str, i64)]) -> Result<Kernel, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        consts: consts.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        overridden: consts.iter().map(|&(n, _)| n.to_string()).collect(),
        vars: Vec::new(),
        arrays: Vec::new(),
        array_ids: HashMap::new(),
        parallel: None,
    };
    let kernel = p.kernel()?;
    validate(&kernel).map_err(|e: ValidateError| ParseError {
        message: e.to_string(),
        line: 1,
        col: 1,
    })?;
    Ok(kernel)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    consts: HashMap<String, i64>,
    overridden: Vec<String>,
    vars: Vec<String>,
    arrays: Vec<ArrayDecl>,
    array_ids: HashMap<String, ArrayId>,
    parallel: Option<Parallel>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: msg.into(),
            line: t.line,
            col: t.col,
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok(s),
                    _ => unreachable!(),
                }
            }
            other => Err(self.err_here(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err_here(format!("expected '{kw}', found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err_here(format!("expected integer, found {other}"))),
        }
    }

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        self.expect_keyword("kernel")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::LBrace)?;
        // Declarations.
        loop {
            if self.at_keyword("const") {
                self.const_decl()?;
            } else if self.at_keyword("array") {
                self.array_decl()?;
            } else {
                break;
            }
        }
        // The loop nest.
        let (loops, body) = self.loop_nest()?;
        self.expect(&TokenKind::RBrace)?;
        self.expect(&TokenKind::Eof)?;
        let parallel = self
            .parallel
            .ok_or_else(|| self.err_here("kernel has no parallel loop"))?;
        Ok(Kernel {
            name,
            vars: std::mem::take(&mut self.vars),
            arrays: std::mem::take(&mut self.arrays),
            nest: LoopNest {
                loops,
                body,
                parallel,
            },
        })
    }

    fn const_decl(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("const")?;
        let name = self.expect_ident()?;
        self.expect(&TokenKind::Eq)?;
        let value = self.const_affine()?;
        self.expect(&TokenKind::Semi)?;
        if !self.overridden.contains(&name) && self.consts.insert(name.clone(), value).is_some() {
            return Err(self.err_here(format!("duplicate const '{name}'")));
        }
        Ok(())
    }

    /// An affine expression that must fold to a constant (no loop vars in
    /// scope yet, or none referenced).
    fn const_affine(&mut self) -> Result<i64, ParseError> {
        let e = self.affine_expr()?;
        e.as_const()
            .ok_or_else(|| self.err_here("expression must be a compile-time constant"))
    }

    fn array_decl(&mut self) -> Result<(), ParseError> {
        self.expect_keyword("array")?;
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            let d = self.const_affine()?;
            if d <= 0 {
                return Err(self.err_here(format!("array dimension must be positive, got {d}")));
            }
            dims.push(d as u64);
            self.expect(&TokenKind::RBracket)?;
        }
        if dims.is_empty() {
            return Err(self.err_here(format!("array '{name}' needs at least one dimension")));
        }
        let elem = if self.peek().kind == TokenKind::Colon {
            self.bump();
            let ty = self.scalar_type()?;
            ElemLayout::Scalar(ty)
        } else if self.at_keyword("of") {
            self.bump();
            self.expect(&TokenKind::LBrace)?;
            let mut fields = Vec::new();
            let mut offset = 0usize;
            loop {
                let fname = self.expect_ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.scalar_type()?;
                if fields.iter().any(|f: &FieldDef| f.name == fname) {
                    return Err(self.err_here(format!("duplicate field '{fname}'")));
                }
                fields.push(FieldDef {
                    name: fname,
                    offset,
                    ty,
                });
                offset += ty.size_bytes();
                if self.peek().kind == TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::RBrace)?;
            let mut size = offset;
            if self.at_keyword("pad") {
                self.bump();
                let padded = self.expect_int()?;
                if (padded as usize) < size {
                    return Err(
                        self.err_here(format!("pad {padded} smaller than packed size {size}"))
                    );
                }
                size = padded as usize;
            }
            ElemLayout::Struct { size, fields }
        } else {
            return Err(self.err_here("expected ':' type or 'of { fields }' in array declaration"));
        };
        self.expect(&TokenKind::Semi)?;
        if self.array_ids.contains_key(&name) {
            return Err(self.err_here(format!("duplicate array '{name}'")));
        }
        let id = ArrayId(self.arrays.len() as u32);
        self.array_ids.insert(name.clone(), id);
        self.arrays.push(ArrayDecl { name, dims, elem });
        Ok(())
    }

    fn scalar_type(&mut self) -> Result<ScalarType, ParseError> {
        let name = self.expect_ident()?;
        ScalarType::from_keyword(&name)
            .ok_or_else(|| self.err_here(format!("unknown scalar type '{name}'")))
    }

    /// Parse the (perfect) loop nest: one loop, whose body is either another
    /// loop or a non-empty statement list.
    fn loop_nest(&mut self) -> Result<(Vec<Loop>, Vec<Stmt>), ParseError> {
        let mut loops = Vec::new();
        let body = self.parse_loop(&mut loops)?;
        Ok((loops, body))
    }

    fn parse_loop(&mut self, loops: &mut Vec<Loop>) -> Result<Vec<Stmt>, ParseError> {
        let is_parallel = if self.at_keyword("parallel") {
            self.bump();
            true
        } else {
            false
        };
        self.expect_keyword("for")?;
        let var_name = self.expect_ident()?;
        if self.vars.contains(&var_name) || self.consts.contains_key(&var_name) {
            return Err(self.err_here(format!(
                "loop variable '{var_name}' shadows an existing name"
            )));
        }
        let var = VarId(self.vars.len() as u32);
        self.vars.push(var_name);
        self.expect_keyword("in")?;
        let lower = self.affine_expr()?;
        self.expect(&TokenKind::DotDot)?;
        let upper = self.affine_expr()?;
        let mut step = 1;
        if self.at_keyword("step") {
            self.bump();
            step = self.expect_int()?;
        }
        if is_parallel {
            if self.parallel.is_some() {
                return Err(self.err_here("only one parallel loop is allowed"));
            }
            self.expect_keyword("schedule")?;
            self.expect(&TokenKind::LParen)?;
            self.expect_keyword("static")?;
            self.expect(&TokenKind::Comma)?;
            let chunk = self.expect_int()?;
            if chunk <= 0 {
                return Err(self.err_here("chunk size must be >= 1"));
            }
            self.expect(&TokenKind::RParen)?;
            self.parallel = Some(Parallel {
                level: loops.len(),
                schedule: Schedule::Static {
                    chunk: chunk as u64,
                },
            });
        } else if self.at_keyword("schedule") {
            return Err(self.err_here("schedule(...) is only valid on a 'parallel for' loop"));
        }
        loops.push(Loop {
            var,
            lower,
            upper,
            step,
        });
        self.expect(&TokenKind::LBrace)?;
        let body = if self.at_keyword("for") || self.at_keyword("parallel") {
            let body = self.parse_loop(loops)?;
            self.expect(&TokenKind::RBrace)?;
            body
        } else {
            let mut stmts = Vec::new();
            while self.peek().kind != TokenKind::RBrace {
                stmts.push(self.statement()?);
            }
            if stmts.is_empty() {
                return Err(self.err_here("loop body is empty"));
            }
            self.expect(&TokenKind::RBrace)?;
            stmts
        };
        Ok(body)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let lhs = self.array_ref(AccessKind::Write)?;
        let op = match self.peek().kind {
            TokenKind::Eq => AssignOp::Assign,
            TokenKind::PlusEq => AssignOp::AddAssign,
            TokenKind::MinusEq => AssignOp::SubAssign,
            TokenKind::StarEq => AssignOp::MulAssign,
            ref other => {
                return Err(self.err_here(format!("expected assignment operator, found {other}")))
            }
        };
        self.bump();
        let rhs = self.expr()?;
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt { lhs, op, rhs })
    }

    fn array_ref(&mut self, access: AccessKind) -> Result<ArrayRef, ParseError> {
        // Span = position of the array identifier that opens the reference.
        let span = SourceSpan::new(self.peek().line, self.peek().col);
        let name = self.expect_ident()?;
        let &id = self
            .array_ids
            .get(&name)
            .ok_or_else(|| self.err_here(format!("unknown array '{name}'")))?;
        let mut indices = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            indices.push(self.affine_expr()?);
            self.expect(&TokenKind::RBracket)?;
        }
        let rank = self.arrays[id.index()].dims.len();
        if indices.len() != rank {
            return Err(self.err_here(format!(
                "array '{name}' has rank {rank} but subscript has {} indices",
                indices.len()
            )));
        }
        let mut field = None;
        if self.peek().kind == TokenKind::Dot {
            self.bump();
            let fname = self.expect_ident()?;
            let found = self.arrays[id.index()]
                .elem
                .field_named(&fname)
                .map(|(fid, _)| fid);
            let fid = found
                .ok_or_else(|| self.err_here(format!("array '{name}' has no field '{fname}'")))?;
            field = Some(fid);
        }
        Ok(ArrayRef {
            array: id,
            indices,
            field,
            access,
            span: Some(span),
        })
    }

    // ---- affine expression grammar (loop bounds, subscripts) ----

    fn affine_expr(&mut self) -> Result<AffineExpr, ParseError> {
        let mut acc = self.affine_term()?;
        loop {
            match self.peek().kind {
                TokenKind::Plus => {
                    self.bump();
                    acc = acc + self.affine_term()?;
                }
                TokenKind::Minus => {
                    self.bump();
                    acc = acc - self.affine_term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn affine_term(&mut self) -> Result<AffineExpr, ParseError> {
        let mut acc = self.affine_factor()?;
        while self.peek().kind == TokenKind::Star {
            self.bump();
            let rhs = self.affine_factor()?;
            acc = match (acc.as_const(), rhs.as_const()) {
                (_, Some(k)) => acc.scaled(k),
                (Some(k), _) => rhs.scaled(k),
                (None, None) => {
                    return Err(self.err_here(
                        "non-affine subscript: product of two loop-variable expressions",
                    ))
                }
            };
        }
        Ok(acc)
    }

    fn affine_factor(&mut self) -> Result<AffineExpr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(AffineExpr::constant(v))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(-self.affine_factor()?)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.affine_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if let Some(&v) = self.consts.get(&name) {
                    self.bump();
                    Ok(AffineExpr::constant(v))
                } else if let Some(idx) = self.vars.iter().position(|v| *v == name) {
                    self.bump();
                    Ok(AffineExpr::var(VarId(idx as u32)))
                } else {
                    Err(self.err_here(format!(
                        "unknown name '{name}' in index expression (not a const or in-scope loop variable)"
                    )))
                }
            }
            other => Err(self.err_here(format!(
                "expected integer, const, loop variable or '(' in index expression, found {other}"
            ))),
        }
    }

    // ---- statement RHS expression grammar ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.term()?;
        loop {
            match self.peek().kind {
                TokenKind::Plus => {
                    self.bump();
                    acc = Expr::Binary(BinOp::Add, Box::new(acc), Box::new(self.term()?));
                }
                TokenKind::Minus => {
                    self.bump();
                    acc = Expr::Binary(BinOp::Sub, Box::new(acc), Box::new(self.term()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut acc = self.factor()?;
        loop {
            match self.peek().kind {
                TokenKind::Star => {
                    self.bump();
                    acc = Expr::Binary(BinOp::Mul, Box::new(acc), Box::new(self.factor()?));
                }
                TokenKind::Slash => {
                    self.bump();
                    acc = Expr::Binary(BinOp::Div, Box::new(acc), Box::new(self.factor()?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Num(v as f64))
            }
            TokenKind::Minus => {
                self.bump();
                let inner = self.factor()?;
                // Fold negation of literals so `-(1.5)` round-trips as a number.
                if let Expr::Num(v) = inner {
                    Ok(Expr::Num(-v))
                } else {
                    Ok(Expr::Unary(UnOp::Neg, Box::new(inner)))
                }
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) if name == "sqrt" || name == "sincos" => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let op = if name == "sqrt" {
                    UnOp::Sqrt
                } else {
                    UnOp::SinCos
                };
                Ok(Expr::Unary(op, Box::new(inner)))
            }
            TokenKind::Ident(name) => {
                if self.array_ids.contains_key(&name) {
                    Ok(Expr::Ref(self.array_ref(AccessKind::Read)?))
                } else {
                    Err(self.err_here(format!(
                        "unknown name '{name}' in expression (arrays must be declared; \
                         loop variables cannot be used as values)"
                    )))
                }
            }
            other => Err(self.err_here(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Kernel {
        parse_kernel(src).unwrap_or_else(|e| panic!("{e}\n{src}"))
    }

    #[test]
    fn parses_nested_loops_with_schedule() {
        let k = parse(
            "kernel heat {
                const N = 32;
                array A[N][N]: f64;
                array B[N][N]: f64;
                for i in 1..N-1 {
                    parallel for j in 1..N-1 schedule(static, 4) {
                        B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
                    }
                }
            }",
        );
        assert_eq!(k.nest.depth(), 2);
        assert_eq!(k.nest.parallel.level, 1);
        assert_eq!(k.nest.parallel.schedule, Schedule::Static { chunk: 4 });
        assert_eq!(k.nest.loops[0].lower.as_const(), Some(1));
        assert_eq!(k.nest.loops[0].upper.as_const(), Some(31));
    }

    #[test]
    fn parses_struct_arrays_and_fields() {
        let k = parse(
            "kernel lr {
                array acc[64] of { sx: f64, sy: f64 } pad 64;
                array p[64][128] of { x: f64, y: f64 };
                parallel for j in 0..64 schedule(static, 1) {
                    for i in 0..128 {
                        acc[j].sx += p[j][i].x;
                        acc[j].sy += p[j][i].y * 2.0;
                    }
                }
            }",
        );
        assert_eq!(k.arrays[0].elem.size_bytes(), 64);
        assert_eq!(k.arrays[1].elem.size_bytes(), 16);
        assert_eq!(k.nest.body.len(), 2);
        assert_eq!(k.nest.body[0].op, AssignOp::AddAssign);
        assert!(k.nest.body[0].lhs.field.is_some());
    }

    #[test]
    fn affine_subscripts_with_scaling() {
        let k = parse(
            "kernel s {
                const T = 4; const L = 16;
                array x[64]: f64;
                array p[T]: f64;
                parallel for t in 0..T schedule(static, 1) {
                    for i in 0..L {
                        p[t] += x[t*L + i] + x[L*t + i];
                    }
                }
            }",
        );
        let reads: Vec<_> = {
            let mut v = Vec::new();
            k.nest.body[0].rhs.collect_reads(&mut v);
            v.into_iter().cloned().collect::<Vec<_>>()
        };
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].indices[0], reads[1].indices[0], "t*L == L*t");
        assert_eq!(reads[0].indices[0].coeff(VarId(0)), 16);
    }

    #[test]
    fn rejects_nonaffine_subscript() {
        let e = parse_kernel(
            "kernel s { array x[64][64]: f64;
              parallel for i in 0..8 schedule(static, 1) {
                for j in 0..8 { x[i*j][0] = 1.0; } } }",
        )
        .unwrap_err();
        assert!(e.message.contains("non-affine"), "{e}");
    }

    #[test]
    fn rejects_two_parallel_loops() {
        let e = parse_kernel(
            "kernel s { array x[8][8]: f64;
              parallel for i in 0..8 schedule(static, 1) {
                parallel for j in 0..8 schedule(static, 1) { x[i][j] = 1.0; } } }",
        )
        .unwrap_err();
        assert!(e.message.contains("one parallel loop"), "{e}");
    }

    #[test]
    fn rejects_missing_schedule() {
        let e = parse_kernel(
            "kernel s { array x[8]: f64;
              parallel for i in 0..8 { x[i] = 1.0; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("schedule"), "{e}");
    }

    #[test]
    fn rejects_rank_mismatch_at_parse_time() {
        let e = parse_kernel(
            "kernel s { array x[8][8]: f64;
              parallel for i in 0..8 schedule(static, 1) { x[i] = 1.0; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("rank"), "{e}");
    }

    #[test]
    fn rejects_unknown_field() {
        let e = parse_kernel(
            "kernel s { array x[8] of { a: f64 };
              parallel for i in 0..8 schedule(static, 1) { x[i].b = 1.0; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("no field 'b'"), "{e}");
    }

    #[test]
    fn rejects_kernel_without_parallel_loop() {
        let e = parse_kernel(
            "kernel s { array x[8]: f64;
              for i in 0..8 { x[i] = 1.0; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("no parallel loop"), "{e}");
    }

    #[test]
    fn step_and_sequential_loops() {
        let k = parse(
            "kernel s { array x[64]: f64;
              parallel for i in 0..64 step 2 schedule(static, 1) { x[i] = 1.0; } }",
        );
        assert_eq!(k.nest.loops[0].step, 2);
        assert_eq!(k.nest.parallel_trip_count(), Some(32));
    }

    #[test]
    fn error_positions_point_at_problem() {
        let e = parse_kernel("kernel s {\n  array x[0]: f64;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn sqrt_and_division_parse() {
        let k = parse(
            "kernel s { array x[8]: f64; array y[8]: f64;
              parallel for i in 0..8 schedule(static, 1) {
                y[i] = sqrt(x[i]) / (x[i] + 1.0);
              } }",
        );
        match &k.nest.body[0].rhs {
            Expr::Binary(BinOp::Div, a, _) => {
                assert!(matches!(**a, Expr::Unary(UnOp::Sqrt, _)));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn negative_literal_folds() {
        let k = parse(
            "kernel s { array x[8]: f64;
              parallel for i in 0..8 schedule(static, 1) { x[i] = -(1.5) + 2.0; } }",
        );
        match &k.nest.body[0].rhs {
            Expr::Binary(BinOp::Add, a, _) => assert_eq!(**a, Expr::Num(-1.5)),
            other => panic!("unexpected tree: {other:?}"),
        }
    }
}
