//! Hand-written lexer for the kernel DSL.

use std::fmt;

/// A lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Token kinds. Keywords are lexed as [`TokenKind::Ident`] and classified by
/// the parser so field names like `static` never collide.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Dot,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "'{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::LBrace => write!(f, "'{{'"),
            TokenKind::RBrace => write!(f, "'}}'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semi => write!(f, "';'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::DotDot => write!(f, "'..'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::PlusEq => write!(f, "'+='"),
            TokenKind::MinusEq => write!(f, "'-='"),
            TokenKind::StarEq => write!(f, "'*='"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError {
            message: msg.into(),
            line: self.line,
            col: self.col,
        }
    }
}

/// Tokenize DSL source. The result always ends with an [`TokenKind::Eof`]
/// token carrying the final position.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and // comments.
        loop {
            match cur.peek() {
                Some(c) if (c as char).is_whitespace() => {
                    cur.bump();
                }
                Some(b'/') if cur.peek2() == Some(b'/') => {
                    while let Some(c) = cur.peek() {
                        if c == b'\n' {
                            break;
                        }
                        cur.bump();
                    }
                }
                _ => break,
            }
        }
        let (line, col) = (cur.line, cur.col);
        let Some(c) = cur.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                line,
                col,
            });
            return Ok(out);
        };
        let kind = match c {
            b'{' => {
                cur.bump();
                TokenKind::LBrace
            }
            b'}' => {
                cur.bump();
                TokenKind::RBrace
            }
            b'[' => {
                cur.bump();
                TokenKind::LBracket
            }
            b']' => {
                cur.bump();
                TokenKind::RBracket
            }
            b'(' => {
                cur.bump();
                TokenKind::LParen
            }
            b')' => {
                cur.bump();
                TokenKind::RParen
            }
            b':' => {
                cur.bump();
                TokenKind::Colon
            }
            b';' => {
                cur.bump();
                TokenKind::Semi
            }
            b',' => {
                cur.bump();
                TokenKind::Comma
            }
            b'.' => {
                cur.bump();
                if cur.peek() == Some(b'.') {
                    cur.bump();
                    TokenKind::DotDot
                } else {
                    TokenKind::Dot
                }
            }
            b'+' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::PlusEq
                } else {
                    TokenKind::Plus
                }
            }
            b'-' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::MinusEq
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                cur.bump();
                if cur.peek() == Some(b'=') {
                    cur.bump();
                    TokenKind::StarEq
                } else {
                    TokenKind::Star
                }
            }
            b'/' => {
                cur.bump();
                TokenKind::Slash
            }
            b'=' => {
                cur.bump();
                TokenKind::Eq
            }
            b'0'..=b'9' => lex_number(&mut cur)?,
            c if (c as char).is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while let Some(c) = cur.peek() {
                    if (c as char).is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(s)
            }
            other => {
                return Err(cur.err(format!("unexpected character '{}'", other as char)));
            }
        };
        out.push(Token { kind, line, col });
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_ascii_digit() {
            text.push(c as char);
            cur.bump();
        } else {
            break;
        }
    }
    let mut is_float = false;
    // `.` starts a fraction only if followed by a digit; `..` is a range.
    if cur.peek() == Some(b'.') && cur.peek2().is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() {
                text.push(c as char);
                cur.bump();
            } else {
                break;
            }
        }
    }
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        is_float = true;
        text.push('e');
        cur.bump();
        if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
            text.push(cur.bump().unwrap() as char);
        }
        let mut any = false;
        while let Some(c) = cur.peek() {
            if c.is_ascii_digit() {
                text.push(c as char);
                cur.bump();
                any = true;
            } else {
                break;
            }
        }
        if !any {
            return Err(cur.err("malformed exponent"));
        }
    }
    if is_float {
        text.parse::<f64>()
            .map(TokenKind::Float)
            .map_err(|e| cur.err(format!("bad float literal '{text}': {e}")))
    } else {
        text.parse::<i64>()
            .map(TokenKind::Int)
            .map_err(|e| cur.err(format!("bad integer literal '{text}': {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_ranges_vs_floats() {
        assert_eq!(
            kinds("0..8"),
            vec![
                TokenKind::Int(0),
                TokenKind::DotDot,
                TokenKind::Int(8),
                TokenKind::Eof
            ]
        );
        assert_eq!(kinds("0.5"), vec![TokenKind::Float(0.5), TokenKind::Eof]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0), TokenKind::Eof]);
        assert_eq!(
            kinds("2.5e-1"),
            vec![TokenKind::Float(0.25), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_compound_assignment() {
        assert_eq!(
            kinds("a += b -= c *= d = e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::PlusEq,
                TokenKind::Ident("b".into()),
                TokenKind::MinusEq,
                TokenKind::Ident("c".into()),
                TokenKind::StarEq,
                TokenKind::Ident("d".into()),
                TokenKind::Eq,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("a // comment\n  b").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("a".into()));
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!(toks[1].kind, TokenKind::Ident("b".into()));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn field_access_lexes_single_dot() {
        assert_eq!(
            kinds("args.sx"),
            vec![
                TokenKind::Ident("args".into()),
                TokenKind::Dot,
                TokenKind::Ident("sx".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn malformed_exponent_rejected() {
        assert!(lex("1e+").is_err());
    }
}
