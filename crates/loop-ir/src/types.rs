//! Scalar element types for arrays.

use std::fmt;

/// Scalar machine types an array element (or struct field) can have.
///
/// The cost models only need the *size* of an element (to map references to
/// cache lines) and whether arithmetic on it uses the floating-point or
/// integer pipelines (for the processor model), so this enum is deliberately
/// small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    F32,
    F64,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
}

impl ScalarType {
    /// Size of the type in bytes.
    pub const fn size_bytes(self) -> usize {
        match self {
            ScalarType::I8 | ScalarType::U8 => 1,
            ScalarType::I16 | ScalarType::U16 => 2,
            ScalarType::F32 | ScalarType::I32 | ScalarType::U32 => 4,
            ScalarType::F64 | ScalarType::I64 | ScalarType::U64 => 8,
        }
    }

    /// True for the floating-point types; used by the processor model to
    /// route arithmetic to FP functional units.
    pub const fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// The DSL keyword for this type (`f64`, `i32`, ...).
    pub const fn keyword(self) -> &'static str {
        match self {
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
            ScalarType::I8 => "i8",
            ScalarType::I16 => "i16",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::U8 => "u8",
            ScalarType::U16 => "u16",
            ScalarType::U32 => "u32",
            ScalarType::U64 => "u64",
        }
    }

    /// Parse a DSL keyword back into a type.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "f32" => ScalarType::F32,
            "f64" => ScalarType::F64,
            "i8" => ScalarType::I8,
            "i16" => ScalarType::I16,
            "i32" => ScalarType::I32,
            "i64" => ScalarType::I64,
            "u8" => ScalarType::U8,
            "u16" => ScalarType::U16,
            "u32" => ScalarType::U32,
            "u64" => ScalarType::U64,
            _ => return None,
        })
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_rust_layout() {
        assert_eq!(ScalarType::F64.size_bytes(), std::mem::size_of::<f64>());
        assert_eq!(ScalarType::F32.size_bytes(), std::mem::size_of::<f32>());
        assert_eq!(ScalarType::I64.size_bytes(), std::mem::size_of::<i64>());
        assert_eq!(ScalarType::U8.size_bytes(), std::mem::size_of::<u8>());
        assert_eq!(ScalarType::I16.size_bytes(), 2);
    }

    #[test]
    fn keyword_roundtrip() {
        for t in [
            ScalarType::F32,
            ScalarType::F64,
            ScalarType::I8,
            ScalarType::I16,
            ScalarType::I32,
            ScalarType::I64,
            ScalarType::U8,
            ScalarType::U16,
            ScalarType::U32,
            ScalarType::U64,
        ] {
            assert_eq!(ScalarType::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(ScalarType::from_keyword("f16"), None);
    }

    #[test]
    fn float_classification() {
        assert!(ScalarType::F32.is_float());
        assert!(ScalarType::F64.is_float());
        assert!(!ScalarType::I32.is_float());
        assert!(!ScalarType::U64.is_float());
    }
}
