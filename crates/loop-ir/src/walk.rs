//! Iteration-space walkers.
//!
//! [`ThreadWalker`] enumerates the full index vectors (one value per loop
//! variable) that a given thread executes, in that thread's program order:
//! loops outside the parallel level are replicated across the team, the
//! parallel level follows the static round-robin [`ChunkSchedule`], and
//! loops inside it run to completion per parallel iteration.
//!
//! [`LockstepWalker`] advances every thread of the team by one innermost
//! iteration per step — the granularity at which the paper's model generates
//! cache-line ownership lists and checks for false sharing ("the model needs
//! to evaluate `All_num_of_iters / num_of_threads` iterations", §III-D).

use crate::kernel::Kernel;
use crate::schedule::ChunkSchedule;
use crate::stream::{CompiledPlan, StreamCursor};

/// Walks the iterations executed by one thread of the team.
pub struct ThreadWalker<'k> {
    kernel: &'k Kernel,
    sched: ChunkSchedule,
    thread: u64,
    env: Vec<i64>,
    /// Count of parallel-loop iterations this thread has taken in the
    /// current parallel-loop instance.
    par_k: u64,
    started: bool,
    done: bool,
    /// Total innermost-body iterations yielded so far.
    steps: u64,
}

impl<'k> ThreadWalker<'k> {
    /// Create a walker for `thread` of a `num_threads`-wide team.
    ///
    /// # Panics
    /// Panics if the parallel loop's bounds are not compile-time constants
    /// (run [`crate::validate()`] first for a recoverable error).
    pub fn new(kernel: &'k Kernel, num_threads: u64, thread: u64) -> Self {
        assert!(thread < num_threads);
        let nest = &kernel.nest;
        let sched = ChunkSchedule::for_loop(
            nest.parallel_loop(),
            nest.parallel.schedule.chunk(),
            num_threads,
        )
        .expect("parallel loop bounds must be compile-time constants");
        ThreadWalker {
            kernel,
            sched,
            thread,
            env: vec![0; kernel.vars.len()],
            par_k: 0,
            started: false,
            done: false,
            steps: 0,
        }
    }

    /// A sequential (single-"thread") walker over the whole nest.
    pub fn sequential(kernel: &'k Kernel) -> Self {
        Self::new(kernel, 1, 0)
    }

    fn depth(&self) -> usize {
        self.kernel.nest.depth()
    }

    /// Set level `l` to its first value; false if the loop is empty under
    /// the current outer values (or the thread owns no iterations).
    fn enter(&mut self, l: usize) -> bool {
        let nest = &self.kernel.nest;
        if l == nest.parallel.level {
            self.par_k = 0;
            match self.sched.nth_iter_of_thread(self.thread, 0) {
                Some(pos) => {
                    self.env[nest.loops[l].var.index()] = self.sched.iter_value(pos);
                    true
                }
                None => false,
            }
        } else {
            let lp = &nest.loops[l];
            let lo = lp.lower.eval(&self.env);
            let hi = lp.upper.eval(&self.env);
            if lo < hi {
                self.env[lp.var.index()] = lo;
                true
            } else {
                false
            }
        }
    }

    /// Move level `l` to its next value; false when exhausted.
    fn advance_level(&mut self, l: usize) -> bool {
        let nest = &self.kernel.nest;
        if l == nest.parallel.level {
            self.par_k += 1;
            match self.sched.nth_iter_of_thread(self.thread, self.par_k) {
                Some(pos) => {
                    self.env[nest.loops[l].var.index()] = self.sched.iter_value(pos);
                    true
                }
                None => false,
            }
        } else {
            let lp = &nest.loops[l];
            let next = self.env[lp.var.index()] + lp.step;
            if next < lp.upper.eval(&self.env) {
                self.env[lp.var.index()] = next;
                true
            } else {
                false
            }
        }
    }

    /// Enter levels `l..depth`, backtracking through outer levels when an
    /// inner loop turns out empty. Returns false if the walk is over.
    fn descend(&mut self, mut l: usize) -> bool {
        while l < self.depth() {
            if self.enter(l) {
                l += 1;
                continue;
            }
            loop {
                if l == 0 {
                    self.done = true;
                    return false;
                }
                l -= 1;
                if self.advance_level(l) {
                    break;
                }
            }
            l += 1;
        }
        true
    }

    /// Advance to the next innermost iteration; returns the index
    /// environment (`env[VarId(i).index()]` = value of variable `i`), or
    /// `None` when this thread's work is exhausted.
    pub fn next_env(&mut self) -> Option<&[i64]> {
        if self.done {
            return None;
        }
        let ok = if !self.started {
            self.started = true;
            self.descend(0)
        } else {
            let mut l = self.depth();
            loop {
                if l == 0 {
                    self.done = true;
                    break false;
                }
                l -= 1;
                if self.advance_level(l) {
                    break self.descend(l + 1);
                }
            }
        };
        if ok {
            self.steps += 1;
            Some(&self.env)
        } else {
            None
        }
    }

    /// Innermost iterations yielded so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// True once the walk is exhausted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The schedule driving the parallel level.
    pub fn schedule(&self) -> &ChunkSchedule {
        &self.sched
    }

    /// Collect all index vectors (test/debug helper; allocates per step).
    pub fn collect_all(mut self) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        while let Some(env) = self.next_env() {
            out.push(env.to_vec());
        }
        out
    }
}

/// Advances a whole team one innermost iteration per thread per step.
pub struct LockstepWalker<'k> {
    walkers: Vec<ThreadWalker<'k>>,
}

impl<'k> LockstepWalker<'k> {
    pub fn new(kernel: &'k Kernel, num_threads: u64) -> Self {
        LockstepWalker {
            walkers: (0..num_threads)
                .map(|t| ThreadWalker::new(kernel, num_threads, t))
                .collect(),
        }
    }

    pub fn num_threads(&self) -> usize {
        self.walkers.len()
    }

    /// Advance every still-active thread by one iteration, invoking
    /// `f(thread, env)` for each. Returns `false` when every thread is done
    /// (and `f` was not called).
    pub fn step(&mut self, mut f: impl FnMut(usize, &[i64])) -> bool {
        let mut any = false;
        for (t, w) in self.walkers.iter_mut().enumerate() {
            if let Some(env) = w.next_env() {
                f(t, env);
                any = true;
            }
        }
        any
    }

    /// [`Self::step`] over a precompiled address stream: advance every
    /// still-active thread, feed its new environment through that thread's
    /// [`StreamCursor`], and invoke `f(thread, env, addrs)` where `addrs`
    /// holds the strength-reduced byte address of every access of `plan`
    /// (cast each `as u64` for the absolute address). `cursors` must hold
    /// one cursor per thread, created against the same `plan`.
    pub fn step_streams(
        &mut self,
        plan: &CompiledPlan,
        cursors: &mut [StreamCursor],
        mut f: impl FnMut(usize, &[i64], &[i64]),
    ) -> bool {
        debug_assert_eq!(cursors.len(), self.walkers.len());
        let mut any = false;
        for (t, w) in self.walkers.iter_mut().enumerate() {
            if let Some(env) = w.next_env() {
                let addrs = cursors[t].advance(plan, env);
                f(t, env, addrs);
                any = true;
            }
        }
        any
    }

    /// Steps taken by the longest-running thread so far.
    pub fn steps(&self) -> u64 {
        self.walkers.iter().map(|w| w.steps()).max().unwrap_or(0)
    }

    /// The chunk schedule (same for the whole team).
    pub fn schedule(&self) -> &ChunkSchedule {
        self.walkers[0].schedule()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::kernel::KernelBuilder;
    use crate::nest::Schedule;
    use crate::reference::ArrayRef;
    use crate::stmt::{Expr, Stmt};
    use crate::types::ScalarType;

    /// outer seq i in 0..oi, parallel j in 0..pj chunk ck, inner seq k in 0..ik
    fn kernel_3d(oi: i64, pj: i64, ik: i64, ck: u64) -> Kernel {
        let mut b = KernelBuilder::new("t3d");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let k = b.loop_var("k");
        let a = b.array("A", &[64, 64, 64], ScalarType::F64);
        b.seq_for(i, 0, oi);
        b.parallel_for(j, 0, pj, Schedule::Static { chunk: ck });
        b.seq_for(k, 0, ik);
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![b.idx(i), b.idx(j), b.idx(k)]),
            Expr::num(1.0),
        ));
        b.build()
    }

    #[test]
    fn sequential_walk_visits_lexicographic_order() {
        let k = kernel_3d(2, 2, 2, 1);
        let all = ThreadWalker::sequential(&k).collect_all();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec![0, 0, 0]);
        assert_eq!(all[1], vec![0, 0, 1]);
        assert_eq!(all[2], vec![0, 1, 0]);
        assert_eq!(all[7], vec![1, 1, 1]);
    }

    #[test]
    fn thread_walk_partitions_parallel_level() {
        let k = kernel_3d(1, 4, 1, 1);
        let t0 = ThreadWalker::new(&k, 2, 0).collect_all();
        let t1 = ThreadWalker::new(&k, 2, 1).collect_all();
        assert_eq!(t0, vec![vec![0, 0, 0], vec![0, 2, 0]]);
        assert_eq!(t1, vec![vec![0, 1, 0], vec![0, 3, 0]]);
    }

    #[test]
    fn outer_loops_replicated_across_threads() {
        let k = kernel_3d(2, 2, 1, 1);
        let t0 = ThreadWalker::new(&k, 2, 0).collect_all();
        // thread 0 owns j=0 in both outer iterations
        assert_eq!(t0, vec![vec![0, 0, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn union_of_threads_equals_sequential_set() {
        let k = kernel_3d(2, 5, 3, 2);
        let mut expected = ThreadWalker::sequential(&k).collect_all();
        let mut union: Vec<Vec<i64>> = Vec::new();
        for t in 0..3 {
            union.extend(ThreadWalker::new(&k, 3, t).collect_all());
        }
        expected.sort();
        union.sort();
        assert_eq!(expected, union);
    }

    #[test]
    fn lockstep_interleaves_all_threads() {
        let k = kernel_3d(1, 6, 1, 1);
        let mut ls = LockstepWalker::new(&k, 3);
        let mut per_step: Vec<Vec<(usize, i64)>> = Vec::new();
        loop {
            let mut row = Vec::new();
            if !ls.step(|t, env| row.push((t, env[1]))) {
                break;
            }
            per_step.push(row);
        }
        assert_eq!(per_step.len(), 2);
        assert_eq!(per_step[0], vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(per_step[1], vec![(0, 3), (1, 4), (2, 5)]);
    }

    #[test]
    fn lockstep_handles_uneven_tails() {
        let k = kernel_3d(1, 5, 1, 1);
        let mut ls = LockstepWalker::new(&k, 3);
        let mut counts = [0u32; 3];
        while ls.step(|t, _| counts[t] += 1) {}
        assert_eq!(counts, [2, 2, 1]);
        assert_eq!(ls.steps(), 2);
    }

    #[test]
    fn thread_with_no_work_yields_nothing() {
        let k = kernel_3d(1, 2, 4, 1);
        let t3 = ThreadWalker::new(&k, 8, 3).collect_all();
        assert!(t3.is_empty());
    }

    #[test]
    fn triangular_inner_loop() {
        // parallel i in 0..4, inner j in 0..i
        let mut b = KernelBuilder::new("tri");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let a = b.array("A", &[8, 8], ScalarType::F64);
        b.parallel_for(i, 0, 4, Schedule::Static { chunk: 1 });
        b.seq_for(j, 0, AffineExpr::var(i));
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![b.idx(i), b.idx(j)]),
            Expr::num(0.0),
        ));
        let k = b.build();
        let seq = ThreadWalker::sequential(&k).collect_all();
        // i=0 contributes nothing; i=1 -> (1,0); i=2 -> (2,0),(2,1); i=3 -> 3
        assert_eq!(seq.len(), 6);
        assert_eq!(seq[0], vec![1, 0]);
        // thread 0 of 2 owns i = 0, 2
        let t0 = ThreadWalker::new(&k, 2, 0).collect_all();
        assert_eq!(t0, vec![vec![2, 0], vec![2, 1]]);
    }

    #[test]
    fn steps_counter_matches_yielded() {
        let k = kernel_3d(2, 4, 3, 1);
        let mut w = ThreadWalker::new(&k, 4, 1);
        let mut n = 0;
        while w.next_env().is_some() {
            n += 1;
        }
        assert_eq!(w.steps(), n);
        assert!(w.is_done());
        assert!(w.next_env().is_none(), "exhausted walker stays exhausted");
    }
}
