//! Array references: the atoms the false-sharing model analyzes.

use crate::array::{ArrayId, FieldId};
use crate::expr::{AffineExpr, VarId};

/// Whether a reference reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

impl AccessKind {
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A source location: 1-based line/column where a reference was written in
/// DSL text. Carried for diagnostics only — two references that differ only
/// in span compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceSpan {
    pub line: u32,
    pub col: u32,
}

impl SourceSpan {
    pub fn new(line: u32, col: u32) -> Self {
        SourceSpan { line, col }
    }
}

impl std::fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A subscripted (possibly field-qualified) array reference, e.g.
/// `tid_args[j].sx` or `A[i][j-1]`.
#[derive(Debug, Clone)]
pub struct ArrayRef {
    pub array: ArrayId,
    /// One affine subscript per array dimension, outermost first.
    pub indices: Vec<AffineExpr>,
    /// For struct-element arrays, the accessed field; `None` reads/writes the
    /// scalar element (or the whole struct).
    pub field: Option<FieldId>,
    pub access: AccessKind,
    /// Where the reference appears in DSL source (`None` for programmatic
    /// kernels). Excluded from equality: a parsed kernel and the equivalent
    /// builder-built kernel compare equal.
    pub span: Option<SourceSpan>,
}

/// Spans are metadata, not identity: equality covers only the semantic
/// fields, so DSL round-trips and memoization keys are span-agnostic.
impl PartialEq for ArrayRef {
    fn eq(&self, other: &Self) -> bool {
        self.array == other.array
            && self.indices == other.indices
            && self.field == other.field
            && self.access == other.access
    }
}

impl Eq for ArrayRef {}

impl ArrayRef {
    pub fn read(array: ArrayId, indices: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array,
            indices,
            field: None,
            access: AccessKind::Read,
            span: None,
        }
    }

    pub fn write(array: ArrayId, indices: Vec<AffineExpr>) -> Self {
        ArrayRef {
            array,
            indices,
            field: None,
            access: AccessKind::Write,
            span: None,
        }
    }

    /// Same reference carrying a source span (used by the DSL parser).
    pub fn with_span(mut self, span: SourceSpan) -> Self {
        self.span = Some(span);
        self
    }

    /// Same reference but targeting a struct field.
    pub fn with_field(mut self, field: FieldId) -> Self {
        self.field = Some(field);
        self
    }

    /// Same reference with the opposite/given access kind.
    pub fn with_access(mut self, access: AccessKind) -> Self {
        self.access = access;
        self
    }

    /// Evaluate all subscripts under `env` into `out`.
    ///
    /// `out` must have length `indices.len()`; reused across iterations to
    /// avoid per-access allocation in trace generation.
    #[inline]
    pub fn eval_indices(&self, env: &[i64], out: &mut [i64]) {
        debug_assert_eq!(out.len(), self.indices.len());
        for (o, e) in out.iter_mut().zip(&self.indices) {
            *o = e.eval(env);
        }
    }

    /// True if any subscript depends on loop variable `v`.
    pub fn uses_var(&self, v: VarId) -> bool {
        self.indices.iter().any(|e| e.uses_var(v))
    }

    /// True if two references are to the same array/field and their
    /// subscripts differ only in the constant of the *last* dimension —
    /// i.e. they are "uniformly generated" neighbours like `a[i]` and
    /// `a[i+1]` that the Open64 cache model places in one reference group.
    pub fn same_reference_group(&self, other: &ArrayRef) -> bool {
        if self.array != other.array || self.field != other.field {
            return false;
        }
        if self.indices.len() != other.indices.len() || self.indices.is_empty() {
            return false;
        }
        let n = self.indices.len();
        // All but the last dimension must match exactly.
        if self.indices[..n - 1] != other.indices[..n - 1] {
            return false;
        }
        // Last dimension: same variable terms, any constant.
        let a = &self.indices[n - 1];
        let b = &other.indices[n - 1];
        a.terms() == b.terms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VarId;

    fn idx(v: u32, c: i64) -> AffineExpr {
        AffineExpr::linear(VarId(v), 1, c)
    }

    #[test]
    fn eval_indices_into_buffer() {
        let r = ArrayRef::read(ArrayId(0), vec![idx(0, 0), idx(1, -1)]);
        let mut out = [0i64; 2];
        r.eval_indices(&[5, 7], &mut out);
        assert_eq!(out, [5, 6]);
    }

    #[test]
    fn reference_groups_merge_constant_offsets() {
        let a = ArrayRef::read(ArrayId(0), vec![idx(0, 0), idx(1, 0)]);
        let b = ArrayRef::read(ArrayId(0), vec![idx(0, 0), idx(1, 1)]);
        assert!(a.same_reference_group(&b));
    }

    #[test]
    fn reference_groups_respect_outer_dims_and_arrays() {
        let a = ArrayRef::read(ArrayId(0), vec![idx(0, 0), idx(1, 0)]);
        let c = ArrayRef::read(ArrayId(0), vec![idx(0, 1), idx(1, 0)]);
        assert!(!a.same_reference_group(&c), "outer dim constant differs");
        let d = ArrayRef::read(ArrayId(1), vec![idx(0, 0), idx(1, 0)]);
        assert!(!a.same_reference_group(&d), "different arrays");
        // Different variable in last dim: a[i][j] vs a[i][i].
        let e = ArrayRef::read(ArrayId(0), vec![idx(0, 0), idx(0, 0)]);
        assert!(!a.same_reference_group(&e));
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let a = ArrayRef::read(ArrayId(0), vec![idx(0, 0)]);
        let b = a.clone().with_span(SourceSpan::new(7, 3));
        assert_eq!(a, b, "span is metadata, not identity");
        assert_eq!(b.span, Some(SourceSpan::new(7, 3)));
        assert_eq!(SourceSpan::new(7, 3).to_string(), "7:3");
    }

    #[test]
    fn uses_var_checks_all_subscripts() {
        let r = ArrayRef::write(ArrayId(0), vec![idx(0, 0), AffineExpr::constant(3)]);
        assert!(r.uses_var(VarId(0)));
        assert!(!r.uses_var(VarId(1)));
    }
}
