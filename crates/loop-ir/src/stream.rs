//! Strength-reduced address streams.
//!
//! Every subscript in the IR is affine in the loop variables, so the byte
//! address of a [`crate::PlannedAccess`] is itself affine in the iteration
//! environment:
//!
//! ```text
//! addr(env) = A0 + sum_v Av * env[v]
//! Av = elem_size * sum_k weight_k * coeff(subscript_k, v)
//! A0 = base + field_offset + elem_size * sum_k weight_k * const(subscript_k)
//! ```
//!
//! where `weight_k` is the row-major linearization weight of dimension `k`.
//! [`CompiledPlan`] folds that algebra once per (kernel, base layout);
//! [`StreamCursor`] then advances a thread's addresses between consecutive
//! iterations by applying `Av * delta_v` for the (few) variables that
//! changed — the classic strength reduction of an induction expression.
//! This replaces the per-iteration subscript evaluation and row-major
//! re-linearization of [`crate::PlannedAccess::address`] in the FS model's
//! hot loop.
//!
//! All arithmetic is wrapping `i64`, matching the `as u64` cast at the end
//! of `PlannedAccess::address`: the incremental addresses are equal to the
//! direct ones modulo 2^64, hence bit-identical after the cast.

use crate::kernel::AccessPlan;

/// The affine address form of every access of an [`AccessPlan`], folded to
/// one constant and one per-loop-variable byte delta per access.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    n_vars: usize,
    /// `coeffs[a * n_vars + v]` — byte delta of access `a` per unit step of
    /// loop variable `v`.
    coeffs: Vec<i64>,
    /// Byte address of access `a` at the all-zero environment.
    consts: Vec<i64>,
}

impl CompiledPlan {
    /// Fold `plan`'s subscripts against the `bases` layout. `n_vars` is the
    /// environment width ([`crate::Kernel::vars`]`.len()`).
    pub fn new(plan: &AccessPlan, n_vars: usize, bases: &[u64]) -> CompiledPlan {
        let _span = fs_obs::span("stream.compile");
        fs_obs::counters::STREAM_PLANS_COMPILED.inc();
        let mut coeffs = vec![0i64; plan.accesses.len() * n_vars];
        let mut consts = Vec::with_capacity(plan.accesses.len());
        for (a, acc) in plan.accesses.iter().enumerate() {
            // Row-major weights: weight of the last dimension is 1, each
            // outer dimension's weight is the product of the extents after
            // it. Scaled by elem_size to yield byte deltas directly.
            let n = acc.indices.len();
            let mut weight = acc.elem_size as i64;
            let mut c0 = acc.field_offset as i64 + bases[acc.array.index()] as i64;
            for k in (0..n).rev() {
                let sub = &acc.indices[k];
                c0 = c0.wrapping_add(weight.wrapping_mul(sub.constant_part()));
                for &(v, c) in sub.terms() {
                    coeffs[a * n_vars + v.index()] += weight.wrapping_mul(c);
                }
                if k > 0 {
                    weight = weight.wrapping_mul(acc.dims[k] as i64);
                }
            }
            consts.push(c0);
        }
        CompiledPlan {
            n_vars,
            coeffs,
            consts,
        }
    }

    /// Number of accesses per innermost iteration.
    pub fn num_accesses(&self) -> usize {
        self.consts.len()
    }

    /// Environment width the plan was compiled for.
    pub fn num_vars(&self) -> usize {
        self.n_vars
    }

    /// Byte delta of access `a` per unit step of loop variable `v` — the
    /// folded affine coefficient the symbolic FS path reasons over.
    pub fn coeff(&self, a: usize, v: usize) -> i64 {
        self.coeffs[a * self.n_vars + v]
    }

    /// Byte address of access `a` at the all-zero environment.
    pub fn const_of(&self, a: usize) -> i64 {
        self.consts[a]
    }

    /// Evaluate every access address at `env` from scratch into `out`
    /// (length [`Self::num_accesses`]). Cast each element `as u64` to get
    /// the absolute byte address.
    pub fn addresses_at(&self, env: &[i64], out: &mut [i64]) {
        debug_assert_eq!(out.len(), self.num_accesses());
        for (a, slot) in out.iter_mut().enumerate() {
            let mut addr = self.consts[a];
            let row = &self.coeffs[a * self.n_vars..(a + 1) * self.n_vars];
            for (v, &c) in row.iter().enumerate() {
                if c != 0 {
                    addr = addr.wrapping_add(c.wrapping_mul(env[v]));
                }
            }
            *slot = addr;
        }
    }
}

/// One thread's incremental address state: the addresses of every access at
/// the thread's previous iteration, advanced by constant deltas as the
/// environment changes.
#[derive(Debug, Clone)]
pub struct StreamCursor {
    prev_env: Vec<i64>,
    addrs: Vec<i64>,
    primed: bool,
}

impl StreamCursor {
    pub fn new(plan: &CompiledPlan) -> StreamCursor {
        StreamCursor {
            prev_env: vec![0; plan.num_vars()],
            addrs: vec![0; plan.num_accesses()],
            primed: false,
        }
    }

    /// Advance to iteration `env` and return the address of every access
    /// (cast each `as u64` for the absolute byte address). The first call
    /// evaluates in full; subsequent calls apply `coeff * delta` for each
    /// changed variable — O(changed_vars * accesses) instead of a full
    /// subscript re-evaluation.
    pub fn advance(&mut self, plan: &CompiledPlan, env: &[i64]) -> &[i64] {
        debug_assert_eq!(env.len(), plan.n_vars);
        if !self.primed {
            plan.addresses_at(env, &mut self.addrs);
            self.prev_env.copy_from_slice(env);
            self.primed = true;
            return &self.addrs;
        }
        for (v, (&cur, prev)) in env.iter().zip(self.prev_env.iter_mut()).enumerate() {
            let delta = cur.wrapping_sub(*prev);
            if delta == 0 {
                continue;
            }
            *prev = cur;
            for (a, addr) in self.addrs.iter_mut().enumerate() {
                let c = plan.coeffs[a * plan.n_vars + v];
                if c != 0 {
                    *addr = addr.wrapping_add(c.wrapping_mul(delta));
                }
            }
        }
        &self.addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::kernel::{Kernel, KernelBuilder};
    use crate::nest::Schedule;
    use crate::reference::ArrayRef;
    use crate::stmt::{Expr, Stmt};
    use crate::types::ScalarType;
    use crate::walk::ThreadWalker;
    use crate::{kernels, ElemLayout};

    /// Walk every thread of `kernel` and check the cursor reproduces
    /// `PlannedAccess::address` exactly at every iteration.
    fn assert_stream_matches(kernel: &Kernel, num_threads: u64) {
        let plan = kernel.access_plan();
        let bases = kernel.array_bases(64);
        let cplan = CompiledPlan::new(&plan, kernel.vars.len(), &bases);
        let mut idx_buf = vec![0i64; plan.max_rank.max(1)];
        for t in 0..num_threads {
            let mut w = ThreadWalker::new(kernel, num_threads, t);
            let mut cur = StreamCursor::new(&cplan);
            while let Some(env) = w.next_env() {
                let direct: Vec<u64> = plan
                    .accesses
                    .iter()
                    .map(|a| a.address(env, &bases, &mut idx_buf))
                    .collect();
                let streamed: Vec<u64> =
                    cur.advance(&cplan, env).iter().map(|&a| a as u64).collect();
                assert_eq!(streamed, direct, "thread {t} env {env:?}");
            }
        }
    }

    #[test]
    fn matches_direct_addresses_on_paper_kernels() {
        assert_stream_matches(&kernels::heat_diffusion(10, 34, 1), 4);
        assert_stream_matches(&kernels::dft(8, 48, 3), 5);
        assert_stream_matches(&kernels::linear_regression(24, 6, 2), 3);
        assert_stream_matches(&kernels::transpose(12, 9, 1), 4);
    }

    #[test]
    fn matches_on_struct_fields_and_mixed_subscripts() {
        // acc[t].v (padded struct) + data[t][i] with a halo read.
        let mut b = KernelBuilder::new("mix");
        let t = b.loop_var("t");
        let i = b.loop_var("i");
        let data = b.array("data", &[6, 10], ScalarType::F64);
        let acc = b.struct_array(
            "acc",
            &[6],
            ElemLayout::padded_struct(&[("v", ScalarType::F64)], 24),
        );
        b.parallel_for(t, 0, 6, Schedule::Static { chunk: 2 });
        b.seq_for(i, 1, 10);
        let v = b.field(acc, "v");
        b.stmt(Stmt::add_assign(
            ArrayRef::write(acc, vec![AffineExpr::var(t)]).with_field(v),
            Expr::read(ArrayRef::read(
                data,
                vec![
                    AffineExpr::var(t),
                    AffineExpr::var(i) - AffineExpr::constant(1),
                ],
            )),
        ));
        assert_stream_matches(&b.build(), 3);
    }

    #[test]
    fn matches_when_addresses_leave_the_footprint() {
        // Scaled/offset subscripts produce addresses far outside (and, via
        // the wrapping cast, "below") the declared arrays; the stream must
        // wrap identically.
        let mut b = KernelBuilder::new("oob");
        let i = b.loop_var("i");
        let a = b.array("A", &[8], ScalarType::F64);
        b.parallel_for(i, 0, 8, Schedule::Static { chunk: 1 });
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![AffineExpr::linear(crate::VarId(0), 1000, -500)]),
            Expr::num(0.0),
        ));
        let _ = i;
        assert_stream_matches(&b.build(), 4);
    }

    #[test]
    fn full_reevaluation_equals_incremental() {
        let k = kernels::heat_diffusion(8, 18, 2);
        let plan = k.access_plan();
        let bases = k.array_bases(64);
        let cplan = CompiledPlan::new(&plan, k.vars.len(), &bases);
        let mut w = ThreadWalker::new(&k, 2, 1);
        let mut cur = StreamCursor::new(&cplan);
        let mut scratch = vec![0i64; cplan.num_accesses()];
        while let Some(env) = w.next_env() {
            cplan.addresses_at(env, &mut scratch);
            assert_eq!(cur.advance(&cplan, env), &scratch[..]);
        }
    }
}
