//! Static round-robin chunk scheduling math.
//!
//! `schedule(static, chunk)` distributes consecutive blocks ("chunks") of
//! `chunk` parallel-loop iterations to threads round-robin: chunk `c` runs on
//! thread `c mod T`. A **chunk run** — the unit the paper's linear-regression
//! predictor counts — is one round of the team: `T * chunk` parallel-loop
//! iterations (Fig. 6: "one chunk run is a number of iterations equal to
//! the product of chunk size with the number of threads").

use crate::nest::Loop;

/// The static round-robin distribution of one parallel loop across a thread
/// team.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSchedule {
    /// Lower bound of the parallel loop.
    pub lower: i64,
    /// Step of the parallel loop.
    pub step: i64,
    /// Trip count of the parallel loop.
    pub trip_count: u64,
    /// Iterations per chunk.
    pub chunk: u64,
    /// Team size.
    pub num_threads: u64,
}

impl ChunkSchedule {
    /// Build from a loop with constant bounds.
    pub fn for_loop(l: &Loop, chunk: u64, num_threads: u64) -> Option<ChunkSchedule> {
        assert!(chunk >= 1, "chunk size must be >= 1");
        assert!(num_threads >= 1, "team must have >= 1 thread");
        Some(ChunkSchedule {
            lower: l.lower.as_const()?,
            step: l.step,
            trip_count: l.const_trip_count()?,
            chunk,
            num_threads,
        })
    }

    /// Total number of chunks.
    pub fn num_chunks(&self) -> u64 {
        self.trip_count.div_ceil(self.chunk)
    }

    /// Number of chunk runs (full team rounds), counting a partial final
    /// round as one run.
    pub fn num_chunk_runs(&self) -> u64 {
        self.num_chunks().div_ceil(self.num_threads)
    }

    /// Which thread executes logical iteration `iter` (0-based position in
    /// the parallel loop's iteration sequence).
    pub fn thread_of_iter(&self, iter: u64) -> u64 {
        (iter / self.chunk) % self.num_threads
    }

    /// Number of parallel-loop iterations thread `t` executes in total.
    pub fn iters_of_thread(&self, t: u64) -> u64 {
        (0..self.num_chunks())
            .filter(|c| c % self.num_threads == t)
            .map(|c| self.chunk_len(c))
            .sum()
    }

    /// Length of chunk `c` (the last chunk may be short).
    pub fn chunk_len(&self, c: u64) -> u64 {
        let start = c * self.chunk;
        debug_assert!(start < self.trip_count);
        self.chunk.min(self.trip_count - start)
    }

    /// The `k`-th parallel-loop iteration (0-based logical position) that
    /// thread `t` executes, or `None` past the end of its work.
    pub fn nth_iter_of_thread(&self, t: u64, k: u64) -> Option<u64> {
        let chunk_ordinal = k / self.chunk; // t's own chunk counter
        let within = k % self.chunk;
        let c = chunk_ordinal * self.num_threads + t; // global chunk id
        if c >= self.num_chunks() {
            return None;
        }
        let pos = c * self.chunk + within;
        if pos < self.trip_count {
            Some(pos)
        } else {
            None
        }
    }

    /// Actual loop-variable value at logical position `pos`.
    #[inline]
    pub fn iter_value(&self, pos: u64) -> i64 {
        self.lower + pos as i64 * self.step
    }

    /// Iterator over the loop-variable values thread `t` executes, in order.
    pub fn thread_values(&self, t: u64) -> ThreadValues<'_> {
        ThreadValues {
            sched: self,
            thread: t,
            k: 0,
        }
    }

    /// Largest number of parallel-loop iterations any thread executes — the
    /// number of lockstep steps the model takes per outer iteration
    /// ("All num of iters / num of threads", rounded up).
    pub fn max_iters_per_thread(&self) -> u64 {
        (0..self.num_threads.min(self.num_chunks().max(1)))
            .map(|t| self.iters_of_thread(t))
            .max()
            .unwrap_or(0)
    }
}

/// Iterator over a thread's parallel-loop values (see
/// [`ChunkSchedule::thread_values`]).
pub struct ThreadValues<'a> {
    sched: &'a ChunkSchedule,
    thread: u64,
    k: u64,
}

impl Iterator for ThreadValues<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        let pos = self.sched.nth_iter_of_thread(self.thread, self.k)?;
        self.k += 1;
        Some(self.sched.iter_value(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::expr::VarId;

    fn sched(trip: u64, chunk: u64, threads: u64) -> ChunkSchedule {
        ChunkSchedule {
            lower: 0,
            step: 1,
            trip_count: trip,
            chunk,
            num_threads: threads,
        }
    }

    #[test]
    fn round_robin_assignment_chunk1() {
        let s = sched(8, 1, 4);
        let owners: Vec<u64> = (0..8).map(|i| s.thread_of_iter(i)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(s.thread_values(1).collect::<Vec<_>>(), vec![1, 5]);
    }

    #[test]
    fn round_robin_assignment_chunk3() {
        let s = sched(14, 3, 2);
        // chunks: [0..3)->t0, [3..6)->t1, [6..9)->t0, [9..12)->t1, [12..14)->t0
        assert_eq!(
            s.thread_values(0).collect::<Vec<_>>(),
            vec![0, 1, 2, 6, 7, 8, 12, 13]
        );
        assert_eq!(
            s.thread_values(1).collect::<Vec<_>>(),
            vec![3, 4, 5, 9, 10, 11]
        );
        assert_eq!(s.num_chunks(), 5);
        assert_eq!(s.num_chunk_runs(), 3);
        assert_eq!(s.iters_of_thread(0), 8);
        assert_eq!(s.iters_of_thread(1), 6);
        assert_eq!(s.max_iters_per_thread(), 8);
    }

    #[test]
    fn every_iteration_owned_exactly_once() {
        for &(trip, chunk, threads) in &[
            (100u64, 7u64, 3u64),
            (64, 64, 8),
            (5, 2, 8),
            (1, 1, 1),
            (17, 4, 4),
        ] {
            let s = sched(trip, chunk, threads);
            let mut seen = vec![0u32; trip as usize];
            for t in 0..threads {
                for v in s.thread_values(t) {
                    seen[v as usize] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "trip={trip} chunk={chunk} T={threads}: {seen:?}"
            );
        }
    }

    #[test]
    fn nonzero_lower_and_step() {
        let s = ChunkSchedule {
            lower: 10,
            step: 2,
            trip_count: 6,
            chunk: 2,
            num_threads: 2,
        };
        // positions 0..6 map to values 10,12,14,16,18,20
        assert_eq!(s.thread_values(0).collect::<Vec<_>>(), vec![10, 12, 18, 20]);
        assert_eq!(s.thread_values(1).collect::<Vec<_>>(), vec![14, 16]);
    }

    #[test]
    fn more_threads_than_chunks() {
        let s = sched(3, 1, 8);
        assert_eq!(s.thread_values(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.thread_values(2).collect::<Vec<_>>(), vec![2]);
        assert_eq!(s.thread_values(5).count(), 0);
        assert_eq!(s.num_chunk_runs(), 1);
    }

    #[test]
    fn for_loop_requires_const_bounds() {
        let l = Loop {
            var: VarId(0),
            lower: AffineExpr::constant(0),
            upper: AffineExpr::var(VarId(1)),
            step: 1,
        };
        assert!(ChunkSchedule::for_loop(&l, 1, 2).is_none());
        let l2 = Loop {
            var: VarId(0),
            lower: AffineExpr::constant(0),
            upper: AffineExpr::constant(10),
            step: 1,
        };
        let s = ChunkSchedule::for_loop(&l2, 2, 3).unwrap();
        assert_eq!(s.trip_count, 10);
    }
}
