//! Built-in kernels: the paper's three evaluation workloads plus several
//! classic false-sharing workloads used by the examples, tests and ablation
//! benches.
//!
//! All constructors take size parameters so tests can use tiny instances and
//! the experiment harness can use paper-scale ones. `chunk` is the
//! `schedule(static, chunk)` parameter — the knob the paper turns to create
//! its "FS case" (chunk = 1) and "non-FS case" (chunk = 64/16/10) loops.

use crate::array::ElemLayout;
use crate::expr::AffineExpr;
use crate::kernel::{Kernel, KernelBuilder};
use crate::nest::Schedule;
use crate::reference::ArrayRef;
use crate::stmt::{Expr, Stmt, UnOp};
use crate::types::ScalarType;

/// The Phoenix **linear regression** kernel (paper Fig. 1), parallelized at
/// the *outermost* loop.
///
/// ```c
/// #pragma omp parallel for private(i,j) schedule(static,1)
/// for (j = 0; j < N; j++)
///   for (i = 0; i < M/num_threads; i++) {
///     tid_args[j].sx  += points[j][i].x;
///     tid_args[j].sxx += points[j][i].x * points[j][i].x;
///     tid_args[j].sy  += points[j][i].y;
///     tid_args[j].syy += points[j][i].y * points[j][i].y;
///     tid_args[j].sxy += points[j][i].x * points[j][i].y;
///   }
/// ```
///
/// `args[j]` is a packed 40-byte struct of five f64 accumulators, so a 64-byte
/// line holds parts of two adjacent elements: with `chunk = 1` neighbouring
/// threads continuously invalidate each other's accumulator lines.
pub fn linear_regression(n: u64, m_inner: u64, chunk: u64) -> Kernel {
    linear_regression_layout(n, m_inner, chunk, false)
}

/// [`linear_regression`] with the paper's strong-scaling inner trip count:
/// the source loop is `for (i = 0; i < M/num_threads; i++)`, so the total
/// work — and with it the total FS case count — shrinks as the team grows.
/// This is what makes the paper's Table III/VI linreg numbers *decay* with
/// the thread count.
pub fn linear_regression_scaled(n: u64, m_total: u64, num_threads: u64, chunk: u64) -> Kernel {
    linear_regression(n, (m_total / num_threads.max(1)).max(1), chunk)
}

/// [`linear_regression`] with each accumulator struct padded to a full
/// 64-byte cache line — the classic mitigation; used as a baseline.
pub fn linear_regression_padded(n: u64, m_inner: u64, chunk: u64) -> Kernel {
    linear_regression_layout(n, m_inner, chunk, true)
}

fn linear_regression_layout(n: u64, m_inner: u64, chunk: u64, padded: bool) -> Kernel {
    let mut b = KernelBuilder::new(if padded {
        "linear_regression_padded"
    } else {
        "linear_regression"
    });
    let j = b.loop_var("j");
    let i = b.loop_var("i");
    let fields = [
        ("sx", ScalarType::F64),
        ("sxx", ScalarType::F64),
        ("sy", ScalarType::F64),
        ("syy", ScalarType::F64),
        ("sxy", ScalarType::F64),
    ];
    let elem = if padded {
        ElemLayout::padded_struct(&fields, 64)
    } else {
        ElemLayout::packed_struct(&fields)
    };
    let args = b.struct_array("args", &[n], elem);
    let points = b.struct_array(
        "points",
        &[n, m_inner],
        ElemLayout::packed_struct(&[("x", ScalarType::F64), ("y", ScalarType::F64)]),
    );
    b.parallel_for(j, 0, n as i64, Schedule::Static { chunk });
    b.seq_for(i, 0, m_inner as i64);

    let px = b.field(points, "x");
    let py = b.field(points, "y");
    let x = || {
        Expr::read(
            ArrayRef::read(points, vec![AffineExpr::var(j), AffineExpr::var(i)]).with_field(px),
        )
    };
    let y = || {
        Expr::read(
            ArrayRef::read(points, vec![AffineExpr::var(j), AffineExpr::var(i)]).with_field(py),
        )
    };
    let acc = |b: &KernelBuilder, name: &str| {
        ArrayRef::write(args, vec![AffineExpr::var(j)]).with_field(b.field(args, name))
    };

    let sx = acc(&b, "sx");
    b.stmt(Stmt::add_assign(sx, x()));
    let sxx = acc(&b, "sxx");
    b.stmt(Stmt::add_assign(sxx, Expr::mul(x(), x())));
    let sy = acc(&b, "sy");
    b.stmt(Stmt::add_assign(sy, y()));
    let syy = acc(&b, "syy");
    b.stmt(Stmt::add_assign(syy, Expr::mul(y(), y())));
    let sxy = acc(&b, "sxy");
    b.stmt(Stmt::add_assign(sxy, Expr::mul(x(), y())));
    b.build()
}

/// The **heat diffusion** kernel, parallelized at the *innermost* loop (as in
/// the paper's evaluation): a 5-point 2-D Jacobi sweep where every thread
/// writes interleaved elements of the output row.
///
/// ```c
/// for (i = 1; i < N-1; i++)
///   #pragma omp parallel for schedule(static, chunk)
///   for (j = 1; j < M-1; j++)
///     B[i][j] = A[i][j] + k*(A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1] - 4*A[i][j]);
/// ```
pub fn heat_diffusion(n: u64, m: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("heat_diffusion");
    let i = b.loop_var("i");
    let j = b.loop_var("j");
    let a = b.array("A", &[n, m], ScalarType::F64);
    let out = b.array("B", &[n, m], ScalarType::F64);
    b.seq_for(i, 1, n as i64 - 1);
    b.parallel_for(j, 1, m as i64 - 1, Schedule::Static { chunk });

    let at = |di: i64, dj: i64| {
        Expr::read(ArrayRef::read(
            a,
            vec![AffineExpr::linear(i, 1, di), AffineExpr::linear(j, 1, dj)],
        ))
    };
    // B[i][j] = A[i][j] + 0.1 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1] - 4*A[i][j])
    let laplacian = Expr::sub(
        Expr::add(
            Expr::add(at(-1, 0), at(1, 0)),
            Expr::add(at(0, -1), at(0, 1)),
        ),
        Expr::mul(Expr::num(4.0), at(0, 0)),
    );
    b.stmt(Stmt::assign(
        ArrayRef::write(out, vec![AffineExpr::var(i), AffineExpr::var(j)]),
        Expr::add(at(0, 0), Expr::mul(Expr::num(0.1), laplacian)),
    ));
    b.build()
}

/// The **discrete Fourier transform** kernel, parallelized at the
/// *innermost* loop over output bins: each thread accumulates twiddled
/// contributions of input sample `n` into its interleaved set of output
/// bins.
///
/// ```c
/// for (n = 0; n < N; n++)
///   #pragma omp parallel for schedule(static, chunk)
///   for (k = 0; k < K; k++) {
///     Xre[k] += x[n] * cos(2*pi*k*n/N);
///     Xim[k] -= x[n] * sin(2*pi*k*n/N);
///   }
/// ```
///
/// Twiddle factors are *computed* (one transcendental op each, matching the
/// direct-evaluation DFT the paper cites) rather than read from a table, so
/// the only written data are the `Xre`/`Xim` bins — whose neighbouring
/// elements share lines across threads when `chunk` is small.
pub fn dft(n_in: u64, n_out: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("dft");
    let n = b.loop_var("n");
    let k = b.loop_var("k");
    let xin = b.array("x", &[n_in], ScalarType::F64);
    let xre = b.array("Xre", &[n_out], ScalarType::F64);
    let xim = b.array("Xim", &[n_out], ScalarType::F64);
    b.seq_for(n, 0, n_in as i64);
    b.parallel_for(k, 0, n_out as i64, Schedule::Static { chunk });

    let sample = || Expr::read(ArrayRef::read(xin, vec![AffineExpr::var(n)]));
    let twiddle = || Expr::Unary(UnOp::SinCos, Box::new(sample()));
    b.stmt(Stmt::add_assign(
        ArrayRef::write(xre, vec![AffineExpr::var(k)]),
        Expr::mul(sample(), twiddle()),
    ));
    b.stmt(Stmt::add_assign(
        ArrayRef::write(xim, vec![AffineExpr::var(k)]),
        Expr::mul(sample(), twiddle()),
    ));
    b.build()
}

/// 1-D 3-point **stencil** (moving average), single parallel loop. A compact
/// workload whose only false sharing is on the output array's chunk
/// boundaries.
pub fn stencil1d(n: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("stencil1d");
    let i = b.loop_var("i");
    let a = b.array("A", &[n], ScalarType::F64);
    let out = b.array("B", &[n], ScalarType::F64);
    b.parallel_for(i, 1, n as i64 - 1, Schedule::Static { chunk });
    let at = |d: i64| Expr::read(ArrayRef::read(a, vec![AffineExpr::linear(i, 1, d)]));
    b.stmt(Stmt::assign(
        ArrayRef::write(out, vec![AffineExpr::var(i)]),
        Expr::mul(
            Expr::add(Expr::add(at(-1), at(0)), at(1)),
            Expr::num(1.0 / 3.0),
        ),
    ));
    b.build()
}

/// **Matrix transpose** `B[j][i] = A[i][j]` parallelized over `i` (columns of
/// `B`): with `chunk = 1`, adjacent threads write adjacent elements of every
/// row of `B`, producing false sharing on *every* innermost iteration.
pub fn transpose(n: u64, m: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("transpose");
    let i = b.loop_var("i");
    let j = b.loop_var("j");
    let a = b.array("A", &[n, m], ScalarType::F64);
    let out = b.array("B", &[m, n], ScalarType::F64);
    b.parallel_for(i, 0, n as i64, Schedule::Static { chunk });
    b.seq_for(j, 0, m as i64);
    b.stmt(Stmt::assign(
        ArrayRef::write(out, vec![AffineExpr::var(j), AffineExpr::var(i)]),
        Expr::read(ArrayRef::read(
            a,
            vec![AffineExpr::var(i), AffineExpr::var(j)],
        )),
    ));
    b.build()
}

/// **Dot-product with per-thread partials**: thread-shaped outer parallel
/// loop (`chunk = 1`, one iteration per thread), each accumulating into
/// `partial[t]`. With packed partials every `+=` false-shares with the
/// team; `padded = true` gives each partial its own line.
pub fn dotprod_partials(nthreads: u64, len: u64, padded: bool) -> Kernel {
    let mut b = KernelBuilder::new(if padded {
        "dotprod_partials_padded"
    } else {
        "dotprod_partials"
    });
    let t = b.loop_var("t");
    let i = b.loop_var("i");
    let x = b.array("x", &[nthreads * len], ScalarType::F64);
    let y = b.array("y", &[nthreads * len], ScalarType::F64);
    let elem = if padded {
        ElemLayout::padded_struct(&[("v", ScalarType::F64)], 64)
    } else {
        ElemLayout::packed_struct(&[("v", ScalarType::F64)])
    };
    let partial = b.struct_array("partial", &[nthreads], elem);
    b.parallel_for(t, 0, nthreads as i64, Schedule::Static { chunk: 1 });
    b.seq_for(i, 0, len as i64);
    // x[t*len + i] * y[t*len + i]
    let idx = AffineExpr::linear(t, len as i64, 0) + AffineExpr::var(i);
    let v = b.field(partial, "v");
    b.stmt(Stmt::add_assign(
        ArrayRef::write(partial, vec![AffineExpr::var(t)]).with_field(v),
        Expr::mul(
            Expr::read(ArrayRef::read(x, vec![idx.clone()])),
            Expr::read(ArrayRef::read(y, vec![idx])),
        ),
    ));
    b.build()
}

/// **Matrix-vector product** `y[i] += A[i][j] * x[j]` parallelized over rows:
/// a reduction kernel whose accumulators false-share at small chunk sizes,
/// structurally similar to linear regression but with scalar accumulators.
pub fn matvec(n: u64, m: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("matvec");
    let i = b.loop_var("i");
    let j = b.loop_var("j");
    let a = b.array("A", &[n, m], ScalarType::F64);
    let x = b.array("x", &[m], ScalarType::F64);
    let y = b.array("y", &[n], ScalarType::F64);
    b.parallel_for(i, 0, n as i64, Schedule::Static { chunk });
    b.seq_for(j, 0, m as i64);
    b.stmt(Stmt::add_assign(
        ArrayRef::write(y, vec![AffineExpr::var(i)]),
        Expr::mul(
            Expr::read(ArrayRef::read(
                a,
                vec![AffineExpr::var(i), AffineExpr::var(j)],
            )),
            Expr::read(ArrayRef::read(x, vec![AffineExpr::var(j)])),
        ),
    ));
    b.build()
}

/// **Matrix multiply** `C[i][j] += A[i][k] * B[k][j]` with the *middle*
/// loop parallelized over output columns — a three-deep nest exercising the
/// full walker machinery. With `chunk = 1` adjacent threads accumulate into
/// adjacent elements of each `C` row.
pub fn matmul(n: u64, m: u64, p: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("matmul");
    let i = b.loop_var("i");
    let j = b.loop_var("j");
    let k = b.loop_var("k");
    let a = b.array("A", &[n, p], ScalarType::F64);
    let bb = b.array("B", &[p, m], ScalarType::F64);
    let c = b.array("C", &[n, m], ScalarType::F64);
    b.seq_for(i, 0, n as i64);
    b.parallel_for(j, 0, m as i64, Schedule::Static { chunk });
    b.seq_for(k, 0, p as i64);
    b.stmt(Stmt::add_assign(
        ArrayRef::write(c, vec![AffineExpr::var(i), AffineExpr::var(j)]),
        Expr::mul(
            Expr::read(ArrayRef::read(
                a,
                vec![AffineExpr::var(i), AffineExpr::var(k)],
            )),
            Expr::read(ArrayRef::read(
                bb,
                vec![AffineExpr::var(k), AffineExpr::var(j)],
            )),
        ),
    ));
    b.build()
}

/// **Shared histogram**: every thread RMWs the *same* small bin array — a
/// true-sharing workload (same bytes), the negative control that separates
/// TRUE sharing from FALSE sharing in both the model and the simulator.
pub fn histogram_shared(nthreads: u64, len: u64, bins: u64) -> Kernel {
    let mut b = KernelBuilder::new("histogram_shared");
    let t = b.loop_var("t");
    let i = b.loop_var("i");
    let data = b.array("data", &[nthreads, len], ScalarType::F64);
    let hist = b.array("hist", &[bins], ScalarType::F64);
    b.parallel_for(t, 0, nthreads as i64, Schedule::Static { chunk: 1 });
    b.seq_for(i, 0, len as i64);
    // Every thread adds into bin (i mod bins)... affine restriction: use
    // bin 0 — the maximally contended case.
    b.stmt(Stmt::add_assign(
        ArrayRef::write(hist, vec![AffineExpr::constant(0)]),
        Expr::read(ArrayRef::read(
            data,
            vec![AffineExpr::var(t), AffineExpr::var(i)],
        )),
    ));
    b.build()
}

/// **SAXPY** `y[i] = a*x[i] + y[i]`: the canonical streaming kernel; its
/// only false sharing is at chunk boundaries on `y`.
pub fn saxpy(n: u64, chunk: u64) -> Kernel {
    let mut b = KernelBuilder::new("saxpy");
    let i = b.loop_var("i");
    let x = b.array("x", &[n], ScalarType::F64);
    let y = b.array("y", &[n], ScalarType::F64);
    b.parallel_for(i, 0, n as i64, Schedule::Static { chunk });
    b.stmt(Stmt::assign(
        ArrayRef::write(y, vec![AffineExpr::var(i)]),
        Expr::add(
            Expr::mul(
                Expr::num(2.5),
                Expr::read(ArrayRef::read(x, vec![AffineExpr::var(i)])),
            ),
            Expr::read(ArrayRef::read(y, vec![AffineExpr::var(i)])),
        ),
    ));
    b.build()
}

/// **Strided reduction**: thread-shaped outer loop, but each thread's data
/// is *interleaved* (`x[i*T + t]`) instead of blocked — every read shares
/// lines with the whole team (read-only, so no FS) while the accumulators
/// false-share. Distinguishes read-sharing from write-sharing costs.
pub fn strided_reduction(nthreads: u64, len: u64) -> Kernel {
    let mut b = KernelBuilder::new("strided_reduction");
    let t = b.loop_var("t");
    let i = b.loop_var("i");
    let x = b.array("x", &[nthreads * len], ScalarType::F64);
    let partial = b.array("partial", &[nthreads], ScalarType::F64);
    b.parallel_for(t, 0, nthreads as i64, Schedule::Static { chunk: 1 });
    b.seq_for(i, 0, len as i64);
    // x[i*T + t]
    let idx = AffineExpr::linear(i, nthreads as i64, 0) + AffineExpr::var(t);
    b.stmt(Stmt::add_assign(
        ArrayRef::write(partial, vec![AffineExpr::var(t)]),
        Expr::read(ArrayRef::read(x, vec![idx])),
    ));
    b.build()
}

/// Small instances of every built-in kernel, for tests and smoke runs.
pub fn all_kernels_small() -> Vec<Kernel> {
    vec![
        linear_regression(16, 32, 1),
        linear_regression_padded(16, 32, 1),
        heat_diffusion(18, 18, 1),
        dft(16, 32, 1),
        stencil1d(66, 1),
        transpose(16, 16, 1),
        dotprod_partials(8, 32, false),
        dotprod_partials(8, 32, true),
        matvec(16, 16, 1),
        matmul(8, 16, 8, 1),
        histogram_shared(8, 16, 8),
        saxpy(128, 1),
        strided_reduction(8, 32),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{validate, validate_bounds};

    #[test]
    fn all_builtin_kernels_validate() {
        for k in all_kernels_small() {
            validate(&k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            validate_bounds(&k).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn linreg_structure_matches_paper() {
        let k = linear_regression(96, 100, 1);
        assert_eq!(k.nest.parallel.level, 0, "parallelized at outermost loop");
        assert_eq!(k.nest.body.len(), 5, "five accumulator statements");
        let (_, args) = k.array_named("args").unwrap();
        assert_eq!(args.elem.size_bytes(), 40, "packed 5x f64 struct");
        // 5 statements, each: reads + lhs-read + lhs-write
        let plan = k.access_plan();
        assert_eq!(plan.writes_per_iter(), 5);
    }

    #[test]
    fn linreg_padded_fills_a_line() {
        let k = linear_regression_padded(96, 100, 1);
        let (_, args) = k.array_named("args").unwrap();
        assert_eq!(args.elem.size_bytes(), 64);
    }

    #[test]
    fn heat_and_dft_parallelize_innermost() {
        let h = heat_diffusion(64, 64, 1);
        assert_eq!(h.nest.parallel.level, 1);
        assert_eq!(h.nest.depth(), 2);
        let d = dft(64, 64, 1);
        assert_eq!(d.nest.parallel.level, 1);
    }

    #[test]
    fn heat_trip_counts_exclude_halo() {
        let h = heat_diffusion(18, 34, 1);
        assert_eq!(h.nest.loops[0].const_trip_count(), Some(16));
        assert_eq!(h.nest.parallel_trip_count(), Some(32));
    }

    #[test]
    fn dft_writes_two_bins_per_iteration() {
        let d = dft(8, 8, 1);
        assert_eq!(d.access_plan().writes_per_iter(), 2);
    }

    #[test]
    fn dotprod_partials_is_thread_shaped() {
        let k = dotprod_partials(4, 16, false);
        assert_eq!(k.nest.parallel_trip_count(), Some(4));
        assert_eq!(k.nest.parallel.schedule.chunk(), 1);
        let kp = dotprod_partials(4, 16, true);
        let (_, p) = kp.array_named("partial").unwrap();
        assert_eq!(p.elem.size_bytes(), 64);
    }

    #[test]
    fn matmul_is_three_deep_with_middle_parallel() {
        let k = matmul(4, 8, 4, 1);
        assert_eq!(k.nest.depth(), 3);
        assert_eq!(k.nest.parallel.level, 1);
        assert_eq!(k.nest.total_iterations(), Some(4 * 8 * 4));
        assert_eq!(k.nest.inner_iters_per_parallel_iter(), Some(4));
        assert_eq!(k.nest.outer_iters(), Some(4));
    }

    #[test]
    fn histogram_shared_hits_one_element() {
        let k = histogram_shared(4, 8, 8);
        let w = &k.nest.body[0].lhs;
        assert_eq!(w.indices[0].as_const(), Some(0));
    }

    #[test]
    fn strided_reduction_reads_interleaved() {
        let k = strided_reduction(4, 8);
        let mut reads = Vec::new();
        k.nest.body[0].rhs.collect_reads(&mut reads);
        // x index = 4*i + t
        assert_eq!(reads[0].indices[0].coeff(loop_ir_var(1)), 4);
        assert_eq!(reads[0].indices[0].coeff(loop_ir_var(0)), 1);
    }

    fn loop_ir_var(i: u32) -> crate::expr::VarId {
        crate::expr::VarId(i)
    }

    #[test]
    fn transpose_write_is_column_major() {
        let k = transpose(8, 8, 1);
        let plan = k.access_plan();
        let w = plan.accesses.iter().find(|a| a.is_write).unwrap();
        // write subscript is [j][i]: first index uses var 1 (j)
        assert!(w.indices[0].uses_var(crate::expr::VarId(1)));
        assert!(w.indices[1].uses_var(crate::expr::VarId(0)));
    }
}
