//! Structural validation of kernels before analysis.

use crate::expr::VarId;
use crate::kernel::Kernel;
use crate::walk::ThreadWalker;
use std::fmt;

/// Reasons a kernel is rejected by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    NoLoops,
    EmptyBody,
    /// The parallel level is deeper than the nest.
    BadParallelLevel {
        level: usize,
        depth: usize,
    },
    /// Chunk size must be at least 1.
    ZeroChunk,
    /// Loop steps must be positive.
    NonPositiveStep {
        level: usize,
    },
    /// The parallel loop needs compile-time-constant bounds for the static
    /// round-robin distribution to be computable.
    NonConstParallelBounds,
    /// A loop bound refers to a variable of the same or a deeper level.
    BoundUsesInnerVar {
        level: usize,
        var: String,
    },
    /// A subscript has the wrong arity for its array.
    RankMismatch {
        array: String,
        expected: usize,
        got: usize,
    },
    /// A subscript references a variable not bound by any loop.
    UnboundVar {
        array: String,
        var_index: u32,
    },
    /// A field reference on a scalar-element array.
    FieldOnScalar {
        array: String,
    },
    /// A field id out of range for the array's struct layout.
    BadField {
        array: String,
        field: u32,
    },
    /// A concrete iteration produced an out-of-bounds element index.
    OutOfBounds {
        array: String,
        iteration: Vec<i64>,
        linear: i64,
        elems: u64,
    },
    /// The requested team is wider than the analyses can represent (the
    /// FS model tracks per-line writer sets as 64-bit thread masks).
    TeamTooLarge {
        requested: u32,
        max: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::NoLoops => write!(f, "kernel has no loops"),
            ValidateError::EmptyBody => write!(f, "kernel has an empty loop body"),
            ValidateError::BadParallelLevel { level, depth } => {
                write!(
                    f,
                    "parallel level {level} out of range for depth-{depth} nest"
                )
            }
            ValidateError::ZeroChunk => write!(f, "chunk size must be >= 1"),
            ValidateError::NonPositiveStep { level } => {
                write!(f, "loop at level {level} has a non-positive step")
            }
            ValidateError::NonConstParallelBounds => {
                write!(f, "parallel loop bounds must be compile-time constants")
            }
            ValidateError::BoundUsesInnerVar { level, var } => write!(
                f,
                "bound of loop at level {level} uses variable '{var}' of an inner or same level"
            ),
            ValidateError::RankMismatch {
                array,
                expected,
                got,
            } => write!(
                f,
                "array '{array}' has rank {expected} but subscript has {got} indices"
            ),
            ValidateError::UnboundVar { array, var_index } => write!(
                f,
                "subscript of array '{array}' uses unbound variable #{var_index}"
            ),
            ValidateError::FieldOnScalar { array } => {
                write!(f, "field access on scalar-element array '{array}'")
            }
            ValidateError::BadField { array, field } => {
                write!(f, "array '{array}' has no field #{field}")
            }
            ValidateError::OutOfBounds {
                array,
                iteration,
                linear,
                elems,
            } => write!(
                f,
                "reference to array '{array}' at iteration {iteration:?} hits element {linear} \
                 outside [0, {elems})"
            ),
            ValidateError::TeamTooLarge { requested, max } => write!(
                f,
                "team size {requested} exceeds the modelable maximum of {max} threads"
            ),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Check a kernel's structural invariants. Cheap (no iteration-space walk);
/// see [`validate_bounds`] for the optional dynamic bounds check.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateError> {
    let nest = &kernel.nest;
    if nest.loops.is_empty() {
        return Err(ValidateError::NoLoops);
    }
    if nest.body.is_empty() {
        return Err(ValidateError::EmptyBody);
    }
    if nest.parallel.level >= nest.depth() {
        return Err(ValidateError::BadParallelLevel {
            level: nest.parallel.level,
            depth: nest.depth(),
        });
    }
    if nest.parallel.schedule.chunk() == 0 {
        return Err(ValidateError::ZeroChunk);
    }
    for (l, lp) in nest.loops.iter().enumerate() {
        if lp.step <= 0 {
            return Err(ValidateError::NonPositiveStep { level: l });
        }
        for bound in [&lp.lower, &lp.upper] {
            if let Some(v) = bound.max_var() {
                if v.index() >= l {
                    return Err(ValidateError::BoundUsesInnerVar {
                        level: l,
                        var: kernel
                            .vars
                            .get(v.index())
                            .cloned()
                            .unwrap_or_else(|| format!("#{}", v.0)),
                    });
                }
            }
        }
    }
    if nest.parallel_trip_count().is_none() {
        return Err(ValidateError::NonConstParallelBounds);
    }
    let nvars = kernel.vars.len() as u32;
    for stmt in &nest.body {
        for r in stmt.references() {
            let decl = kernel.array(r.array);
            if r.indices.len() != decl.dims.len() {
                return Err(ValidateError::RankMismatch {
                    array: decl.name.clone(),
                    expected: decl.dims.len(),
                    got: r.indices.len(),
                });
            }
            for e in &r.indices {
                if let Some(v) = e.max_var() {
                    if v.0 >= nvars {
                        return Err(ValidateError::UnboundVar {
                            array: decl.name.clone(),
                            var_index: v.0,
                        });
                    }
                }
            }
            if let Some(fid) = r.field {
                let fields = decl.elem.fields();
                if fields.is_empty() {
                    return Err(ValidateError::FieldOnScalar {
                        array: decl.name.clone(),
                    });
                }
                if fid.index() >= fields.len() {
                    return Err(ValidateError::BadField {
                        array: decl.name.clone(),
                        field: fid.0,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Walk the full sequential iteration space checking every reference stays
/// inside its array. O(total iterations × references) — intended for tests
/// and small kernels, not the analysis hot path.
pub fn validate_bounds(kernel: &Kernel) -> Result<(), ValidateError> {
    validate(kernel)?;
    let plan = kernel.access_plan();
    let mut idx = vec![0i64; plan.max_rank];
    let mut w = ThreadWalker::sequential(kernel);
    while let Some(env) = w.next_env() {
        for a in &plan.accesses {
            let decl = kernel.array(a.array);
            for (k, e) in a.indices.iter().enumerate() {
                idx[k] = e.eval(env);
            }
            let lin = decl.linearize(&idx[..a.indices.len()]);
            let elems = decl.num_elems();
            if lin < 0 || lin as u64 >= elems {
                return Err(ValidateError::OutOfBounds {
                    array: decl.name.clone(),
                    iteration: env.to_vec(),
                    linear: lin,
                    elems,
                });
            }
        }
    }
    Ok(())
}

/// Variable ids bound by the kernel's loops, outermost first.
pub fn bound_vars(kernel: &Kernel) -> Vec<VarId> {
    kernel.nest.loops.iter().map(|l| l.var).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AffineExpr;
    use crate::kernel::KernelBuilder;
    use crate::nest::Schedule;
    use crate::reference::ArrayRef;
    use crate::stmt::{Expr, Stmt};
    use crate::types::ScalarType;

    fn good_kernel() -> Kernel {
        let mut b = KernelBuilder::new("ok");
        let i = b.loop_var("i");
        let a = b.array("A", &[16], ScalarType::F64);
        b.parallel_for(i, 0, 16, Schedule::Static { chunk: 2 });
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![b.idx(i)]),
            Expr::num(1.0),
        ));
        b.build()
    }

    #[test]
    fn accepts_good_kernel() {
        let k = good_kernel();
        assert_eq!(validate(&k), Ok(()));
        assert_eq!(validate_bounds(&k), Ok(()));
    }

    #[test]
    fn rejects_rank_mismatch() {
        let mut k = good_kernel();
        k.nest.body[0].lhs.indices.push(AffineExpr::constant(0));
        match validate(&k) {
            Err(ValidateError::RankMismatch { expected, got, .. }) => {
                assert_eq!((expected, got), (1, 2));
            }
            other => panic!("expected rank mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_zero_chunk() {
        let mut k = good_kernel();
        k.nest.parallel.schedule = Schedule::Static { chunk: 0 };
        assert_eq!(validate(&k), Err(ValidateError::ZeroChunk));
    }

    #[test]
    fn rejects_nonconst_parallel_bounds() {
        let mut b = KernelBuilder::new("bad");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let a = b.array("A", &[16, 16], ScalarType::F64);
        b.seq_for(i, 0, 16);
        // parallel loop with a bound depending on i
        b.parallel_for(j, 0, AffineExpr::var(i), Schedule::Static { chunk: 1 });
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![b.idx(i), b.idx(j)]),
            Expr::num(1.0),
        ));
        let k = b.build();
        assert_eq!(validate(&k), Err(ValidateError::NonConstParallelBounds));
    }

    #[test]
    fn rejects_field_on_scalar() {
        let mut k = good_kernel();
        k.nest.body[0].lhs.field = Some(crate::array::FieldId(0));
        assert!(matches!(
            validate(&k),
            Err(ValidateError::FieldOnScalar { .. })
        ));
    }

    #[test]
    fn rejects_unbound_var() {
        let mut k = good_kernel();
        k.nest.body[0].lhs.indices[0] = AffineExpr::var(VarId(5));
        assert!(matches!(
            validate(&k),
            Err(ValidateError::UnboundVar { .. })
        ));
    }

    #[test]
    fn bounds_walk_catches_overflow() {
        let mut b = KernelBuilder::new("oob");
        let i = b.loop_var("i");
        let a = b.array("A", &[8], ScalarType::F64);
        b.parallel_for(i, 0, 8, Schedule::Static { chunk: 1 });
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![AffineExpr::linear(i, 1, 1)]), // A[i+1]
            Expr::num(0.0),
        ));
        let k = b.build();
        assert_eq!(validate(&k), Ok(()), "static checks can't see this");
        assert!(matches!(
            validate_bounds(&k),
            Err(ValidateError::OutOfBounds { linear: 8, .. })
        ));
    }

    #[test]
    fn rejects_bound_using_inner_var() {
        let mut b = KernelBuilder::new("badbound");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let a = b.array("A", &[16, 16], ScalarType::F64);
        b.seq_for(i, 0, AffineExpr::var(j)); // upper bound uses inner var
        b.parallel_for(j, 0, 4, Schedule::Static { chunk: 1 });
        b.stmt(Stmt::assign(
            ArrayRef::write(a, vec![b.idx(i), b.idx(j)]),
            Expr::num(1.0),
        ));
        let k = b.build();
        assert!(matches!(
            validate(&k),
            Err(ValidateError::BoundUsesInnerVar { level: 0, .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ValidateError::RankMismatch {
            array: "A".into(),
            expected: 2,
            got: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("A") && msg.contains('2') && msg.contains('1'));
    }
}
