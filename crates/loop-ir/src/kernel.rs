//! Kernels: a named loop nest plus its array declarations, and the
//! precompiled access plan used by trace generation and the FS model.

use crate::array::{ArrayDecl, ArrayId, ElemLayout, FieldId};
use crate::expr::{AffineExpr, VarId};
use crate::nest::{Loop, LoopNest, Parallel, Schedule};
use crate::stmt::Stmt;
use crate::types::ScalarType;

/// A complete analyzable unit: arrays + a parallel loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    pub name: String,
    /// Loop variable names; `VarId(i)` names `vars[i]`. Position equals loop
    /// depth in the nest.
    pub vars: Vec<String>,
    pub arrays: Vec<ArrayDecl>,
    pub nest: LoopNest,
}

impl Kernel {
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    pub fn array_named(&self, name: &str) -> Option<(ArrayId, &ArrayDecl)> {
        self.arrays
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
            .map(|(i, a)| (ArrayId(i as u32), a))
    }

    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()]
    }

    /// Precompile the innermost-body references into a flat [`AccessPlan`].
    pub fn access_plan(&self) -> AccessPlan {
        AccessPlan::new(self)
    }

    /// Visit every array reference of the body mutably (LHS and RHS) — the
    /// hook IR transformations like padding use to rewrite accesses.
    pub fn map_refs(&mut self, mut f: impl FnMut(&mut crate::reference::ArrayRef)) {
        for stmt in &mut self.nest.body {
            f(&mut stmt.lhs);
            stmt.rhs.visit_refs_mut(&mut f);
        }
    }

    /// Assign each array a disjoint, cache-line-aligned base address, in
    /// declaration order. The paper's model assumes "all array variables are
    /// aligned with the cache line boundary" (§III-B); spacing bases a full
    /// `align` apart additionally guarantees distinct arrays never share a
    /// line.
    pub fn array_bases(&self, align: u64) -> Vec<u64> {
        let mut bases = Vec::with_capacity(self.arrays.len());
        let mut next = align; // leave page 0 unused
        for a in &self.arrays {
            bases.push(next);
            let sz = a.size_bytes().max(1);
            next += sz.div_ceil(align) * align + align;
        }
        bases
    }
}

/// One memory access of the innermost body, with everything precomputed
/// except the loop-index values.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedAccess {
    pub array: ArrayId,
    pub indices: Vec<AffineExpr>,
    /// Byte offset within the element (struct field offset, 0 for scalars).
    pub field_offset: u32,
    /// Access width in bytes.
    pub size: u32,
    pub is_write: bool,
    /// Element size of the array, cached for linearization.
    pub elem_size: u32,
    /// Row-major dimension extents of the array, cached.
    pub dims: Vec<u64>,
}

impl PlannedAccess {
    /// Absolute byte address of this access at the iteration given by `env`,
    /// with `bases[array]` the array base address. `idx_buf` is scratch of
    /// length >= indices.len().
    #[inline]
    #[allow(clippy::needless_range_loop)]
    pub fn address(&self, env: &[i64], bases: &[u64], idx_buf: &mut [i64]) -> u64 {
        let n = self.indices.len();
        for k in 0..n {
            idx_buf[k] = self.indices[k].eval(env);
        }
        let mut lin: i64 = 0;
        for k in 0..n {
            lin = lin * self.dims[k] as i64 + idx_buf[k];
        }
        let byte = lin * self.elem_size as i64 + self.field_offset as i64;
        (bases[self.array.index()] as i64 + byte) as u64
    }
}

/// The innermost body lowered to a flat sequence of [`PlannedAccess`]es in
/// program order (per statement: RHS reads, LHS read if compound, LHS
/// write). This is "step 1" of the paper's model — obtaining the array
/// references — done once per kernel instead of per iteration.
#[derive(Debug, Clone)]
pub struct AccessPlan {
    pub accesses: Vec<PlannedAccess>,
    /// Maximum subscript arity, for sizing scratch buffers.
    pub max_rank: usize,
}

impl AccessPlan {
    pub fn new(kernel: &Kernel) -> AccessPlan {
        let mut accesses = Vec::new();
        for stmt in &kernel.nest.body {
            for r in stmt.references() {
                let decl = kernel.array(r.array);
                let (foff, size) = decl.elem.field_offset_size(r.field);
                accesses.push(PlannedAccess {
                    array: r.array,
                    indices: r.indices.clone(),
                    field_offset: foff as u32,
                    size: size as u32,
                    is_write: r.access.is_write(),
                    elem_size: decl.elem.size_bytes() as u32,
                    dims: decl.dims.clone(),
                });
            }
        }
        let max_rank = accesses.iter().map(|a| a.indices.len()).max().unwrap_or(0);
        AccessPlan { accesses, max_rank }
    }

    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of write accesses per innermost iteration.
    pub fn writes_per_iter(&self) -> usize {
        self.accesses.iter().filter(|a| a.is_write).count()
    }

    /// Strength-reduce the plan against a base-address layout: fold every
    /// access's subscripts and row-major weights into per-loop-variable
    /// byte deltas, for incremental address generation with
    /// [`crate::stream::StreamCursor`] /
    /// [`crate::walk::LockstepWalker::step_streams`]. `n_vars` is the
    /// environment width ([`Kernel::vars`]`.len()`).
    pub fn compile(&self, n_vars: usize, bases: &[u64]) -> crate::stream::CompiledPlan {
        crate::stream::CompiledPlan::new(self, n_vars, bases)
    }
}

/// Fluent builder for [`Kernel`]s.
///
/// ```
/// use loop_ir::{KernelBuilder, ScalarType, Schedule, Expr, Stmt, ArrayRef};
///
/// let mut b = KernelBuilder::new("saxpy");
/// let i = b.loop_var("i");
/// let x = b.array("x", &[1024], ScalarType::F32);
/// let y = b.array("y", &[1024], ScalarType::F32);
/// b.parallel_for(i, 0, 1024, Schedule::Static { chunk: 1 });
/// b.stmt(Stmt::assign(
///     ArrayRef::write(y, vec![b.idx(i)]),
///     Expr::add(
///         Expr::mul(Expr::num(2.0), Expr::read(ArrayRef::read(x, vec![b.idx(i)]))),
///         Expr::read(ArrayRef::read(y, vec![b.idx(i)])),
///     ),
/// ));
/// let kernel = b.build();
/// assert_eq!(kernel.nest.depth(), 1);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    vars: Vec<String>,
    arrays: Vec<ArrayDecl>,
    loops: Vec<Loop>,
    body: Vec<Stmt>,
    parallel: Option<Parallel>,
}

impl KernelBuilder {
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            name: name.to_string(),
            vars: Vec::new(),
            arrays: Vec::new(),
            loops: Vec::new(),
            body: Vec::new(),
            parallel: None,
        }
    }

    /// Declare a loop variable. Declaration order must match nesting depth.
    pub fn loop_var(&mut self, name: &str) -> VarId {
        self.vars.push(name.to_string());
        VarId(self.vars.len() as u32 - 1)
    }

    /// Declare an array with scalar elements.
    pub fn array(&mut self, name: &str, dims: &[u64], ty: ScalarType) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            dims: dims.to_vec(),
            elem: ElemLayout::Scalar(ty),
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Declare an array with struct elements.
    pub fn struct_array(&mut self, name: &str, dims: &[u64], elem: ElemLayout) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            dims: dims.to_vec(),
            elem,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Field id of a struct array's field, by name.
    pub fn field(&self, array: ArrayId, name: &str) -> FieldId {
        self.arrays[array.index()]
            .elem
            .field_named(name)
            .unwrap_or_else(|| panic!("array has no field named {name}"))
            .0
    }

    /// Convenience: the affine expression for a bare loop variable.
    pub fn idx(&self, v: VarId) -> AffineExpr {
        AffineExpr::var(v)
    }

    /// Add a sequential loop `for var in lo..hi` at the next depth.
    pub fn seq_for(&mut self, var: VarId, lo: impl Into<AffineExpr>, hi: impl Into<AffineExpr>) {
        self.seq_for_step(var, lo, hi, 1);
    }

    /// Add a sequential loop with an explicit step.
    pub fn seq_for_step(
        &mut self,
        var: VarId,
        lo: impl Into<AffineExpr>,
        hi: impl Into<AffineExpr>,
        step: i64,
    ) {
        assert_eq!(
            var.index(),
            self.loops.len(),
            "loops must be added outermost-first with vars declared in depth order"
        );
        self.loops.push(Loop {
            var,
            lower: lo.into(),
            upper: hi.into(),
            step,
        });
    }

    /// Add the parallel (work-shared) loop at the next depth.
    pub fn parallel_for(
        &mut self,
        var: VarId,
        lo: impl Into<AffineExpr>,
        hi: impl Into<AffineExpr>,
        schedule: Schedule,
    ) {
        assert!(self.parallel.is_none(), "only one parallel loop per nest");
        let level = self.loops.len();
        self.seq_for(var, lo, hi);
        self.parallel = Some(Parallel { level, schedule });
    }

    /// Append a body statement (executed in the innermost loop).
    pub fn stmt(&mut self, s: Stmt) {
        self.body.push(s);
    }

    /// Finish. Panics if no loops, no parallel annotation, or empty body —
    /// use [`crate::validate()`] for recoverable error reporting.
    pub fn build(self) -> Kernel {
        assert!(!self.loops.is_empty(), "kernel needs at least one loop");
        assert!(!self.body.is_empty(), "kernel needs a loop body");
        let parallel = self.parallel.expect("kernel needs a parallel loop");
        Kernel {
            name: self.name,
            vars: self.vars,
            arrays: self.arrays,
            nest: LoopNest {
                loops: self.loops,
                body: self.body,
                parallel,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ArrayRef;
    use crate::stmt::Expr;

    fn build_2d() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let a = b.array("A", &[8, 16], ScalarType::F64);
        let s = b.struct_array(
            "acc",
            &[8],
            ElemLayout::packed_struct(&[("sx", ScalarType::F64), ("sy", ScalarType::F64)]),
        );
        b.parallel_for(i, 0, 8, Schedule::Static { chunk: 1 });
        b.seq_for(j, 0, 16);
        let sx = b.field(s, "sx");
        b.stmt(Stmt::add_assign(
            ArrayRef::write(s, vec![b.idx(i)]).with_field(sx),
            Expr::read(ArrayRef::read(a, vec![b.idx(i), b.idx(j)])),
        ));
        b.build()
    }

    #[test]
    fn builder_constructs_consistent_kernel() {
        let k = build_2d();
        assert_eq!(k.vars, vec!["i", "j"]);
        assert_eq!(k.nest.depth(), 2);
        assert_eq!(k.nest.parallel.level, 0);
        assert_eq!(k.array_named("A").unwrap().0, ArrayId(0));
        assert_eq!(k.var_name(VarId(1)), "j");
    }

    #[test]
    fn access_plan_orders_and_sizes() {
        let k = build_2d();
        let plan = k.access_plan();
        // read A[i][j], read acc[i].sx (compound), write acc[i].sx
        assert_eq!(plan.len(), 3);
        assert!(!plan.accesses[0].is_write);
        assert_eq!(plan.accesses[0].size, 8);
        assert!(!plan.accesses[1].is_write);
        assert!(plan.accesses[2].is_write);
        assert_eq!(plan.accesses[2].elem_size, 16);
        assert_eq!(plan.writes_per_iter(), 1);
        assert_eq!(plan.max_rank, 2);
    }

    #[test]
    fn planned_access_addresses() {
        let k = build_2d();
        let plan = k.access_plan();
        let bases = k.array_bases(64);
        let mut buf = [0i64; 2];
        // A[2][3] at env (i=2, j=3): base + (2*16+3)*8
        let addr = plan.accesses[0].address(&[2, 3], &bases, &mut buf);
        assert_eq!(addr, bases[0] + 35 * 8);
        // acc[2].sx: base1 + 2*16 + 0
        let addr = plan.accesses[2].address(&[2, 3], &bases, &mut buf);
        assert_eq!(addr, bases[1] + 32);
    }

    #[test]
    fn array_bases_are_aligned_and_disjoint() {
        let k = build_2d();
        let bases = k.array_bases(64);
        assert_eq!(bases.len(), 2);
        for b in &bases {
            assert_eq!(b % 64, 0);
        }
        // A is 8*16*8 = 1024 bytes; acc must start past it.
        assert!(bases[1] >= bases[0] + 1024);
    }
}
