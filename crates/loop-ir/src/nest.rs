//! Loop nests and parallel annotations.

use crate::expr::{AffineExpr, VarId};
use crate::stmt::Stmt;

/// One loop of a perfect nest: `for var in lower..upper step step`.
///
/// Bounds are affine in *outer* loop variables (triangular nests are
/// allowed); `upper` is exclusive, matching both Rust ranges and the C
/// `for (i = lo; i < hi; i += step)` idiom the paper's kernels use.
#[derive(Debug, Clone, PartialEq)]
pub struct Loop {
    pub var: VarId,
    pub lower: AffineExpr,
    pub upper: AffineExpr,
    /// Positive iteration step.
    pub step: i64,
}

impl Loop {
    /// Number of iterations given concrete values of outer variables.
    #[inline]
    pub fn trip_count(&self, env: &[i64]) -> u64 {
        let lo = self.lower.eval(env);
        let hi = self.upper.eval(env);
        if hi <= lo {
            0
        } else {
            ((hi - lo) as u64).div_ceil(self.step as u64)
        }
    }

    /// Trip count if both bounds are compile-time constants.
    pub fn const_trip_count(&self) -> Option<u64> {
        let lo = self.lower.as_const()?;
        let hi = self.upper.as_const()?;
        Some(if hi <= lo {
            0
        } else {
            ((hi - lo) as u64).div_ceil(self.step as u64)
        })
    }
}

/// OpenMP-style loop schedule. The paper's model assumes chunks are handed to
/// threads round-robin, which is exactly `schedule(static, chunk)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static, chunk)`: chunk `c` of consecutive iterations goes to
    /// thread `c mod num_threads`.
    Static { chunk: u64 },
}

impl Schedule {
    pub fn chunk(self) -> u64 {
        match self {
            Schedule::Static { chunk } => chunk,
        }
    }
}

/// The parallel annotation of a nest: which loop level is work-shared and
/// how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallel {
    /// Depth of the parallelized loop (0 = outermost).
    pub level: usize,
    pub schedule: Schedule,
}

/// A perfect loop nest with the statement body attached to the innermost
/// loop — the shape the paper's model handles (§III-A: "array references
/// made in the innermost loop").
#[derive(Debug, Clone, PartialEq)]
pub struct LoopNest {
    /// Loops from outermost to innermost. Non-empty.
    pub loops: Vec<Loop>,
    /// Statements executed once per innermost iteration, in program order.
    pub body: Vec<Stmt>,
    pub parallel: Parallel,
}

impl LoopNest {
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The parallelized loop.
    pub fn parallel_loop(&self) -> &Loop {
        &self.loops[self.parallel.level]
    }

    /// The innermost loop.
    pub fn innermost(&self) -> &Loop {
        self.loops.last().expect("nest has at least one loop")
    }

    /// Trip count of the parallel loop when its bounds are constant. Bounds
    /// of a parallel loop may not depend on outer sequential loops for the
    /// static round-robin distribution to be well defined at compile time.
    pub fn parallel_trip_count(&self) -> Option<u64> {
        self.parallel_loop().const_trip_count()
    }

    /// Product of the trip counts of the loops strictly *inside* the
    /// parallel loop, assuming constant bounds; i.e. how many innermost-body
    /// executions one parallel-loop iteration performs. Returns `None` for
    /// non-constant inner bounds (triangular nests), where callers fall back
    /// to walking.
    pub fn inner_iters_per_parallel_iter(&self) -> Option<u64> {
        self.loops[self.parallel.level + 1..]
            .iter()
            .map(Loop::const_trip_count)
            .product()
    }

    /// Product of trip counts of loops strictly *outside* the parallel loop
    /// (executed identically by every thread).
    pub fn outer_iters(&self) -> Option<u64> {
        self.loops[..self.parallel.level]
            .iter()
            .map(Loop::const_trip_count)
            .product()
    }

    /// Total innermost-body executions over the whole nest ("All num of
    /// iters" in the paper), for constant bounds.
    pub fn total_iterations(&self) -> Option<u64> {
        self.loops.iter().map(Loop::const_trip_count).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::reference::ArrayRef;
    use crate::stmt::Expr;

    fn simple_loop(var: u32, lo: i64, hi: i64, step: i64) -> Loop {
        Loop {
            var: VarId(var),
            lower: AffineExpr::constant(lo),
            upper: AffineExpr::constant(hi),
            step,
        }
    }

    fn dummy_stmt() -> Stmt {
        Stmt::assign(
            ArrayRef::write(ArrayId(0), vec![AffineExpr::var(VarId(0))]),
            Expr::num(0.0),
        )
    }

    #[test]
    fn trip_counts() {
        assert_eq!(simple_loop(0, 0, 10, 1).const_trip_count(), Some(10));
        assert_eq!(simple_loop(0, 0, 10, 3).const_trip_count(), Some(4));
        assert_eq!(simple_loop(0, 5, 5, 1).const_trip_count(), Some(0));
        assert_eq!(simple_loop(0, 8, 5, 1).const_trip_count(), Some(0));
    }

    #[test]
    fn triangular_trip_count_evaluates_under_env() {
        // for j in 0..i
        let l = Loop {
            var: VarId(1),
            lower: AffineExpr::constant(0),
            upper: AffineExpr::var(VarId(0)),
            step: 1,
        };
        assert_eq!(l.trip_count(&[7, 0]), 7);
        assert_eq!(l.trip_count(&[0, 0]), 0);
        assert_eq!(l.const_trip_count(), None);
    }

    #[test]
    fn nest_products() {
        let nest = LoopNest {
            loops: vec![
                simple_loop(0, 0, 4, 1),
                simple_loop(1, 0, 6, 1),
                simple_loop(2, 0, 8, 1),
            ],
            body: vec![dummy_stmt()],
            parallel: Parallel {
                level: 1,
                schedule: Schedule::Static { chunk: 2 },
            },
        };
        assert_eq!(nest.total_iterations(), Some(4 * 6 * 8));
        assert_eq!(nest.parallel_trip_count(), Some(6));
        assert_eq!(nest.inner_iters_per_parallel_iter(), Some(8));
        assert_eq!(nest.outer_iters(), Some(4));
        assert_eq!(nest.parallel.schedule.chunk(), 2);
    }

    #[test]
    fn innermost_parallel_nest_has_unit_inner_product() {
        let nest = LoopNest {
            loops: vec![simple_loop(0, 0, 4, 1), simple_loop(1, 0, 6, 1)],
            body: vec![dummy_stmt()],
            parallel: Parallel {
                level: 1,
                schedule: Schedule::Static { chunk: 1 },
            },
        };
        assert_eq!(nest.inner_iters_per_parallel_iter(), Some(1));
        assert_eq!(nest.outer_iters(), Some(4));
    }
}
