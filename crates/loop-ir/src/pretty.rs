//! Pretty-printer: renders a [`Kernel`] in the textual DSL accepted by
//! [`crate::dsl`], such that `parse(print(k)) == k`.

use crate::array::ElemLayout;
use crate::kernel::Kernel;
use crate::nest::Schedule;
use crate::reference::ArrayRef;
use crate::stmt::{BinOp, Expr, Stmt, UnOp};
use std::fmt::Write;

/// Render `kernel` as DSL source text.
pub fn kernel_to_dsl(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel {} {{", kernel.name);
    for a in &kernel.arrays {
        let dims: String = a.dims.iter().map(|d| format!("[{d}]")).collect();
        match &a.elem {
            ElemLayout::Scalar(t) => {
                let _ = writeln!(out, "  array {}{}: {};", a.name, dims, t.keyword());
            }
            ElemLayout::Struct { size, fields } => {
                let fl: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}: {}", f.name, f.ty.keyword()))
                    .collect();
                let packed: usize = fields.iter().map(|f| f.ty.size_bytes()).sum();
                let _ = write!(out, "  array {}{} of {{ {} }}", a.name, dims, fl.join(", "));
                if *size > packed {
                    let _ = write!(out, " pad {size}");
                }
                let _ = writeln!(out, ";");
            }
        }
    }
    print_loops(kernel, 0, &mut out);
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth + 1 {
        out.push_str("  ");
    }
}

fn print_loops(kernel: &Kernel, level: usize, out: &mut String) {
    let nest = &kernel.nest;
    if level == nest.depth() {
        for s in &nest.body {
            indent(out, level);
            print_stmt(kernel, s, out);
            out.push('\n');
        }
        return;
    }
    let l = &nest.loops[level];
    indent(out, level);
    let lo = l.lower.display_with(&kernel.vars).to_string();
    let hi = l.upper.display_with(&kernel.vars).to_string();
    if level == nest.parallel.level {
        let Schedule::Static { chunk } = nest.parallel.schedule;
        let _ = write!(
            out,
            "parallel for {} in {}..{}",
            kernel.var_name(l.var),
            lo,
            hi
        );
        if l.step != 1 {
            let _ = write!(out, " step {}", l.step);
        }
        let _ = writeln!(out, " schedule(static, {chunk}) {{");
    } else {
        let _ = write!(out, "for {} in {}..{}", kernel.var_name(l.var), lo, hi);
        if l.step != 1 {
            let _ = write!(out, " step {}", l.step);
        }
        out.push_str(" {\n");
    }
    print_loops(kernel, level + 1, out);
    indent(out, level);
    out.push_str("}\n");
}

fn print_stmt(kernel: &Kernel, s: &Stmt, out: &mut String) {
    print_ref(kernel, &s.lhs, out);
    let _ = write!(out, " {} ", s.op.symbol());
    print_expr(kernel, &s.rhs, 0, out);
    out.push(';');
}

fn print_ref(kernel: &Kernel, r: &ArrayRef, out: &mut String) {
    let decl = kernel.array(r.array);
    out.push_str(&decl.name);
    for e in &r.indices {
        let _ = write!(out, "[{}]", e.display_with(&kernel.vars));
    }
    if let Some(fid) = r.field {
        let _ = write!(out, ".{}", decl.elem.fields()[fid.index()].name);
    }
}

fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div => 2,
    }
}

/// `min_prec` is the precedence context: wrap in parens if this node binds
/// looser than required.
fn print_expr(kernel: &Kernel, e: &Expr, min_prec: u8, out: &mut String) {
    match e {
        Expr::Num(v) => {
            if *v < 0.0 {
                let _ = write!(out, "({v:?})");
            } else {
                let _ = write!(out, "{v:?}");
            }
        }
        Expr::Ref(r) => print_ref(kernel, r, out),
        Expr::Unary(op, inner) => {
            let name = match op {
                UnOp::Neg => {
                    out.push_str("-(");
                    print_expr(kernel, inner, 0, out);
                    out.push(')');
                    return;
                }
                UnOp::Sqrt => "sqrt",
                UnOp::SinCos => "sincos",
            };
            let _ = write!(out, "{name}(");
            print_expr(kernel, inner, 0, out);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            let prec = bin_prec(*op);
            let need_parens = prec < min_prec;
            if need_parens {
                out.push('(');
            }
            print_expr(kernel, a, prec, out);
            let sym = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
            };
            out.push_str(sym);
            // Right operands always require strictly higher precedence: for
            // `-`/`/` this is semantic, for `+`/`*` it preserves the tree
            // shape exactly so parse(print(e)) is structurally equal to `e`
            // (the parser builds left-associative chains).
            print_expr(kernel, b, prec + 1, out);
            if need_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn prints_linreg_recognizably() {
        let src = kernel_to_dsl(&kernels::linear_regression(8, 8, 1));
        assert!(src.contains("kernel linear_regression {"));
        assert!(
            src.contains("array args[8] of { sx: f64, sxx: f64, sy: f64, syy: f64, sxy: f64 };")
        );
        assert!(src.contains("parallel for j in 0..8 schedule(static, 1) {"));
        assert!(src.contains("args[j].sx += points[j][i].x;"));
        assert!(src.contains("args[j].sxy += points[j][i].x * points[j][i].y;"));
    }

    #[test]
    fn prints_heat_with_offsets() {
        let src = kernel_to_dsl(&kernels::heat_diffusion(18, 18, 2));
        assert!(src.contains("for i in 1..17 {"));
        assert!(src.contains("parallel for j in 1..17 schedule(static, 2) {"));
        assert!(src.contains("A[i - 1][j]"));
        assert!(src.contains("A[i][j + 1]"));
    }

    #[test]
    fn padded_struct_prints_pad() {
        let src = kernel_to_dsl(&kernels::linear_regression_padded(8, 8, 1));
        assert!(src.contains("} pad 64;"));
    }

    #[test]
    fn precedence_parens_only_where_needed() {
        let src = kernel_to_dsl(&kernels::heat_diffusion(18, 18, 1));
        // The laplacian sum times 0.1 must parenthesize the sum.
        assert!(src.contains("0.1 * ("));
        let src2 = kernel_to_dsl(&kernels::stencil1d(34, 1));
        assert!(src2.contains("(A[i - 1] + A[i] + A[i + 1]) * "));
    }

    #[test]
    fn sincos_prints_as_call() {
        let src = kernel_to_dsl(&kernels::dft(8, 8, 1));
        assert!(src.contains("sincos(x[n])"));
    }
}
