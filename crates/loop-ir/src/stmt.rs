//! Statements of the innermost loop body: assignment expression trees plus
//! their lowering to abstract machine operations for the processor model.

use crate::array::ArrayId;
use crate::reference::{AccessKind, ArrayRef};
use crate::types::ScalarType;

/// Binary arithmetic operators available in statement expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    /// `sqrt(x)` — appears in distance/normalization kernels.
    Sqrt,
    /// `sin(x)`/`cos(x)` twiddle factors of the DFT kernel; modeled as one
    /// long-latency FP op.
    SinCos,
}

/// Assignment operators. Compound forms read the LHS before writing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
}

impl AssignOp {
    pub fn is_compound(self) -> bool {
        !matches!(self, AssignOp::Assign)
    }

    /// The arithmetic op a compound assignment performs, if any.
    pub fn bin_op(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
        }
    }

    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
        }
    }
}

/// An expression tree on the right-hand side of an assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A floating-point literal.
    Num(f64),
    /// An array (or struct-field) read.
    Ref(ArrayRef),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    pub fn read(r: ArrayRef) -> Expr {
        Expr::Ref(r.with_access(AccessKind::Read))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)]
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// Collect every array read in evaluation order (left to right, depth
    /// first — the order loads issue in).
    pub fn collect_reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Num(_) => {}
            Expr::Ref(r) => out.push(r),
            Expr::Unary(_, e) => e.collect_reads(out),
            Expr::Binary(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
        }
    }

    /// Count arithmetic operators by kind into `ops`.
    fn collect_ops(&self, arith: ScalarType, out: &mut Vec<OpKind>) {
        match self {
            Expr::Num(_) | Expr::Ref(_) => {}
            Expr::Unary(op, e) => {
                e.collect_ops(arith, out);
                out.push(match op {
                    UnOp::Neg => {
                        if arith.is_float() {
                            OpKind::FAdd
                        } else {
                            OpKind::IAdd
                        }
                    }
                    UnOp::Sqrt => OpKind::FSqrt,
                    UnOp::SinCos => OpKind::FTrig,
                });
            }
            Expr::Binary(op, a, b) => {
                a.collect_ops(arith, out);
                b.collect_ops(arith, out);
                out.push(OpKind::from_binop(*op, arith.is_float()));
            }
        }
    }

    /// Visit every array read mutably (for IR transformations).
    pub fn visit_refs_mut(&mut self, f: &mut impl FnMut(&mut ArrayRef)) {
        match self {
            Expr::Num(_) => {}
            Expr::Ref(r) => f(r),
            Expr::Unary(_, e) => e.visit_refs_mut(f),
            Expr::Binary(_, a, b) => {
                a.visit_refs_mut(f);
                b.visit_refs_mut(f);
            }
        }
    }

    /// Depth of the operator tree — a lower bound on the dependence chain
    /// through the expression, used by the processor model's latency term.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Ref(_) => 0,
            Expr::Unary(_, e) => 1 + e.depth(),
            Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

/// Abstract machine operations the processor model schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    FAdd,
    FMul,
    FDiv,
    FSqrt,
    /// sin/cos/other transcendental.
    FTrig,
    IAdd,
    IMul,
    IDiv,
    Load,
    Store,
}

impl OpKind {
    pub fn from_binop(op: BinOp, float: bool) -> OpKind {
        match (op, float) {
            (BinOp::Add | BinOp::Sub, true) => OpKind::FAdd,
            (BinOp::Mul, true) => OpKind::FMul,
            (BinOp::Div, true) => OpKind::FDiv,
            (BinOp::Add | BinOp::Sub, false) => OpKind::IAdd,
            (BinOp::Mul, false) => OpKind::IMul,
            (BinOp::Div, false) => OpKind::IDiv,
        }
    }

    /// True for floating-point operations (routed to FP units).
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpKind::FAdd | OpKind::FMul | OpKind::FDiv | OpKind::FSqrt | OpKind::FTrig
        )
    }

    /// True for memory operations (routed to load/store units).
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }
}

/// One statement of the innermost loop body: `lhs op= rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub lhs: ArrayRef,
    pub op: AssignOp,
    pub rhs: Expr,
}

impl Stmt {
    /// Build `lhs = rhs`.
    pub fn assign(lhs: ArrayRef, rhs: Expr) -> Stmt {
        Stmt {
            lhs: lhs.with_access(AccessKind::Write),
            op: AssignOp::Assign,
            rhs,
        }
    }

    /// Build `lhs += rhs`.
    pub fn add_assign(lhs: ArrayRef, rhs: Expr) -> Stmt {
        Stmt {
            lhs: lhs.with_access(AccessKind::Write),
            op: AssignOp::AddAssign,
            rhs,
        }
    }

    /// All memory references of the statement in program order: RHS reads,
    /// then the LHS read for compound assignments, then the LHS write.
    pub fn references(&self) -> Vec<ArrayRef> {
        let mut reads = Vec::new();
        self.rhs.collect_reads(&mut reads);
        let mut out: Vec<ArrayRef> = reads.into_iter().cloned().collect();
        if self.op.is_compound() {
            out.push(self.lhs.clone().with_access(AccessKind::Read));
        }
        out.push(self.lhs.clone().with_access(AccessKind::Write));
        out
    }

    /// Arithmetic operations of the statement, given the arithmetic scalar
    /// type (which decides FP vs integer pipelines).
    pub fn ops(&self, arith: ScalarType) -> Vec<OpKind> {
        let mut ops = Vec::new();
        self.rhs.collect_ops(arith, &mut ops);
        if let Some(b) = self.op.bin_op() {
            ops.push(OpKind::from_binop(b, arith.is_float()));
        }
        ops
    }

    /// A statement carries a loop-carried dependence (reduction) at loop
    /// level `var` if it compound-assigns a location whose subscripts do not
    /// vary with that loop's index — e.g. `s[j] += ...` inside a loop over
    /// `i` serializes on the add latency.
    pub fn is_reduction_at(&self, var: crate::expr::VarId) -> bool {
        self.op.is_compound() && !self.lhs.uses_var(var)
    }

    /// Arrays the statement touches.
    pub fn arrays(&self) -> Vec<ArrayId> {
        let mut ids: Vec<ArrayId> = self.references().iter().map(|r| r.array).collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::expr::{AffineExpr, VarId};

    fn aref(arr: u32, v: u32, c: i64) -> ArrayRef {
        ArrayRef::read(ArrayId(arr), vec![AffineExpr::linear(VarId(v), 1, c)])
    }

    #[test]
    fn references_in_program_order() {
        // s[0] += a[i] * a[i+1]
        let s = Stmt::add_assign(
            ArrayRef::write(ArrayId(1), vec![AffineExpr::constant(0)]),
            Expr::mul(Expr::read(aref(0, 0, 0)), Expr::read(aref(0, 0, 1))),
        );
        let refs = s.references();
        assert_eq!(refs.len(), 4); // 2 reads + lhs read + lhs write
        assert!(refs[0].access == AccessKind::Read && refs[0].array == ArrayId(0));
        assert!(refs[2].access == AccessKind::Read && refs[2].array == ArrayId(1));
        assert!(refs[3].access.is_write() && refs[3].array == ArrayId(1));
    }

    #[test]
    fn plain_assign_has_no_lhs_read() {
        let s = Stmt::assign(
            ArrayRef::write(ArrayId(1), vec![AffineExpr::var(VarId(0))]),
            Expr::read(aref(0, 0, 0)),
        );
        let refs = s.references();
        assert_eq!(refs.len(), 2);
        assert!(!refs[0].access.is_write());
        assert!(refs[1].access.is_write());
    }

    #[test]
    fn ops_lowering_counts_operators() {
        // x = (a + b) * c / 2.0  => FAdd, FMul, FDiv
        let e = Expr::div(
            Expr::mul(
                Expr::add(Expr::read(aref(0, 0, 0)), Expr::read(aref(0, 0, 1))),
                Expr::read(aref(0, 0, 2)),
            ),
            Expr::num(2.0),
        );
        let s = Stmt::assign(
            ArrayRef::write(ArrayId(1), vec![AffineExpr::constant(0)]),
            e,
        );
        let ops = s.ops(ScalarType::F64);
        assert_eq!(ops, vec![OpKind::FAdd, OpKind::FMul, OpKind::FDiv]);
        let iops = s.ops(ScalarType::I32);
        assert_eq!(iops, vec![OpKind::IAdd, OpKind::IMul, OpKind::IDiv]);
    }

    #[test]
    fn compound_assign_adds_one_op() {
        let s = Stmt::add_assign(
            ArrayRef::write(ArrayId(1), vec![AffineExpr::constant(0)]),
            Expr::read(aref(0, 0, 0)),
        );
        assert_eq!(s.ops(ScalarType::F64), vec![OpKind::FAdd]);
    }

    #[test]
    fn reduction_detection() {
        // s[j] += a[i]: reduction over i (lhs does not use i), not over j.
        let lhs = ArrayRef::write(ArrayId(1), vec![AffineExpr::var(VarId(0))]);
        let s = Stmt::add_assign(lhs, Expr::read(aref(0, 1, 0)));
        assert!(s.is_reduction_at(VarId(1)));
        assert!(!s.is_reduction_at(VarId(0)));
        // Plain assignment is never a reduction.
        let s2 = Stmt::assign(
            ArrayRef::write(ArrayId(1), vec![AffineExpr::constant(0)]),
            Expr::num(1.0),
        );
        assert!(!s2.is_reduction_at(VarId(0)));
    }

    #[test]
    fn expr_depth() {
        let e = Expr::add(Expr::mul(Expr::num(1.0), Expr::num(2.0)), Expr::num(3.0));
        assert_eq!(e.depth(), 2);
        assert_eq!(Expr::num(1.0).depth(), 0);
        assert_eq!(Expr::Unary(UnOp::Sqrt, Box::new(Expr::num(4.0))).depth(), 1);
    }

    #[test]
    fn trig_and_sqrt_lowering() {
        let e = Expr::Unary(
            UnOp::SinCos,
            Box::new(Expr::Unary(UnOp::Sqrt, Box::new(Expr::num(1.0)))),
        );
        let s = Stmt::assign(
            ArrayRef::write(ArrayId(0), vec![AffineExpr::constant(0)]),
            e,
        );
        assert_eq!(s.ops(ScalarType::F64), vec![OpKind::FSqrt, OpKind::FTrig]);
    }
}
