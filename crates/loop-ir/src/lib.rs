//! Loop-nest intermediate representation for compile-time loop cost modeling.
//!
//! This crate is the substrate that replaces the Open64 compiler's WHIRL IR in
//! our reproduction of *"Compile-Time Detection of False Sharing via Loop Cost
//! Modeling"* (Tolubaeva, Yan, Chapman — IPDPS workshops 2012). The paper's
//! false-sharing model only consumes a small amount of structural information
//! about a parallel loop nest:
//!
//! * loop bounds, steps and index variables,
//! * the parallelized loop level and its OpenMP `schedule(static, chunk)`
//!   parameters,
//! * the array references made in the innermost loop body (base array, affine
//!   index expressions, struct-field offsets, read/write kind).
//!
//! [`Kernel`] captures exactly that. Kernels can be constructed three ways:
//!
//! 1. programmatically through [`KernelBuilder`],
//! 2. by parsing the small textual DSL in [`dsl`] (see the grammar in the
//!    module docs),
//! 3. from the built-in library of paper kernels in [`kernels`]
//!    (heat diffusion, DFT, Phoenix linear regression, and several extras).
//!
//! The [`walk`] module enumerates the iteration space the way the paper's
//! model does: each thread owns a sequence of innermost-loop iterations
//! determined by the static round-robin chunk schedule, and a
//! [`walk::LockstepWalker`] advances all threads one innermost iteration at a
//! time — the granularity at which cache-line ownership lists are generated.

pub mod array;
pub mod dsl;
pub mod expr;
pub mod kernel;
pub mod kernels;
pub mod nest;
pub mod pretty;
pub mod reference;
pub mod schedule;
pub mod stmt;
pub mod stream;
pub mod transforms;
pub mod types;
pub mod validate;
pub mod walk;

pub use array::{ArrayDecl, ArrayId, ElemLayout, FieldDef, FieldId};
pub use expr::{AffineExpr, VarId};
pub use kernel::{AccessPlan, Kernel, KernelBuilder, PlannedAccess};
pub use nest::{Loop, LoopNest, Parallel, Schedule};
pub use reference::{AccessKind, ArrayRef, SourceSpan};
pub use stmt::{AssignOp, BinOp, Expr, OpKind, Stmt, UnOp};
pub use stream::{CompiledPlan, StreamCursor};
pub use transforms::{
    interchange, tile, unroll_innermost, with_chunk, with_parallel_level, TransformError,
};
pub use types::ScalarType;
pub use validate::{validate, validate_bounds, ValidateError};
