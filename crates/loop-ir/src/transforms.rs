//! Loop-nest transformations: the LNO toolbox the cost models exist to
//! drive (paper §II-B: "loop interchange, tiling, and unrolling ... the
//! compiler uses analytical models to estimate the costs of executing the
//! loops in its original version and in the transformed version").
//!
//! The IR keeps the invariant that `VarId(d)` is the variable of the loop
//! at depth `d`, so structural transformations renumber variables and
//! rewrite every affine expression accordingly.

use crate::expr::{AffineExpr, VarId};
use crate::kernel::Kernel;
use crate::nest::Schedule;
use crate::validate::{validate, ValidateError};
use std::fmt;

/// Why a transformation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// A loop level index was out of range.
    BadLevel { level: usize, depth: usize },
    /// The transformed nest is structurally invalid (e.g. a bound would
    /// reference an inner loop's variable after the swap).
    Invalid(ValidateError),
    /// The body carries a loop dependence that the transformation would
    /// reorder unsafely.
    CarriedDependence { detail: String },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::BadLevel { level, depth } => {
                write!(f, "loop level {level} out of range for depth-{depth} nest")
            }
            TransformError::Invalid(e) => write!(f, "transformed nest invalid: {e}"),
            TransformError::CarriedDependence { detail } => {
                write!(
                    f,
                    "interchange would reorder a carried dependence: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for TransformError {}

fn remap_expr(e: &AffineExpr, perm: &[u32]) -> AffineExpr {
    AffineExpr::from_terms(
        e.terms()
            .iter()
            .map(|&(v, c)| (VarId(perm[v.index()]), c))
            .collect(),
        e.constant_part(),
    )
}

/// Rewrite every variable occurrence in `kernel` through `perm`
/// (`old id -> perm[old id]`), including loop headers, subscripts, and the
/// variable-name table.
fn remap_kernel(kernel: &mut Kernel, perm: &[u32]) {
    for l in &mut kernel.nest.loops {
        l.var = VarId(perm[l.var.index()]);
        l.lower = remap_expr(&l.lower, perm);
        l.upper = remap_expr(&l.upper, perm);
    }
    kernel.map_refs(|r| {
        for idx in &mut r.indices {
            *idx = remap_expr(idx, perm);
        }
    });
    let mut names = vec![String::new(); kernel.vars.len()];
    for (old, name) in kernel.vars.iter().enumerate() {
        names[perm[old] as usize] = name.clone();
    }
    kernel.vars = names;
}

/// Check the (sufficient, conservative) dependence condition for reordering
/// the iteration order: every statement either writes a location that moves
/// with *every* loop (no two iterations touch the same element) or is a
/// commutative reduction (`+=`, `*=` on FP/int data), whose partial order
/// does not matter.
fn reorder_safe(kernel: &Kernel) -> Result<(), TransformError> {
    for (si, stmt) in kernel.nest.body.iter().enumerate() {
        if stmt.op.is_compound() {
            continue; // commutative reduction: any order
        }
        // Plain assignment: if some loop variable does not appear in the
        // LHS subscripts, two iterations of that loop write the same
        // element and the last writer must be preserved.
        for l in &kernel.nest.loops {
            if !stmt.lhs.uses_var(l.var) {
                return Err(TransformError::CarriedDependence {
                    detail: format!(
                        "statement {si} overwrites '{}' across iterations of '{}'",
                        kernel.array(stmt.lhs.array).name,
                        kernel.var_name(l.var)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Interchange the loops at levels `a` and `b` (the parallel annotation
/// follows its loop). Returns the transformed kernel.
pub fn interchange(kernel: &Kernel, a: usize, b: usize) -> Result<Kernel, TransformError> {
    let depth = kernel.nest.depth();
    for &l in &[a, b] {
        if l >= depth {
            return Err(TransformError::BadLevel { level: l, depth });
        }
    }
    if a == b {
        return Ok(kernel.clone());
    }
    reorder_safe(kernel)?;

    let mut out = kernel.clone();
    out.nest.loops.swap(a, b);
    if out.nest.parallel.level == a {
        out.nest.parallel.level = b;
    } else if out.nest.parallel.level == b {
        out.nest.parallel.level = a;
    }
    // Renumber variables so VarId(d) is again the depth-d loop's variable.
    let mut perm: Vec<u32> = (0..kernel.vars.len() as u32).collect();
    let va = kernel.nest.loops[a].var.index();
    let vb = kernel.nest.loops[b].var.index();
    perm.swap(va, vb);
    remap_kernel(&mut out, &perm);
    out.name = format!("{}_interchanged", kernel.name);
    validate(&out).map_err(TransformError::Invalid)?;
    Ok(out)
}

/// Tile the loop at `level` by `factor`, producing a tile loop and an
/// intra-tile loop (classic LNO tiling, §II-B). To keep bounds affine the
/// trip count must be a multiple of `factor` and the loop's bounds must be
/// compile-time constants with step 1. The parallel annotation follows the
/// original loop's role: tiling the parallel loop makes the *tile* loop
/// parallel (each thread owns whole tiles — the layout equivalent of a
/// bigger chunk).
pub fn tile(kernel: &Kernel, level: usize, factor: u64) -> Result<Kernel, TransformError> {
    let depth = kernel.nest.depth();
    if level >= depth {
        return Err(TransformError::BadLevel { level, depth });
    }
    let factor = factor.max(1);
    let l = &kernel.nest.loops[level];
    let (Some(lo), Some(hi)) = (l.lower.as_const(), l.upper.as_const()) else {
        return Err(TransformError::Invalid(
            ValidateError::NonConstParallelBounds,
        ));
    };
    let trip = (hi - lo).max(0) as u64;
    if l.step != 1 || !trip.is_multiple_of(factor) {
        return Err(TransformError::CarriedDependence {
            detail: format!("tiling needs step 1 and trip {trip} divisible by factor {factor}"),
        });
    }
    if factor == 1 || factor >= trip {
        return Ok(kernel.clone());
    }

    let mut out = kernel.clone();
    let old_var = l.var;
    // New variable layout: a tile variable `<v>_t` inserted at `level`, the
    // original variable becomes the intra-tile index at `level + 1` with
    // value `factor*<v>_t + <v>_i + lo`. We keep the original VarId for the
    // intra-tile offset and append a fresh VarId for the tile index, then
    // renumber so VarId order matches depth order again.
    let tile_raw = VarId(kernel.vars.len() as u32);
    out.vars.push(format!("{}_t", kernel.var_name(old_var)));

    // Rewrite subscripts: old_var -> factor*tile + old_var(+lo folded).
    out.map_refs(|r| {
        for idx in &mut r.indices {
            let c = idx.coeff(old_var);
            if c != 0 {
                *idx = idx.substitute(old_var, 0)
                    + AffineExpr::linear(old_var, c, 0)
                    + AffineExpr::linear(tile_raw, c * factor as i64, c * lo);
            }
        }
    });
    // Same rewrite inside any inner loop bounds that used old_var.
    for lp in &mut out.nest.loops {
        for bound in [&mut lp.lower, &mut lp.upper] {
            let c = bound.coeff(old_var);
            if c != 0 {
                *bound = bound.substitute(old_var, 0)
                    + AffineExpr::linear(old_var, c, 0)
                    + AffineExpr::linear(tile_raw, c * factor as i64, c * lo);
            }
        }
    }

    // Replace the loop with the tile/intra pair.
    let tile_loop = crate::nest::Loop {
        var: tile_raw,
        lower: AffineExpr::constant(0),
        upper: AffineExpr::constant((trip / factor) as i64),
        step: 1,
    };
    let intra_loop = crate::nest::Loop {
        var: old_var,
        lower: AffineExpr::constant(0),
        upper: AffineExpr::constant(factor as i64),
        step: 1,
    };
    out.nest
        .loops
        .splice(level..=level, [tile_loop, intra_loop]);
    if out.nest.parallel.level > level {
        out.nest.parallel.level += 1;
    }
    // (If the tiled loop itself was parallel, the tile loop at `level`
    // inherits the annotation — already correct.)

    // Renumber VarIds to depth order.
    let mut perm = vec![0u32; out.vars.len()];
    for (d, lp) in out.nest.loops.iter().enumerate() {
        perm[lp.var.index()] = d as u32;
    }
    remap_kernel(&mut out, &perm);
    out.name = format!("{}_tiled{}", kernel.name, factor);
    validate(&out).map_err(TransformError::Invalid)?;
    Ok(out)
}

/// Unroll the innermost loop by `factor`: the body is replicated with the
/// innermost index offset by `0..factor` and the loop step scaled — the
/// transformation Open64's processor model exists to parameterize. The
/// innermost loop must be sequential (not the parallel loop), step 1, with
/// a constant-divisible trip count.
pub fn unroll_innermost(kernel: &Kernel, factor: u64) -> Result<Kernel, TransformError> {
    let depth = kernel.nest.depth();
    let level = depth - 1;
    if kernel.nest.parallel.level == level {
        return Err(TransformError::CarriedDependence {
            detail: "cannot unroll the parallel loop (iteration ownership would change)"
                .to_string(),
        });
    }
    let factor = factor.max(1);
    if factor == 1 {
        return Ok(kernel.clone());
    }
    let l = kernel.nest.innermost();
    let var = l.var;
    if l.step != 1 {
        return Err(TransformError::CarriedDependence {
            detail: "unrolling needs step 1".to_string(),
        });
    }
    if let (Some(lo), Some(hi)) = (l.lower.as_const(), l.upper.as_const()) {
        let trip = (hi - lo).max(0) as u64;
        if !trip.is_multiple_of(factor) {
            return Err(TransformError::CarriedDependence {
                detail: format!("trip {trip} not divisible by unroll factor {factor}"),
            });
        }
    } else {
        return Err(TransformError::Invalid(
            ValidateError::NonConstParallelBounds,
        ));
    }

    let mut out = kernel.clone();
    out.nest.loops[level].step = factor as i64;
    let body = kernel.nest.body.clone();
    let mut new_body = Vec::with_capacity(body.len() * factor as usize);
    for k in 0..factor as i64 {
        for stmt in &body {
            let mut s = stmt.clone();
            let shift = |idx: &mut AffineExpr| {
                let c = idx.coeff(var);
                if c != 0 {
                    *idx = idx.clone() + AffineExpr::constant(c * k);
                }
            };
            for idx in &mut s.lhs.indices {
                shift(idx);
            }
            s.rhs.visit_refs_mut(&mut |r| {
                for idx in &mut r.indices {
                    shift(idx);
                }
            });
            new_body.push(s);
        }
    }
    out.nest.body = new_body;
    out.name = format!("{}_unroll{}", kernel.name, factor);
    validate(&out).map_err(TransformError::Invalid)?;
    Ok(out)
}

/// Replace the static chunk size.
pub fn with_chunk(kernel: &Kernel, chunk: u64) -> Kernel {
    let mut out = kernel.clone();
    out.nest.parallel.schedule = Schedule::Static {
        chunk: chunk.max(1),
    };
    out
}

/// Move the parallel annotation to a different loop level (e.g. to compare
/// inner- vs outer-loop parallelization, the axis the paper's Table III
/// turns on). The target loop's bounds must be compile-time constants.
pub fn with_parallel_level(kernel: &Kernel, level: usize) -> Result<Kernel, TransformError> {
    let depth = kernel.nest.depth();
    if level >= depth {
        return Err(TransformError::BadLevel { level, depth });
    }
    let mut out = kernel.clone();
    out.nest.parallel.level = level;
    validate(&out).map_err(TransformError::Invalid)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::walk::ThreadWalker;

    /// The transformed kernel must execute the same set of (array, element)
    /// accesses as the original (order aside).
    fn same_access_set(a: &Kernel, b: &Kernel) {
        let collect = |k: &Kernel| {
            let plan = k.access_plan();
            let bases = k.array_bases(64);
            let mut v: Vec<(u64, bool)> = Vec::new();
            let mut buf = vec![0i64; plan.max_rank.max(1)];
            let mut w = ThreadWalker::sequential(k);
            while let Some(env) = w.next_env() {
                for acc in &plan.accesses {
                    v.push((acc.address(env, &bases, &mut buf), acc.is_write));
                }
            }
            v.sort_unstable();
            v
        };
        assert_eq!(collect(a), collect(b));
    }

    #[test]
    fn interchange_matvec_preserves_accesses() {
        let k = kernels::matvec(8, 12, 1);
        let t = interchange(&k, 0, 1).unwrap();
        assert_eq!(t.nest.parallel.level, 1, "parallel annotation follows");
        assert_eq!(t.vars, vec!["j", "i"]);
        same_access_set(&k, &t);
        // Round trip restores the original structure (modulo the name).
        let back = interchange(&t, 0, 1).unwrap();
        assert_eq!(back.nest.loops, k.nest.loops);
        assert_eq!(back.nest.body, k.nest.body);
    }

    #[test]
    fn interchange_matmul_middle_and_inner() {
        let k = kernels::matmul(4, 6, 5, 1);
        let t = interchange(&k, 1, 2).unwrap();
        assert_eq!(t.nest.parallel.level, 2, "parallel j moves innermost");
        same_access_set(&k, &t);
        crate::validate::validate_bounds(&t).unwrap();
    }

    #[test]
    fn interchange_rejects_last_writer_conflicts() {
        // B[i][j] = ... assigns each element once: safe.
        let heat = kernels::heat_diffusion(10, 10, 1);
        assert!(interchange(&heat, 0, 1).is_ok());
        // A kernel whose plain assignment does NOT use the inner var would
        // overwrite: y[i] = x[j] (last j wins).
        let mut b = crate::kernel::KernelBuilder::new("lastwriter");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let x = b.array("x", &[8], crate::types::ScalarType::F64);
        let y = b.array("y", &[8], crate::types::ScalarType::F64);
        b.parallel_for(i, 0, 8, Schedule::Static { chunk: 1 });
        b.seq_for(j, 0, 8);
        b.stmt(crate::stmt::Stmt::assign(
            crate::reference::ArrayRef::write(y, vec![AffineExpr::var(i)]),
            crate::stmt::Expr::read(crate::reference::ArrayRef::read(
                x,
                vec![AffineExpr::var(j)],
            )),
        ));
        let k = b.build();
        assert!(matches!(
            interchange(&k, 0, 1),
            Err(TransformError::CarriedDependence { .. })
        ));
    }

    #[test]
    fn interchange_rejects_bound_dependences() {
        // Triangular nest: inner bound uses the outer var; swapping is
        // structurally invalid.
        let mut b = crate::kernel::KernelBuilder::new("tri");
        let i = b.loop_var("i");
        let j = b.loop_var("j");
        let a = b.array("A", &[8, 8], crate::types::ScalarType::F64);
        b.parallel_for(i, 0, 8, Schedule::Static { chunk: 1 });
        b.seq_for(j, 0, AffineExpr::var(i));
        b.stmt(crate::stmt::Stmt::assign(
            crate::reference::ArrayRef::write(a, vec![AffineExpr::var(i), AffineExpr::var(j)]),
            crate::stmt::Expr::num(1.0),
        ));
        let k = b.build();
        assert!(matches!(
            interchange(&k, 0, 1),
            Err(TransformError::Invalid(_))
        ));
    }

    #[test]
    fn bad_levels_are_reported() {
        let k = kernels::stencil1d(34, 1);
        assert!(matches!(
            interchange(&k, 0, 3),
            Err(TransformError::BadLevel { level: 3, depth: 1 })
        ));
        assert!(with_parallel_level(&k, 2).is_err());
    }

    #[test]
    fn with_chunk_and_parallel_level() {
        let k = kernels::heat_diffusion(10, 34, 1);
        let c = with_chunk(&k, 16);
        assert_eq!(c.nest.parallel.schedule.chunk(), 16);
        let p = with_parallel_level(&k, 0).unwrap();
        assert_eq!(p.nest.parallel.level, 0);
        // Level 0's bounds are constants, so the walker accepts it.
        crate::validate::validate(&p).unwrap();
    }

    #[test]
    fn tiling_preserves_the_access_set() {
        let k = kernels::matvec(8, 16, 1);
        let t = tile(&k, 1, 4).unwrap(); // tile the inner (j) loop
        assert_eq!(t.nest.depth(), 3);
        assert_eq!(t.nest.parallel.level, 0, "parallel loop unmoved");
        assert_eq!(t.vars, vec!["i", "j_t", "j"]);
        same_access_set(&k, &t);
        crate::validate::validate_bounds(&t).unwrap();
    }

    #[test]
    fn tiling_the_parallel_loop_parallelizes_tiles() {
        let k = kernels::stencil1d(66, 1); // parallel i in 1..65 (trip 64)
        let t = tile(&k, 0, 8).unwrap();
        assert_eq!(t.nest.depth(), 2);
        assert_eq!(t.nest.parallel.level, 0, "tile loop is parallel");
        assert_eq!(t.nest.parallel_trip_count(), Some(8));
        same_access_set(&k, &t);
    }

    #[test]
    fn tiling_rejects_indivisible_trips() {
        let k = kernels::stencil1d(66, 1); // trip 64
        assert!(tile(&k, 0, 7).is_err());
        // factor 1 and factor >= trip are no-ops.
        assert_eq!(tile(&k, 0, 1).unwrap().nest.depth(), 1);
        assert_eq!(tile(&k, 0, 64).unwrap().nest.depth(), 1);
    }

    #[test]
    fn unrolling_replicates_the_body() {
        let k = kernels::matvec(8, 16, 1);
        let u = unroll_innermost(&k, 4).unwrap();
        assert_eq!(u.nest.body.len(), 4 * k.nest.body.len());
        assert_eq!(u.nest.innermost().step, 4);
        same_access_set(&k, &u);
        crate::validate::validate_bounds(&u).unwrap();
        // The replicated statements read A[i][j+k].
        let mut reads = Vec::new();
        u.nest.body[3].rhs.collect_reads(&mut reads);
        assert_eq!(reads[0].indices[1].constant_part(), 3);
    }

    #[test]
    fn unrolling_rejects_parallel_innermost_and_bad_factors() {
        let heat = kernels::heat_diffusion(10, 34, 1);
        assert!(unroll_innermost(&heat, 2).is_err(), "innermost is parallel");
        let k = kernels::matvec(8, 15, 1); // inner trip 15
        assert!(unroll_innermost(&k, 4).is_err(), "15 % 4 != 0");
        assert!(unroll_innermost(&k, 1).is_ok());
    }

    #[test]
    fn interchanged_kernel_roundtrips_through_dsl() {
        let k = kernels::matvec(8, 12, 2);
        let t = interchange(&k, 0, 1).unwrap();
        let src = crate::pretty::kernel_to_dsl(&t);
        let back = crate::dsl::parse_kernel(&src).unwrap();
        assert_eq!(t, back);
    }
}
