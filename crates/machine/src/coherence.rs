//! Coherence cost parameters for a write-invalidate (MESI-style) protocol.

/// Cycle penalties of coherence events. These are what turn the FS model's
/// *count* of false-sharing cases into the `False_Sharing_c` term of Eq. 1,
/// and what the MESI simulator charges when it replays a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceParams {
    /// Extra cycles for a miss that is served by another core's cache
    /// (dirty line forwarded cache-to-cache) instead of memory — the cost a
    /// reader pays after a false-sharing invalidation.
    pub cache_to_cache: u32,
    /// Cycles for the writer to invalidate remote copies before its store
    /// can complete (upgrade / read-for-ownership round trip).
    pub invalidation: u32,
    /// Extra cycles when the forwarding core is on a different socket.
    pub cross_socket_extra: u32,
    /// Fraction of a store miss's latency that actually stalls the core.
    /// Stores retire into the store buffer and the read-for-ownership
    /// completes in the background, so write-only false sharing costs far
    /// less than the raw round trip — the reason the paper's write-only
    /// heat kernel loses ~7% while the RMW-heavy DFT loses ~32%. Loads
    /// stall in full.
    pub store_miss_factor: f64,
}

impl CoherenceParams {
    /// Costs representative of a multi-socket 2010s system.
    pub fn default_smp() -> Self {
        CoherenceParams {
            cache_to_cache: 60,
            invalidation: 40,
            cross_socket_extra: 100,
            store_miss_factor: 0.15,
        }
    }

    /// Legacy single-number cost of one false-sharing case (read side).
    pub fn fs_case_cost(&self) -> f64 {
        self.fs_read_event_cost()
    }

    /// Stall cycles of one *load* that hits a remotely-modified line: the
    /// victim waits for the dirty line to be forwarded (the invalidation
    /// round trip is the writer's cost, paid on its own store path).
    pub fn fs_read_event_cost(&self) -> f64 {
        self.cache_to_cache as f64
    }

    /// Stall cycles of one *store* to a remotely-modified or shared line:
    /// the RFO round trip discounted by the store buffer.
    pub fn fs_write_event_cost(&self) -> f64 {
        (self.cache_to_cache + self.invalidation) as f64 * self.store_miss_factor
    }

    /// Apply the store-buffer discount to a latency if the access is a
    /// write.
    pub fn stall_cycles(&self, latency: u32, is_write: bool) -> u64 {
        if is_write {
            (latency as f64 * self.store_miss_factor).round() as u64
        } else {
            latency as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_events_cost_more_than_write_events() {
        let c = CoherenceParams::default_smp();
        assert!(c.fs_read_event_cost() > 2.0 * c.fs_write_event_cost());
        assert!(c.fs_write_event_cost() > 0.0);
        assert_eq!(c.fs_case_cost(), c.fs_read_event_cost());
    }

    #[test]
    fn stall_cycles_discounts_stores_only() {
        let c = CoherenceParams::default_smp();
        assert_eq!(c.stall_cycles(100, false), 100);
        assert_eq!(c.stall_cycles(100, true), 15);
    }
}
