//! Named machine configurations.

use crate::cache::{Associativity, CacheHierarchy, CacheLevel};
use crate::coherence::CoherenceParams;
use crate::overheads::RuntimeOverheads;
use crate::processor::ProcessorParams;
use crate::tlb::TlbParams;
use crate::MachineConfig;

/// The paper's evaluation platform (§IV-B): four 2.2 GHz 12-core processors
/// (48 cores total), per-core 64 KB L1 and 512 KB L2, 10240 KB L3 shared by
/// each 12-core socket, 64-byte lines at every level.
pub fn paper48() -> MachineConfig {
    MachineConfig {
        name: "paper48 (4 x 12-core, 2.2 GHz)".into(),
        num_cores: 48,
        freq_ghz: 2.2,
        caches: CacheHierarchy {
            line_size: 64,
            levels: vec![
                CacheLevel {
                    name: "L1d".into(),
                    size_bytes: 64 * 1024,
                    associativity: Associativity::SetAssoc { ways: 2 },
                    hit_latency: 3,
                    shared: false,
                },
                CacheLevel {
                    name: "L2".into(),
                    size_bytes: 512 * 1024,
                    associativity: Associativity::SetAssoc { ways: 16 },
                    hit_latency: 12,
                    shared: false,
                },
                CacheLevel {
                    name: "L3".into(),
                    size_bytes: 10240 * 1024,
                    associativity: Associativity::SetAssoc { ways: 48 },
                    hit_latency: 40,
                    shared: true,
                },
            ],
            shared_cluster_size: 12,
            memory_latency: 230,
        },
        // ~50 GB/s aggregate at 2.2 GHz.
        mem_bandwidth_bytes_per_cycle: 24.0,
        processor: ProcessorParams::default_x86(),
        coherence: CoherenceParams::default_smp(),
        tlb: TlbParams::default_x86(),
        overheads: RuntimeOverheads::default_openmp(),
    }
}

/// A generic single-socket 8-core desktop machine.
pub fn generic_x86() -> MachineConfig {
    MachineConfig {
        name: "generic x86 (8-core, 3.0 GHz)".into(),
        num_cores: 8,
        freq_ghz: 3.0,
        caches: CacheHierarchy {
            line_size: 64,
            levels: vec![
                CacheLevel {
                    name: "L1d".into(),
                    size_bytes: 32 * 1024,
                    associativity: Associativity::SetAssoc { ways: 8 },
                    hit_latency: 4,
                    shared: false,
                },
                CacheLevel {
                    name: "L2".into(),
                    size_bytes: 256 * 1024,
                    associativity: Associativity::SetAssoc { ways: 8 },
                    hit_latency: 12,
                    shared: false,
                },
                CacheLevel {
                    name: "L3".into(),
                    size_bytes: 16 * 1024 * 1024,
                    associativity: Associativity::SetAssoc { ways: 16 },
                    hit_latency: 38,
                    shared: true,
                },
            ],
            shared_cluster_size: 8,
            memory_latency: 200,
        },
        // ~48 GB/s at 3.0 GHz.
        mem_bandwidth_bytes_per_cycle: 16.0,
        processor: ProcessorParams::default_x86(),
        coherence: CoherenceParams {
            cache_to_cache: 45,
            invalidation: 30,
            cross_socket_extra: 0,
            store_miss_factor: 0.15,
        },
        tlb: TlbParams::default_x86(),
        overheads: RuntimeOverheads::default_openmp(),
    }
}

/// A deliberately tiny machine for unit tests: 4 cores, 4-line L1, 16-line
/// L2, no shared level, cheap penalties — small enough that tests can
/// reason about every eviction by hand.
pub fn tiny_test() -> MachineConfig {
    MachineConfig {
        name: "tiny test machine".into(),
        num_cores: 4,
        freq_ghz: 1.0,
        caches: CacheHierarchy {
            line_size: 64,
            levels: vec![
                CacheLevel {
                    name: "L1d".into(),
                    size_bytes: 4 * 64,
                    associativity: Associativity::Full,
                    hit_latency: 1,
                    shared: false,
                },
                CacheLevel {
                    name: "L2".into(),
                    size_bytes: 16 * 64,
                    associativity: Associativity::Full,
                    hit_latency: 4,
                    shared: false,
                },
            ],
            shared_cluster_size: 4,
            memory_latency: 50,
        },
        mem_bandwidth_bytes_per_cycle: 1e9, // effectively unbounded
        processor: ProcessorParams::default_x86(),
        coherence: CoherenceParams {
            cache_to_cache: 10,
            invalidation: 5,
            cross_socket_extra: 0,
            store_miss_factor: 1.0,
        },
        tlb: TlbParams {
            entries: 8,
            page_size: 4096,
            miss_penalty: 10,
        },
        overheads: RuntimeOverheads {
            parallel_startup: 100,
            per_chunk_schedule: 2,
            barrier_per_thread: 10,
            loop_overhead_per_iter: 1.0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper48_matches_section_iv_b() {
        let m = paper48();
        assert_eq!(m.num_cores, 48);
        assert_eq!(m.freq_ghz, 2.2);
        assert_eq!(m.line_size(), 64);
        assert_eq!(m.caches.levels[0].size_bytes, 64 * 1024);
        assert_eq!(m.caches.levels[1].size_bytes, 512 * 1024);
        assert_eq!(m.caches.levels[2].size_bytes, 10240 * 1024);
        assert!(m.caches.levels[2].shared);
        assert_eq!(m.caches.shared_cluster_size, 12);
        assert_eq!(m.caches.private_levels().count(), 2);
    }

    #[test]
    fn tiny_test_is_tiny() {
        let m = tiny_test();
        assert_eq!(m.caches.l1().num_lines(64), 4);
        assert_eq!(m.caches.levels[1].num_lines(64), 16);
    }

    #[test]
    fn presets_have_distinct_names() {
        let names = [paper48().name, generic_x86().name, tiny_test().name];
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}
