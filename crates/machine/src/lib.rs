//! Machine descriptions consumed by both the compile-time cost models and
//! the execution-driven cache simulator.
//!
//! A [`MachineConfig`] bundles everything the paper's Eq. 1 needs:
//!
//! * [`cache::CacheHierarchy`] — per-core private levels plus a shared last
//!   level, line size, associativity and hit latencies (the Cache model and
//!   the stack-distance depth of the FS model),
//! * [`processor::ProcessorParams`] — issue width, functional units and
//!   operation latencies (the Processor model),
//! * [`coherence::CoherenceParams`] — the cycle penalties of
//!   write-invalidate coherence (converts FS *cases* into FS *cycles*),
//! * [`tlb::TlbParams`] — TLB geometry (the TLB model),
//! * [`overheads::RuntimeOverheads`] — parallel startup/scheduling/barrier
//!   and per-iteration loop bookkeeping costs (the Parallel and Loop
//!   overhead models).
//!
//! [`presets`] provides ready-made configurations, including
//! [`presets::paper48`], which mirrors the evaluation platform of the paper:
//! four 2.2 GHz 12-core processors (48 cores), 64 KB L1 and 512 KB L2 per
//! core, 10 MB L3 shared per 12-core socket, 64-byte lines everywhere.

pub mod cache;
pub mod coherence;
pub mod overheads;
pub mod presets;
pub mod processor;
pub mod tlb;

pub use cache::{Associativity, CacheHierarchy, CacheLevel};
pub use coherence::CoherenceParams;
pub use overheads::RuntimeOverheads;
pub use processor::{OpLatencies, ProcessorParams};
pub use tlb::TlbParams;

/// A complete machine description.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    pub name: String,
    /// Total cores (= maximum team size).
    pub num_cores: u32,
    /// Clock frequency in GHz, used only to convert cycles to seconds in
    /// reports.
    pub freq_ghz: f64,
    pub caches: CacheHierarchy,
    /// Sustained memory bandwidth in bytes per core-cycle, machine-wide
    /// (used by the bus-interference extension).
    pub mem_bandwidth_bytes_per_cycle: f64,
    pub processor: ProcessorParams,
    pub coherence: CoherenceParams,
    pub tlb: TlbParams,
    pub overheads: RuntimeOverheads,
}

impl MachineConfig {
    /// Cache line size in bytes (uniform across levels, as on the paper's
    /// machine).
    pub fn line_size(&self) -> u64 {
        self.caches.line_size
    }

    /// Convert a cycle count to seconds at this machine's frequency.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let m = presets::paper48();
        let s = m.cycles_to_seconds(2.2e9);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
