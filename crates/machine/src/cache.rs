//! Cache geometry.

/// Placement policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Associativity {
    /// Fully associative — the approximation the paper's stack-distance
    /// analysis uses ("modeling the fully associative cache is mostly valid
    /// especially for caches with a high level of associativity", §III-C).
    Full,
    /// `ways`-way set associative.
    SetAssoc { ways: u32 },
}

/// One cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    pub name: String,
    pub size_bytes: u64,
    pub associativity: Associativity,
    /// Load-to-use latency of a hit in this level, in cycles.
    pub hit_latency: u32,
    /// True if the level is shared by a cluster of cores rather than
    /// private to one core.
    pub shared: bool,
}

impl CacheLevel {
    /// Number of lines the level holds, given the hierarchy line size.
    pub fn num_lines(&self, line_size: u64) -> u64 {
        self.size_bytes / line_size
    }

    /// Number of sets (1 when fully associative).
    pub fn num_sets(&self, line_size: u64) -> u64 {
        match self.associativity {
            Associativity::Full => 1,
            Associativity::SetAssoc { ways } => self.num_lines(line_size) / ways as u64,
        }
    }

    /// Lines per set — the stack depth used by stack-distance analysis.
    pub fn ways(&self, line_size: u64) -> u64 {
        match self.associativity {
            Associativity::Full => self.num_lines(line_size),
            Associativity::SetAssoc { ways } => ways as u64,
        }
    }
}

/// A multi-level hierarchy: `levels[0]` is closest to the core; the last
/// level may be shared per cluster of `shared_cluster_size` cores.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheHierarchy {
    /// Uniform line size in bytes.
    pub line_size: u64,
    /// Levels from L1 outward.
    pub levels: Vec<CacheLevel>,
    /// How many cores share each instance of a `shared` level.
    pub shared_cluster_size: u32,
    /// Latency of a miss in the last level (main memory), in cycles.
    pub memory_latency: u32,
}

impl CacheHierarchy {
    /// The first (innermost) level.
    pub fn l1(&self) -> &CacheLevel {
        &self.levels[0]
    }

    /// Private levels only (those simulated per-thread by the FS model).
    pub fn private_levels(&self) -> impl Iterator<Item = &CacheLevel> {
        self.levels.iter().filter(|l| !l.shared)
    }

    /// Line number of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_size
    }

    /// Byte offset within the line.
    #[inline]
    pub fn line_offset(&self, addr: u64) -> u64 {
        addr % self.line_size
    }

    /// Number of distinct lines an access of `size` bytes at `addr` touches
    /// (straddling accesses touch two).
    #[inline]
    pub fn lines_touched(&self, addr: u64, size: u64) -> u64 {
        if size == 0 {
            return 0;
        }
        self.line_of(addr + size - 1) - self.line_of(addr) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(size: u64, assoc: Associativity) -> CacheLevel {
        CacheLevel {
            name: "L".into(),
            size_bytes: size,
            associativity: assoc,
            hit_latency: 1,
            shared: false,
        }
    }

    #[test]
    fn line_math() {
        let h = CacheHierarchy {
            line_size: 64,
            levels: vec![level(64 * 1024, Associativity::Full)],
            shared_cluster_size: 1,
            memory_latency: 200,
        };
        assert_eq!(h.line_of(0), 0);
        assert_eq!(h.line_of(63), 0);
        assert_eq!(h.line_of(64), 1);
        assert_eq!(h.line_offset(100), 36);
        assert_eq!(h.lines_touched(60, 8), 2, "straddles a boundary");
        assert_eq!(h.lines_touched(56, 8), 1);
        assert_eq!(h.lines_touched(0, 0), 0);
    }

    #[test]
    fn set_geometry() {
        let l = level(64 * 1024, Associativity::SetAssoc { ways: 8 });
        assert_eq!(l.num_lines(64), 1024);
        assert_eq!(l.num_sets(64), 128);
        assert_eq!(l.ways(64), 8);
        let f = level(64 * 1024, Associativity::Full);
        assert_eq!(f.num_sets(64), 1);
        assert_eq!(f.ways(64), 1024);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// lines_touched is consistent with per-byte line membership.
            #[test]
            fn lines_touched_matches_bytewise(addr in 0u64..100_000, size in 1u64..300) {
                let h = CacheHierarchy {
                    line_size: 64,
                    levels: vec![CacheLevel {
                        name: "L1".into(),
                        size_bytes: 4096,
                        associativity: Associativity::Full,
                        hit_latency: 1,
                        shared: false,
                    }],
                    shared_cluster_size: 1,
                    memory_latency: 100,
                };
                let mut distinct = std::collections::HashSet::new();
                for b in addr..addr + size {
                    distinct.insert(h.line_of(b));
                }
                prop_assert_eq!(h.lines_touched(addr, size), distinct.len() as u64);
            }

            /// Set geometry conserves capacity: sets x ways == lines.
            #[test]
            fn set_geometry_conserves_lines(size_kb in 1u64..512, ways in 1u32..32) {
                let bytes = size_kb * 1024;
                let lines = bytes / 64;
                prop_assume!(lines % ways as u64 == 0);
                let l = CacheLevel {
                    name: "L".into(),
                    size_bytes: bytes,
                    associativity: Associativity::SetAssoc { ways },
                    hit_latency: 1,
                    shared: false,
                };
                prop_assert_eq!(l.num_sets(64) * l.ways(64), l.num_lines(64));
            }
        }
    }

    #[test]
    fn private_levels_excludes_shared() {
        let mut l3 = level(10 * 1024 * 1024, Associativity::SetAssoc { ways: 16 });
        l3.shared = true;
        let h = CacheHierarchy {
            line_size: 64,
            levels: vec![level(64 * 1024, Associativity::Full), l3],
            shared_cluster_size: 12,
            memory_latency: 200,
        };
        assert_eq!(h.private_levels().count(), 1);
        assert_eq!(h.l1().size_bytes, 64 * 1024);
    }
}
