//! Runtime overheads for the Parallel model and Loop-overhead model.

/// Cycle costs of the parallel runtime and of loop bookkeeping.
///
/// The paper's Parallel model charges "parallel startup, scheduling
/// iterations, synchronizations and worksharing between threads" (§II-B3);
/// the Loop-overhead model charges index increments and bound checks per
/// iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeOverheads {
    /// One-time cost of entering a parallel region (fork + team wakeup).
    pub parallel_startup: u32,
    /// Cost per chunk handed to a thread (static scheduling arithmetic +
    /// dispatch).
    pub per_chunk_schedule: u32,
    /// Cost of the implicit barrier at the end of a worksharing loop, per
    /// participating thread.
    pub barrier_per_thread: u32,
    /// Cycles per loop iteration per nesting level for the index increment
    /// and bound check.
    pub loop_overhead_per_iter: f64,
}

impl RuntimeOverheads {
    /// Overheads typical of an OpenMP runtime on a 2010s system.
    pub fn default_openmp() -> Self {
        RuntimeOverheads {
            parallel_startup: 8000,
            per_chunk_schedule: 12,
            barrier_per_thread: 400,
            loop_overhead_per_iter: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_of_magnitude() {
        let o = RuntimeOverheads::default_openmp();
        assert!(o.parallel_startup > o.barrier_per_thread);
        assert!(o.barrier_per_thread > o.per_chunk_schedule);
        assert!(o.loop_overhead_per_iter > 0.0);
    }
}
