//! TLB geometry. The Open64 cost model treats the TLB "as another level of
//! cache" with page-sized lines (§II-B2); these parameters feed that model.

/// Data-TLB parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbParams {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes.
    pub page_size: u64,
    /// Cycles to walk the page table on a miss.
    pub miss_penalty: u32,
}

impl TlbParams {
    pub fn default_x86() -> Self {
        TlbParams {
            entries: 64,
            page_size: 4096,
            miss_penalty: 30,
        }
    }

    /// Bytes covered by the whole TLB.
    pub fn reach(&self) -> u64 {
        self.entries as u64 * self.page_size
    }

    /// Page number of an address.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_and_pages() {
        let t = TlbParams::default_x86();
        assert_eq!(t.reach(), 64 * 4096);
        assert_eq!(t.page_of(4095), 0);
        assert_eq!(t.page_of(4096), 1);
    }
}
