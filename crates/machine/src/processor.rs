//! Processor resources and operation latencies for the Open64-style
//! processor model.

/// Latency, in cycles, of each abstract operation class. These are the
//  dependence-chain costs; throughput is governed by the unit counts in
/// [`ProcessorParams`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpLatencies {
    pub fadd: u32,
    pub fmul: u32,
    pub fdiv: u32,
    pub fsqrt: u32,
    /// sin/cos and other transcendentals (libm call or microcoded).
    pub ftrig: u32,
    pub iadd: u32,
    pub imul: u32,
    pub idiv: u32,
    /// L1-hit load-to-use latency.
    pub load: u32,
    pub store: u32,
}

impl OpLatencies {
    /// Latencies typical of a 2010s x86 core (used by all presets).
    pub fn default_x86() -> Self {
        OpLatencies {
            fadd: 4,
            fmul: 4,
            fdiv: 20,
            fsqrt: 25,
            // A sin+cos pair through libm on a 2010s core: ~60 cycles each.
            ftrig: 130,
            iadd: 1,
            imul: 3,
            idiv: 22,
            load: 4,
            store: 1,
        }
    }
}

/// Issue resources of one core: how many operations of each class can start
/// per cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorParams {
    /// Total instructions issued per cycle.
    pub issue_width: u32,
    /// Floating-point units (adds/muls; divides contend for one of these).
    pub fp_units: u32,
    /// Integer ALUs.
    pub int_units: u32,
    /// Load/store ports.
    pub mem_units: u32,
    pub latencies: OpLatencies,
}

impl ProcessorParams {
    /// A 4-wide out-of-order core, 2 FP units, 2 memory ports.
    pub fn default_x86() -> Self {
        ProcessorParams {
            issue_width: 4,
            fp_units: 2,
            int_units: 2,
            mem_units: 2,
            latencies: OpLatencies::default_x86(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = ProcessorParams::default_x86();
        assert!(p.issue_width >= p.fp_units.max(p.mem_units));
        assert!(p.latencies.fdiv > p.latencies.fmul);
        assert!(p.latencies.ftrig > p.latencies.fsqrt);
        assert!(p.latencies.iadd <= p.latencies.imul);
    }
}
