//! Experiment harness shared by the per-table/per-figure binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it; the workload definitions, thread sweeps
//! and row computations live here so the binaries stay declarative.
//!
//! Scaling note (recorded in EXPERIMENTS.md): the paper's kernels are
//! 5000x5000-class problems measured on real hardware; our substitute
//! executes every memory access through the MESI simulator, so the default
//! scales keep the *structure* (trip-count ratios, chunk sizes, thread
//! sweep 2..48) while shrinking totals to simulator-friendly sizes.

use cost_model::{machine_cost, modeled_fs_overhead, AnalysisOptions};
use loop_ir::Kernel;
use machine::MachineConfig;

pub use cache_sim::{simulate_kernel, SimOptions, SimPath, SimPrepared};
pub use loop_ir::kernels;
pub use machine::presets::paper48;

/// The thread counts of every table in the paper.
pub fn paper_thread_counts() -> Vec<u32> {
    vec![2, 4, 8, 16, 24, 32, 40, 48]
}

/// Default experiment scales: (kernel ctor by chunk, fs chunk, nfs chunk).
pub mod scale {
    use loop_ir::{kernels, Kernel};

    /// Heat diffusion: 64 outer rows x 3072-wide parallel inner loop
    /// (paper: 5000x5000), chunk 1 vs 64.
    pub fn heat(chunk: u64, _threads: u32) -> Kernel {
        kernels::heat_diffusion(66, 3074, chunk)
    }
    pub const HEAT_CHUNKS: (u64, u64) = (1, 64);

    /// DFT: 64 input samples scattered into 3072 bins, chunk 1 vs 16.
    pub fn dft(chunk: u64, _threads: u32) -> Kernel {
        kernels::dft(64, 3072, chunk)
    }
    pub const DFT_CHUNKS: (u64, u64) = (1, 16);

    /// Linear regression: 960 series, 9600 total points per series divided
    /// across the team (the paper's `M/num_threads` strong-scaling inner
    /// loop; paper scale: 9600 series x 50M points), outer-parallel, chunk
    /// 1 vs 10.
    pub fn linreg(chunk: u64, threads: u32) -> Kernel {
        kernels::linear_regression_scaled(960, 9600, threads as u64, chunk)
    }
    pub const LINREG_CHUNKS: (u64, u64) = (1, 10);
}

/// "Measured" execution time of a kernel: MESI-simulated memory makespan
/// plus the processor model's compute cycles, converted to seconds on the
/// target machine. This is the reproduction's substitute for the paper's
/// wall-clock columns.
pub fn measured_time_seconds(kernel: &Kernel, machine: &MachineConfig, threads: u32) -> f64 {
    let prepared = SimPrepared::new(kernel, machine.line_size());
    measured_time_seconds_prepared(kernel, machine, threads, &prepared)
}

/// [`measured_time_seconds`] with the trace planning already done. The
/// FS/no-FS halves of every table row differ only in chunk size, which is
/// exactly the schedule-only variation [`SimPrepared`] permits, so one
/// preparation serves the whole pair.
pub fn measured_time_seconds_prepared(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    prepared: &SimPrepared,
) -> f64 {
    measured_time_seconds_prepared_with(kernel, machine, threads, prepared, 1)
}

/// [`measured_time_seconds_prepared`] with an explicit per-replay worker
/// share. `replay_workers >= 2` requests the sharded replay
/// (`SimPath::Sharded`); the dispatcher still falls back to the serial
/// dense engine for configs that cannot shard (prefetch on, as in these
/// tables, or non-decomposable geometry), so results are identical either
/// way. Callers composing with [`fs_core::run_indexed`] should derive the
/// share from [`fs_core::split_workers`] so the two levels never
/// oversubscribe the `FS_SIM_WORKERS` budget.
pub fn measured_time_seconds_prepared_with(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    prepared: &SimPrepared,
    replay_workers: usize,
) -> f64 {
    let compute = machine_cost(kernel, &machine.processor).cycles_per_iter;
    let mut opts = SimOptions::new(threads);
    if replay_workers >= 2 {
        opts = opts
            .with_path(SimPath::Sharded)
            .with_replay_workers(replay_workers);
    }
    let cycles =
        cache_sim::simulated_time_cycles_prepared(kernel, machine, opts, compute, prepared);
    machine.cycles_to_seconds(cycles)
}

/// One row of a Tables I-III style comparison.
#[derive(Debug, Clone)]
pub struct FsEffectRow {
    pub threads: u32,
    /// Measured (simulated) seconds with the FS-inducing chunk.
    pub t_fs: f64,
    /// Measured seconds with the FS-free chunk.
    pub t_nfs: f64,
    /// `(t_fs - t_nfs)/t_fs` in percent.
    pub measured_pct: f64,
    /// The compile-time model's estimate (Eq. 5 RHS) in percent.
    pub modeled_pct: f64,
}

/// Build a Tables I-III comparison over `threads` for a kernel family.
///
/// Rows are independent (kernel × threads × chunk) points, so they are
/// evaluated concurrently on the `fs-runtime` pool via
/// [`fs_core::run_indexed`] — results come back in canonical `threads`
/// order regardless of worker count (`FS_SIM_WORKERS` overrides the
/// default of one worker per available core). Within a row, the FS and
/// no-FS kernels differ only in chunk size, so the trace planning is done
/// once and shared across the pair.
///
/// The `FS_SIM_WORKERS` budget is split **once** between point-level
/// fan-out and each point's sharded replay via [`fs_core::split_workers`]
/// and the replay share is passed down explicitly, so the two levels of
/// parallelism compose without oversubscription.
pub fn fs_effect_table(
    mk: impl Fn(u64, u32) -> Kernel + Sync,
    chunks: (u64, u64),
    machine: &MachineConfig,
    threads: &[u32],
) -> Vec<FsEffectRow> {
    let (c_fs, c_nfs) = chunks;
    let (point_workers, replay_workers) =
        fs_core::split_workers(threads.len(), fs_core::sim_workers());
    fs_core::run_indexed(threads.len(), point_workers, |i| {
        let t = threads[i];
        let k_fs = mk(c_fs, t);
        let k_nfs = mk(c_nfs, t);
        let prepared = SimPrepared::new(&k_fs, machine.line_size());
        let t_fs =
            measured_time_seconds_prepared_with(&k_fs, machine, t, &prepared, replay_workers);
        let t_nfs =
            measured_time_seconds_prepared_with(&k_nfs, machine, t, &prepared, replay_workers);
        let modeled = modeled_fs_overhead(&k_fs, &k_nfs, machine, &AnalysisOptions::new(t));
        FsEffectRow {
            threads: t,
            t_fs,
            t_nfs,
            measured_pct: ((t_fs - t_nfs) / t_fs).max(0.0) * 100.0,
            modeled_pct: modeled.fs_overhead_fraction * 100.0,
        }
    })
}

/// One row of a Tables IV-VI style prediction comparison.
#[derive(Debug, Clone)]
pub struct PredictionRow {
    pub threads: u32,
    pub pred_fs_cases: f64,
    pub pred_nfs_cases: f64,
    pub pred_pct: f64,
    pub modeled_fs_cases: u64,
    pub modeled_nfs_cases: u64,
    pub modeled_pct: f64,
    /// Chunk runs the prediction evaluated.
    pub sample_runs: u64,
}

/// Chunk runs to sample: at least the paper's nominal count, and at least
/// ~2.2 parallel-region instances so the fitted tail is steady-state (see
/// `cost_model::predict_fs`).
pub fn sample_runs(kernel: &Kernel, threads: u32, nominal: u64) -> u64 {
    let trip = kernel.nest.parallel_trip_count().unwrap_or(1).max(1);
    let chunk = kernel.nest.parallel.schedule.chunk().max(1);
    let per_instance = trip.div_ceil(chunk * threads as u64).max(1);
    let outer = kernel.nest.outer_iters().unwrap_or(1).max(1);
    if outer <= 1 {
        // Single parallel region: the nominal sample is already steady.
        nominal.max(4)
    } else {
        nominal.max(2 * per_instance + per_instance / 4).max(4)
    }
}

/// Build a Tables IV-VI comparison. Rows are model-side only (no simulator
/// replay) but still independent, so they run on the pool like
/// [`fs_effect_table`] rows, with the same deterministic ordering.
pub fn prediction_table(
    mk: impl Fn(u64, u32) -> Kernel + Sync,
    chunks: (u64, u64),
    machine: &MachineConfig,
    threads: &[u32],
    nominal_runs: u64,
) -> Vec<PredictionRow> {
    let (c_fs, c_nfs) = chunks;
    fs_core::run_indexed(threads.len(), fs_core::sim_workers(), |i| {
        let t = threads[i];
        let k_fs = mk(c_fs, t);
        let k_nfs = mk(c_nfs, t);
        let runs_fs = sample_runs(&k_fs, t, nominal_runs);
        let runs_nfs = sample_runs(&k_nfs, t, nominal_runs);

        let full = modeled_fs_overhead(&k_fs, &k_nfs, machine, &AnalysisOptions::new(t));
        let mut popts = AnalysisOptions::new(t);
        popts.predict_chunk_runs = Some(runs_fs);
        let pred_fs_loop = cost_model::analyze_loop(&k_fs, machine, &popts);
        popts.predict_chunk_runs = Some(runs_nfs);
        let pred_nfs_loop = cost_model::analyze_loop(&k_nfs, machine, &popts);

        let cfg = cost_model::FsModelConfig::for_machine(machine, t);
        let pred_fs = cost_model::predict_fs(&k_fs, &cfg, runs_fs)
            .map(|p| p.predicted_cases)
            .unwrap_or(full.fs_loop.fs.fs_cases as f64);
        let pred_nfs = cost_model::predict_fs(&k_nfs, &cfg, runs_nfs)
            .map(|p| p.predicted_cases)
            .unwrap_or(full.nfs_loop.fs.fs_cases as f64);

        let pred_pct = if pred_fs_loop.total_cycles > 0.0 {
            ((pred_fs_loop.fs_cycles - pred_nfs_loop.fs_cycles).max(0.0)
                / pred_fs_loop.total_cycles)
                * 100.0
        } else {
            0.0
        };

        PredictionRow {
            threads: t,
            pred_fs_cases: pred_fs,
            pred_nfs_cases: pred_nfs,
            pred_pct,
            modeled_fs_cases: full.fs_loop.fs.fs_cases,
            modeled_nfs_cases: full.nfs_loop.fs.fs_cases,
            modeled_pct: full.fs_overhead_fraction * 100.0,
            sample_runs: runs_fs,
        }
    })
}

/// Render a Tables I-III style table.
pub fn render_fs_effect(title: &str, rows: &[FsEffectRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:>8} {:>14} {:>14} {:>14} {:>12}\n",
        "threads", "T_fs (s)", "T_nfs (s)", "measured FS%", "modeled FS%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>14.6} {:>14.6} {:>13.1}% {:>11.1}%\n",
            r.threads, r.t_fs, r.t_nfs, r.measured_pct, r.modeled_pct
        ));
    }
    out
}

/// Render a Tables IV-VI style table.
pub fn render_prediction(title: &str, rows: &[PredictionRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:>8} {:>14} {:>14} {:>9} {:>14} {:>14} {:>9} {:>7}\n",
        "threads",
        "pred FS(fs)",
        "pred FS(nfs)",
        "pred %",
        "model FS(fs)",
        "model FS(nfs)",
        "model %",
        "runs"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8} {:>14.0} {:>14.0} {:>8.1}% {:>14} {:>14} {:>8.1}% {:>7}\n",
            r.threads,
            r.pred_fs_cases,
            r.pred_nfs_cases,
            r.pred_pct,
            r.modeled_fs_cases,
            r.modeled_nfs_cases,
            r.modeled_pct,
            r.sample_runs
        ));
    }
    out
}

/// Extract the numeric value of `"key": <number>` from a JSON document by
/// string search. The workspace has a JSON renderer but deliberately no
/// parser; bench baselines only need one scalar back out of their own
/// artifacts, so a full parser would be dead weight.
pub fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Turn on `fs-obs` counters for an experiment binary. Spans stay off:
/// the tables only need the `sim.*` totals, and counters are the cheap
/// half of the registry (atomic adds, no event sink).
pub fn enable_sim_counters() {
    let mut cfg = fs_core::obs::config();
    cfg.counters = true;
    fs_core::obs::configure(cfg);
}

/// One-line summary of the process's `sim.*` counters (see
/// `docs/OBSERVABILITY.md` for the taxonomy).
pub fn sim_summary() -> String {
    let snap = fs_core::obs::snapshot();
    format!(
        "sim: {} replays ({} dense, {} sharded, {} reference, {} fallbacks, \
         {} shard fallbacks: {} prefetch / {} geometry), {} points on {} workers, \
         {} accesses, {} coherence misses ({} FS, {} TS)",
        snap.counter("sim.replays"),
        snap.counter("sim.dispatch_dense"),
        snap.counter("sim.dispatch_sharded"),
        snap.counter("sim.dispatch_reference"),
        snap.counter("sim.dense_limit_fallbacks"),
        snap.counter("sim.shard_prefetch_fallbacks") + snap.counter("sim.shard_geometry_fallbacks"),
        snap.counter("sim.shard_prefetch_fallbacks"),
        snap.counter("sim.shard_geometry_fallbacks"),
        snap.counter("sim.points_evaluated"),
        snap.gauge("sim.workers").max(1),
        snap.counter("sim.accesses"),
        snap.counter("sim.coherence_misses"),
        snap.counter("sim.false_sharing"),
        snap.counter("sim.true_sharing"),
    )
}

/// Print [`sim_summary`] to stderr, tagged with the experiment name. The
/// per-table binaries call this on exit so `all_experiments` progress
/// output interleaves simulator totals with its own timing lines (stderr,
/// so piping the tables to a file stays clean).
pub fn eprint_sim_summary(label: &str) {
    eprintln!("[{label}] {}", sim_summary());
}

/// Smaller thread sweep for quick checks (`FS_QUICK=1`).
pub fn thread_counts_from_env() -> Vec<u32> {
    if std::env::var("FS_QUICK").is_ok() {
        vec![2, 8, 48]
    } else {
        paper_thread_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_runs_spans_instances_for_inner_parallel() {
        let k = scale::heat(1, 48);
        // trip 3072, T=48 -> 64 runs per instance; 64 outer loops.
        let r = sample_runs(&k, 48, 20);
        assert!(r >= 128, "r = {r}");
        // Outer-parallel linreg keeps the nominal count.
        let k2 = scale::linreg(1, 48);
        assert_eq!(sample_runs(&k2, 48, 10), 10);
    }

    #[test]
    fn fs_effect_rows_have_positive_overheads() {
        let m = paper48();
        let rows = fs_effect_table(
            |c, _| kernels::heat_diffusion(34, 1026, c),
            (1, 64),
            &m,
            &[2, 8],
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.t_fs > r.t_nfs, "T={}", r.threads);
            assert!(r.measured_pct > 0.0);
            assert!(r.modeled_pct > 0.0);
        }
    }

    #[test]
    fn sim_summary_reports_replays() {
        enable_sim_counters();
        let m = paper48();
        let prepared = SimPrepared::new(&kernels::stencil1d(130, 1), m.line_size());
        let t = measured_time_seconds_prepared(&kernels::stencil1d(130, 1), &m, 2, &prepared);
        assert!(t > 0.0);
        let s = sim_summary();
        assert!(
            s.contains("replays") && s.contains("coherence misses"),
            "{s}"
        );
    }

    #[test]
    fn json_number_reads_rendered_artifacts() {
        let doc =
            "{\n  \"points_per_sec_after\": 77.127589,\n  \"speedup\": 5.664,\n  \"pass\": true\n}";
        assert_eq!(json_number(doc, "speedup"), Some(5.664));
        assert!((json_number(doc, "points_per_sec_after").unwrap() - 77.127589).abs() < 1e-9);
        assert_eq!(json_number(doc, "missing"), None);
        assert_eq!(json_number(doc, "pass"), None);
        assert_eq!(json_number("{\"k\":-1.5e3}", "k"), Some(-1500.0));
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = vec![FsEffectRow {
            threads: 2,
            t_fs: 1.0,
            t_nfs: 0.5,
            measured_pct: 50.0,
            modeled_pct: 45.0,
        }];
        let s = render_fs_effect("Table X", &rows);
        assert!(s.contains("Table X") && s.contains("50.0%") && s.contains("45.0%"));
    }
}
