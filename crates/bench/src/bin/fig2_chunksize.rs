//! Fig. 2: execution time of the linear-regression kernel vs chunk size
//! (1..30). Execution time is the MESI-simulated makespan plus modeled
//! compute, at a fixed team size.

use fs_bench::{measured_time_seconds, paper48, scale};

fn main() {
    fs_bench::enable_sim_counters();
    let machine = paper48();
    let threads = 8;
    println!("## Fig. 2: linear regression execution time vs chunk size ({threads} threads)");
    println!("{:>8} {:>14} {:>16}", "chunk", "time (s)", "vs chunk 1");
    let mut base = None;
    for chunk in [1u64, 2, 4, 6, 8, 10, 14, 18, 22, 26, 30] {
        let t = measured_time_seconds(&scale::linreg(chunk, threads), &machine, threads);
        let b = *base.get_or_insert(t);
        println!("{:>8} {:>14.6} {:>15.1}%", chunk, t, (t / b - 1.0) * 100.0);
    }
    println!("(expect a falling curve: larger chunks remove the false sharing)");
    fs_bench::eprint_sim_summary("fig2_chunksize");
}
