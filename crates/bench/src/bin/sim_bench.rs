//! Measured-side benchmark: batched dense-table MESI replay vs the
//! reference per-access simulator, over the paper's three evaluation
//! kernels at both table chunk sizes.
//!
//! A *point* is one full kernel replay of a (kernel, chunk) configuration
//! at the paper's fixed team size. For every point the two [`SimPath`]s are
//! first checked for bit-identical [`cache_sim::SimStats`] (the optimized
//! replay is an optimization, not an approximation — any divergence fails
//! the run), then timed over enough repetitions to be stable. The trace
//! planning is prepared once per kernel family and shared across the
//! FS/no-FS chunk pair, exactly as the experiment tables do.
//!
//! Two measurement phases, mirroring `fs_model_bench`:
//!
//! 1. **Observability disabled** (the library default): wall-clock
//!    per-point timings — the official throughput figures, and the input to
//!    the obs-overhead gate (`FS_OBS_GATE=1`: the optimized points/sec must
//!    stay within 2% of the previous `BENCH_sim.json` baseline).
//! 2. **Observability enabled**: the optimized reps re-run with `fs-obs`
//!    on; throughput is sourced from the registry (`sim.dispatch_dense` +
//!    the `sim.replay` span total) with a drift assertion that the counters
//!    account for every replay.
//!
//! Writes `BENCH_sim.json` (uploaded as a CI artifact) and exits non-zero
//! if the aggregate replay speedup is under the 3x gate.

use cache_sim::{simulate_kernel_prepared, SimOptions, SimPath, SimPrepared};
use fs_bench::scale;
use fs_core::{obs, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the optimized replay path.
const GATE: f64 = 3.0;
/// Timed repetitions per (point, path).
const REPEAT: u32 = 3;
/// Max tolerated slowdown of the obs-disabled replay vs the recorded
/// baseline (enforced only under `FS_OBS_GATE=1`).
const OBS_OVERHEAD_GATE: f64 = 0.02;
const JSON_PATH: &str = "BENCH_sim.json";

struct Point {
    name: &'static str,
    chunk: u64,
    kernel: loop_ir::Kernel,
    prepared: SimPrepared,
}

struct PointResult {
    kernel: String,
    chunk: u64,
    reference_s: f64,
    optimized_s: f64,
}

fn main() -> ExitCode {
    let machine = fs_bench::paper48();
    let threads = 8u32;
    type Family = (&'static str, fn(u64, u32) -> loop_ir::Kernel, (u64, u64));
    let families: [Family; 3] = [
        ("linreg", scale::linreg, scale::LINREG_CHUNKS),
        ("heat", scale::heat, scale::HEAT_CHUNKS),
        ("dft", scale::dft, scale::DFT_CHUNKS),
    ];

    // Read the previous run's baseline before this run overwrites it.
    let baseline_pps = std::fs::read_to_string(JSON_PATH)
        .ok()
        .and_then(|doc| fs_bench::json_number(&doc, "points_per_sec_disabled_obs"));

    println!(
        "## sim benchmark: {} kernels x {{fs,nfs}} chunks, {threads} threads, {REPEAT} reps",
        families.len()
    );

    let mut grid: Vec<Point> = Vec::new();
    for (name, mk, (c_fs, c_nfs)) in families {
        // One preparation per family: the two chunk variants differ only in
        // schedule, which is exactly what the SimPrepared contract permits.
        let prepared = SimPrepared::new(&mk(c_fs, threads), machine.line_size());
        for chunk in [c_fs, c_nfs] {
            grid.push(Point {
                name,
                chunk,
                kernel: mk(chunk, threads),
                prepared: prepared.clone(),
            });
        }
    }

    // Per point, back to back: correctness gate, obs-disabled timed reps
    // (min-of-reps — the official figures and the overhead-gate input),
    // then the optimized reps again with obs enabled feeding the registry.
    // Interleaving the modes at point granularity keeps slow drift on a
    // shared box from biasing one mode.
    obs::reset();
    let mut points: Vec<PointResult> = Vec::new();
    // Total obs-disabled seconds across all reps of the optimized path —
    // the mean-based denominator the enabled-mode overhead is compared to.
    let mut disabled_opt_rep_total = 0.0f64;
    for p in &grid {
        let opts = SimOptions::new(threads);

        // Correctness gate: bit-identical stats, field for field.
        let want = simulate_kernel_prepared(
            &p.kernel,
            &machine,
            opts.with_path(SimPath::Reference),
            &p.prepared,
        );
        let got = simulate_kernel_prepared(
            &p.kernel,
            &machine,
            opts.with_path(SimPath::Optimized),
            &p.prepared,
        );
        if got != want {
            eprintln!(
                "sim_bench: paths diverge on {} chunk {}: \
                 optimized {} FS / {} coherence misses, reference {} FS / {} coherence misses",
                p.name,
                p.chunk,
                got.total_false_sharing(),
                got.total_coherence_misses(),
                want.total_false_sharing(),
                want.total_coherence_misses()
            );
            return ExitCode::FAILURE;
        }

        // (min seconds, total seconds) over REPEAT individually timed runs.
        let time_path = |path: SimPath| {
            let mut min = f64::INFINITY;
            let mut total = 0.0f64;
            let mut sink = 0u64;
            for _ in 0..REPEAT {
                let t0 = Instant::now();
                sink = sink.wrapping_add(
                    simulate_kernel_prepared(
                        &p.kernel,
                        &machine,
                        opts.with_path(path),
                        &p.prepared,
                    )
                    .total_false_sharing(),
                );
                let dt = t0.elapsed().as_secs_f64();
                min = min.min(dt);
                total += dt;
            }
            std::hint::black_box(sink);
            (min, total)
        };
        let (reference_s, _) = time_path(SimPath::Reference);
        let (optimized_s, opt_total) = time_path(SimPath::Optimized);
        disabled_opt_rep_total += opt_total;

        // The optimized reps again with the registry live.
        obs::configure(obs::ObsConfig::enabled());
        let mut sink = 0u64;
        for _ in 0..REPEAT {
            sink = sink.wrapping_add(
                simulate_kernel_prepared(
                    &p.kernel,
                    &machine,
                    opts.with_path(SimPath::Optimized),
                    &p.prepared,
                )
                .total_false_sharing(),
            );
        }
        std::hint::black_box(sink);
        obs::configure(obs::ObsConfig::disabled());

        println!(
            "{:>10} chunk {:>2}: reference {:>8.2} ms, optimized {:>8.2} ms ({:>5.1}x)",
            p.name,
            p.chunk,
            reference_s * 1e3,
            optimized_s * 1e3,
            reference_s / optimized_s.max(1e-9)
        );
        points.push(PointResult {
            kernel: p.name.to_string(),
            chunk: p.chunk,
            reference_s,
            optimized_s,
        });
    }

    let ref_total: f64 = points.iter().map(|p| p.reference_s).sum();
    let opt_total: f64 = points.iter().map(|p| p.optimized_s).sum();
    let n = points.len() as f64;
    let disabled_ref_pps = n / ref_total.max(1e-9);
    let disabled_opt_pps = n / opt_total.max(1e-9);
    let speedup = ref_total / opt_total.max(1e-9);
    println!(
        "throughput (obs disabled): reference {disabled_ref_pps:.1} points/s, \
         optimized {disabled_opt_pps:.1} points/s"
    );
    println!("speedup: {speedup:.1}x (gate {GATE:.1}x)");
    let pass = speedup >= GATE;

    // The enabled-mode runs above fed the registry; the registry is the
    // timer here. Only the optimized path ran with obs on, so the dense
    // dispatch counter must account for exactly those replays.
    let snap = obs::snapshot();
    let runs_dense = snap.counter("sim.dispatch_dense");
    let expected = grid.len() as u64 * REPEAT as u64;
    if runs_dense != expected {
        eprintln!(
            "sim_bench: counter drift: expected {expected} dense replays, \
             counters say {runs_dense}"
        );
        return ExitCode::FAILURE;
    }
    if snap.counter("sim.replays") != runs_dense || snap.counter("sim.dispatch_reference") != 0 {
        eprintln!(
            "sim_bench: counter drift: sim.replays {} / sim.dispatch_reference {} \
             (expected {runs_dense} / 0)",
            snap.counter("sim.replays"),
            snap.counter("sim.dispatch_reference")
        );
        return ExitCode::FAILURE;
    }
    let replay_span_s = snap.span_total_ns("sim.replay") as f64 / 1e9;
    let enabled_opt_pps = runs_dense as f64 / replay_span_s.max(1e-9);
    // Mean-vs-mean on the interleaved reps: the honest enabled-mode cost.
    let obs_overhead = replay_span_s / disabled_opt_rep_total.max(1e-9) - 1.0;
    println!("throughput (obs enabled, counter-sourced): optimized {enabled_opt_pps:.1} points/s");
    println!(
        "obs-enabled overhead on optimized path: {:+.2}%",
        obs_overhead * 100.0
    );

    // Overhead gate: the *disabled* replay must not have regressed vs the
    // previous artifact. Opt-in via FS_OBS_GATE=1 so one-off local runs on
    // loaded machines don't trip it.
    let gate_on = std::env::var("FS_OBS_GATE").as_deref() == Ok("1");
    let mut obs_gate_pass = true;
    match (gate_on, baseline_pps) {
        (true, Some(base)) => {
            let floor = base * (1.0 - OBS_OVERHEAD_GATE);
            obs_gate_pass = disabled_opt_pps >= floor;
            println!(
                "obs overhead gate: disabled-obs optimized {disabled_opt_pps:.1} points/s vs \
                 baseline {base:.1} (floor {floor:.1}): {}",
                if obs_gate_pass { "PASS" } else { "FAIL" }
            );
        }
        (true, None) => {
            println!(
                "obs overhead gate: no baseline {JSON_PATH} yet; recording one (gate skipped)"
            );
        }
        (false, _) => {
            println!("obs overhead gate: not enforced (set FS_OBS_GATE=1 to enable)");
        }
    }

    let doc = JsonValue::obj()
        .field("benchmark", "sim")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field("points", {
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj()
                            .field("kernel", p.kernel.as_str())
                            .field("chunk", p.chunk)
                            .field("reference_seconds", p.reference_s)
                            .field("optimized_seconds", p.optimized_s)
                            .field("speedup", p.reference_s / p.optimized_s.max(1e-9))
                    })
                    .collect(),
            )
        })
        .field("points_per_sec_before", disabled_ref_pps)
        .field("points_per_sec_after", disabled_opt_pps)
        .field("points_per_sec_disabled_obs", disabled_opt_pps)
        .field("points_per_sec_enabled_obs", enabled_opt_pps)
        .field("obs_overhead_percent", obs_overhead * 100.0)
        .field(
            "obs_baseline_points_per_sec",
            baseline_pps.map(JsonValue::from).unwrap_or(JsonValue::Null),
        )
        .field("obs_gate_enforced", gate_on)
        .field("speedup", speedup)
        .field("gate", GATE)
        .field("pass", pass && obs_gate_pass);
    match std::fs::write(JSON_PATH, doc.render_pretty()) {
        Ok(()) => println!("wrote {JSON_PATH}"),
        Err(e) => {
            eprintln!("sim_bench: cannot write {JSON_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if pass && obs_gate_pass {
        println!("PASS (>= {GATE:.1}x)");
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL ({})",
            if pass { "obs overhead gate" } else { "speedup" }
        );
        ExitCode::FAILURE
    }
}
