//! Measured-side benchmark: batched dense-table MESI replay vs the
//! reference per-access simulator, over the paper's three evaluation
//! kernels at both table chunk sizes.
//!
//! A *point* is one full kernel replay of a (kernel, chunk) configuration
//! at the paper's fixed team size. For every point the two [`SimPath`]s are
//! first checked for bit-identical [`cache_sim::SimStats`] (the optimized
//! replay is an optimization, not an approximation — any divergence fails
//! the run), then timed over enough repetitions to be stable. The trace
//! planning is prepared once per kernel family and shared across the
//! FS/no-FS chunk pair, exactly as the experiment tables do.
//!
//! Two measurement phases, mirroring `fs_model_bench`:
//!
//! 1. **Observability disabled** (the library default): wall-clock
//!    per-point timings — the official throughput figures, and the input to
//!    the obs-overhead gate (`FS_OBS_GATE=1`: the optimized points/sec must
//!    stay within 2% of the previous `BENCH_sim.json` baseline).
//! 2. **Observability enabled**: the optimized reps re-run with `fs-obs`
//!    on; throughput is sourced from the registry (`sim.dispatch_dense` +
//!    the `sim.replay` span total) with a drift assertion that the counters
//!    account for every replay.
//!
//! Writes `BENCH_sim.json` (uploaded as a CI artifact) and exits non-zero
//! if the aggregate replay speedup is under the 3x gate.
//!
//! A third phase benchmarks the **set-sharded parallel replay**
//! (`SimPath::Sharded`, see `docs/SIM.md`) on a single replay-heavy point
//! on the shardable `generic_x86` geometry: bit-identity vs the serial
//! dense engine is always enforced, and on hosts with >= 8 cores the
//! sharded single-point speedup must clear `FS_SIM_SHARD_MIN_SPEEDUP`
//! (default 3x; on smaller hosts the figure is recorded but the gate is
//! waived — shard workers cannot outnumber cores). Writes
//! `BENCH_sim_shard.json` as its own CI artifact.

use cache_sim::{simulate_kernel_prepared, SimOptions, SimPath, SimPrepared};
use fs_bench::scale;
use fs_core::{obs, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the optimized replay path.
const GATE: f64 = 3.0;
/// Timed repetitions per (point, path).
const REPEAT: u32 = 3;
/// Max tolerated slowdown of the obs-disabled replay vs the recorded
/// baseline (enforced only under `FS_OBS_GATE=1`).
const OBS_OVERHEAD_GATE: f64 = 0.02;
const JSON_PATH: &str = "BENCH_sim.json";
/// Required sharded-vs-serial single-point speedup on hosts with at least
/// [`SHARD_GATE_MIN_CORES`] cores (`FS_SIM_SHARD_MIN_SPEEDUP` overrides).
const SHARD_GATE: f64 = 3.0;
const SHARD_GATE_MIN_CORES: usize = 8;
const SHARD_JSON_PATH: &str = "BENCH_sim_shard.json";

struct Point {
    name: &'static str,
    chunk: u64,
    kernel: loop_ir::Kernel,
    prepared: SimPrepared,
}

struct PointResult {
    kernel: String,
    chunk: u64,
    reference_s: f64,
    optimized_s: f64,
}

fn main() -> ExitCode {
    let machine = fs_bench::paper48();
    let threads = 8u32;
    type Family = (&'static str, fn(u64, u32) -> loop_ir::Kernel, (u64, u64));
    let families: [Family; 3] = [
        ("linreg", scale::linreg, scale::LINREG_CHUNKS),
        ("heat", scale::heat, scale::HEAT_CHUNKS),
        ("dft", scale::dft, scale::DFT_CHUNKS),
    ];

    // Read the previous run's baseline before this run overwrites it.
    let baseline_pps = std::fs::read_to_string(JSON_PATH)
        .ok()
        .and_then(|doc| fs_bench::json_number(&doc, "points_per_sec_disabled_obs"));

    println!(
        "## sim benchmark: {} kernels x {{fs,nfs}} chunks, {threads} threads, {REPEAT} reps",
        families.len()
    );

    let mut grid: Vec<Point> = Vec::new();
    for (name, mk, (c_fs, c_nfs)) in families {
        // One preparation per family: the two chunk variants differ only in
        // schedule, which is exactly what the SimPrepared contract permits.
        let prepared = SimPrepared::new(&mk(c_fs, threads), machine.line_size());
        for chunk in [c_fs, c_nfs] {
            grid.push(Point {
                name,
                chunk,
                kernel: mk(chunk, threads),
                prepared: prepared.clone(),
            });
        }
    }

    // Per point, back to back: correctness gate, obs-disabled timed reps
    // (min-of-reps — the official figures and the overhead-gate input),
    // then the optimized reps again with obs enabled feeding the registry.
    // Interleaving the modes at point granularity keeps slow drift on a
    // shared box from biasing one mode.
    obs::reset();
    let mut points: Vec<PointResult> = Vec::new();
    // Total obs-disabled seconds across all reps of the optimized path —
    // the mean-based denominator the enabled-mode overhead is compared to.
    let mut disabled_opt_rep_total = 0.0f64;
    for p in &grid {
        let opts = SimOptions::new(threads);

        // Correctness gate: bit-identical stats, field for field.
        let want = simulate_kernel_prepared(
            &p.kernel,
            &machine,
            opts.with_path(SimPath::Reference),
            &p.prepared,
        );
        let got = simulate_kernel_prepared(
            &p.kernel,
            &machine,
            opts.with_path(SimPath::Optimized),
            &p.prepared,
        );
        if got != want {
            eprintln!(
                "sim_bench: paths diverge on {} chunk {}: \
                 optimized {} FS / {} coherence misses, reference {} FS / {} coherence misses",
                p.name,
                p.chunk,
                got.total_false_sharing(),
                got.total_coherence_misses(),
                want.total_false_sharing(),
                want.total_coherence_misses()
            );
            return ExitCode::FAILURE;
        }

        // (min seconds, total seconds) over REPEAT individually timed runs.
        let time_path = |path: SimPath| {
            let mut min = f64::INFINITY;
            let mut total = 0.0f64;
            let mut sink = 0u64;
            for _ in 0..REPEAT {
                let t0 = Instant::now();
                sink = sink.wrapping_add(
                    simulate_kernel_prepared(
                        &p.kernel,
                        &machine,
                        opts.with_path(path),
                        &p.prepared,
                    )
                    .total_false_sharing(),
                );
                let dt = t0.elapsed().as_secs_f64();
                min = min.min(dt);
                total += dt;
            }
            std::hint::black_box(sink);
            (min, total)
        };
        let (reference_s, _) = time_path(SimPath::Reference);
        let (optimized_s, opt_total) = time_path(SimPath::Optimized);
        disabled_opt_rep_total += opt_total;

        // The optimized reps again with the registry live.
        obs::configure(obs::ObsConfig::enabled());
        let mut sink = 0u64;
        for _ in 0..REPEAT {
            sink = sink.wrapping_add(
                simulate_kernel_prepared(
                    &p.kernel,
                    &machine,
                    opts.with_path(SimPath::Optimized),
                    &p.prepared,
                )
                .total_false_sharing(),
            );
        }
        std::hint::black_box(sink);
        obs::configure(obs::ObsConfig::disabled());

        println!(
            "{:>10} chunk {:>2}: reference {:>8.2} ms, optimized {:>8.2} ms ({:>5.1}x)",
            p.name,
            p.chunk,
            reference_s * 1e3,
            optimized_s * 1e3,
            reference_s / optimized_s.max(1e-9)
        );
        points.push(PointResult {
            kernel: p.name.to_string(),
            chunk: p.chunk,
            reference_s,
            optimized_s,
        });
    }

    let ref_total: f64 = points.iter().map(|p| p.reference_s).sum();
    let opt_total: f64 = points.iter().map(|p| p.optimized_s).sum();
    let n = points.len() as f64;
    let disabled_ref_pps = n / ref_total.max(1e-9);
    let disabled_opt_pps = n / opt_total.max(1e-9);
    let speedup = ref_total / opt_total.max(1e-9);
    println!(
        "throughput (obs disabled): reference {disabled_ref_pps:.1} points/s, \
         optimized {disabled_opt_pps:.1} points/s"
    );
    println!("speedup: {speedup:.1}x (gate {GATE:.1}x)");
    let pass = speedup >= GATE;

    // The enabled-mode runs above fed the registry; the registry is the
    // timer here. Only the optimized path ran with obs on, so the dense
    // dispatch counter must account for exactly those replays.
    let snap = obs::snapshot();
    let runs_dense = snap.counter("sim.dispatch_dense");
    let expected = grid.len() as u64 * REPEAT as u64;
    if runs_dense != expected {
        eprintln!(
            "sim_bench: counter drift: expected {expected} dense replays, \
             counters say {runs_dense}"
        );
        return ExitCode::FAILURE;
    }
    if snap.counter("sim.replays") != runs_dense || snap.counter("sim.dispatch_reference") != 0 {
        eprintln!(
            "sim_bench: counter drift: sim.replays {} / sim.dispatch_reference {} \
             (expected {runs_dense} / 0)",
            snap.counter("sim.replays"),
            snap.counter("sim.dispatch_reference")
        );
        return ExitCode::FAILURE;
    }
    let replay_span_s = snap.span_total_ns("sim.replay") as f64 / 1e9;
    let enabled_opt_pps = runs_dense as f64 / replay_span_s.max(1e-9);
    // Mean-vs-mean on the interleaved reps: the honest enabled-mode cost.
    let obs_overhead = replay_span_s / disabled_opt_rep_total.max(1e-9) - 1.0;
    println!("throughput (obs enabled, counter-sourced): optimized {enabled_opt_pps:.1} points/s");
    println!(
        "obs-enabled overhead on optimized path: {:+.2}%",
        obs_overhead * 100.0
    );

    // Overhead gate: the *disabled* replay must not have regressed vs the
    // previous artifact. Opt-in via FS_OBS_GATE=1 so one-off local runs on
    // loaded machines don't trip it.
    let gate_on = std::env::var("FS_OBS_GATE").as_deref() == Ok("1");
    let mut obs_gate_pass = true;
    match (gate_on, baseline_pps) {
        (true, Some(base)) => {
            let floor = base * (1.0 - OBS_OVERHEAD_GATE);
            obs_gate_pass = disabled_opt_pps >= floor;
            println!(
                "obs overhead gate: disabled-obs optimized {disabled_opt_pps:.1} points/s vs \
                 baseline {base:.1} (floor {floor:.1}): {}",
                if obs_gate_pass { "PASS" } else { "FAIL" }
            );
        }
        (true, None) => {
            println!(
                "obs overhead gate: no baseline {JSON_PATH} yet; recording one (gate skipped)"
            );
        }
        (false, _) => {
            println!("obs overhead gate: not enforced (set FS_OBS_GATE=1 to enable)");
        }
    }

    // ---- Phase 3: set-sharded parallel replay, single point ------------
    // One replay-heavy configuration (heat at the FS-inducing chunk) on
    // the shardable generic_x86 geometry, prefetch off so the dispatcher
    // can shard. Correctness (bit-identity) always gates; the speedup
    // gate only binds where the shard workers have real cores to run on.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shard_workers = host_cores.clamp(2, 8);
    let shard_gate: f64 = std::env::var("FS_SIM_SHARD_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SHARD_GATE);
    let shard_gate_on = host_cores >= SHARD_GATE_MIN_CORES;
    let shard_machine = fs_core::machines::generic_x86();
    let shard_kernel = scale::heat(scale::HEAT_CHUNKS.0, threads);
    let shard_prepared = SimPrepared::new(&shard_kernel, shard_machine.line_size());
    let sopts = SimOptions::new(threads).without_prefetch();
    let serial_opts = sopts.with_path(SimPath::Optimized);
    let sharded_opts = sopts
        .with_path(SimPath::Sharded)
        .with_replay_workers(shard_workers);

    let serial_stats =
        simulate_kernel_prepared(&shard_kernel, &shard_machine, serial_opts, &shard_prepared);
    let sharded_stats =
        simulate_kernel_prepared(&shard_kernel, &shard_machine, sharded_opts, &shard_prepared);
    if sharded_stats != serial_stats {
        eprintln!(
            "sim_bench: sharded replay diverges on heat chunk {}: \
             sharded {} FS / {} coherence misses, serial {} FS / {} coherence misses",
            scale::HEAT_CHUNKS.0,
            sharded_stats.total_false_sharing(),
            sharded_stats.total_coherence_misses(),
            serial_stats.total_false_sharing(),
            serial_stats.total_coherence_misses()
        );
        return ExitCode::FAILURE;
    }
    // The sharded dispatch must actually have been taken (not a silent
    // serial fallback mislabeled as a parallel measurement).
    obs::configure(obs::ObsConfig::enabled());
    let sharded_before = obs::counters::SIM_DISPATCH_SHARDED.get();
    simulate_kernel_prepared(&shard_kernel, &shard_machine, sharded_opts, &shard_prepared);
    obs::configure(obs::ObsConfig::disabled());
    if obs::counters::SIM_DISPATCH_SHARDED.get() != sharded_before + 1 {
        eprintln!("sim_bench: heat on generic_x86 did not take the sharded dispatch");
        return ExitCode::FAILURE;
    }

    let time_shard_point = |o: SimOptions| {
        let mut min = f64::INFINITY;
        let mut sink = 0u64;
        for _ in 0..REPEAT {
            let t0 = Instant::now();
            sink = sink.wrapping_add(
                simulate_kernel_prepared(&shard_kernel, &shard_machine, o, &shard_prepared)
                    .total_false_sharing(),
            );
            min = min.min(t0.elapsed().as_secs_f64());
        }
        std::hint::black_box(sink);
        min
    };
    let shard_serial_s = time_shard_point(serial_opts);
    let shard_sharded_s = time_shard_point(sharded_opts);
    let shard_speedup = shard_serial_s / shard_sharded_s.max(1e-9);
    println!(
        "sharded replay (heat chunk {}, generic_x86, {} workers on {} cores): \
         serial {:.2} ms, sharded {:.2} ms ({:.2}x)",
        scale::HEAT_CHUNKS.0,
        shard_workers,
        host_cores,
        shard_serial_s * 1e3,
        shard_sharded_s * 1e3,
        shard_speedup
    );
    let shard_pass = if shard_gate_on {
        println!(
            "sharded speedup gate: {shard_speedup:.2}x vs {shard_gate:.1}x \
             (FS_SIM_SHARD_MIN_SPEEDUP overrides): {}",
            if shard_speedup >= shard_gate {
                "PASS"
            } else {
                "FAIL"
            }
        );
        shard_speedup >= shard_gate
    } else {
        println!(
            "sharded speedup gate: waived — host has {host_cores} cores \
             (< {SHARD_GATE_MIN_CORES}); figure recorded only"
        );
        true
    };
    let shard_doc = JsonValue::obj()
        .field("benchmark", "sim_shard")
        .field("kernel", "heat")
        .field("chunk", scale::HEAT_CHUNKS.0)
        .field("machine", "generic_x86")
        .field("threads", threads)
        .field("shard_workers", shard_workers as u64)
        .field("host_cores", host_cores as u64)
        .field("repeat", REPEAT)
        .field("serial_seconds", shard_serial_s)
        .field("sharded_seconds", shard_sharded_s)
        .field("speedup", shard_speedup)
        .field("gate", shard_gate)
        .field("gate_enforced", shard_gate_on)
        .field("pass", shard_pass);
    match std::fs::write(SHARD_JSON_PATH, shard_doc.render_pretty()) {
        Ok(()) => println!("wrote {SHARD_JSON_PATH}"),
        Err(e) => {
            eprintln!("sim_bench: cannot write {SHARD_JSON_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let doc = JsonValue::obj()
        .field("benchmark", "sim")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field("points", {
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj()
                            .field("kernel", p.kernel.as_str())
                            .field("chunk", p.chunk)
                            .field("reference_seconds", p.reference_s)
                            .field("optimized_seconds", p.optimized_s)
                            .field("speedup", p.reference_s / p.optimized_s.max(1e-9))
                    })
                    .collect(),
            )
        })
        .field("points_per_sec_before", disabled_ref_pps)
        .field("points_per_sec_after", disabled_opt_pps)
        .field("points_per_sec_disabled_obs", disabled_opt_pps)
        .field("points_per_sec_enabled_obs", enabled_opt_pps)
        .field("obs_overhead_percent", obs_overhead * 100.0)
        .field(
            "obs_baseline_points_per_sec",
            baseline_pps.map(JsonValue::from).unwrap_or(JsonValue::Null),
        )
        .field("obs_gate_enforced", gate_on)
        .field("speedup", speedup)
        .field("gate", GATE)
        .field("pass", pass && obs_gate_pass);
    match std::fs::write(JSON_PATH, doc.render_pretty()) {
        Ok(()) => println!("wrote {JSON_PATH}"),
        Err(e) => {
            eprintln!("sim_bench: cannot write {JSON_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if pass && obs_gate_pass && shard_pass {
        println!("PASS (>= {GATE:.1}x)");
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL ({})",
            if !pass {
                "speedup"
            } else if !obs_gate_pass {
                "obs overhead gate"
            } else {
                "sharded speedup gate"
            }
        );
        ExitCode::FAILURE
    }
}
