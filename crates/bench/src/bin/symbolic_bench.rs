//! Symbolic FS-path benchmark: the closed-form `FsPath::Symbolic` engine vs
//! the dense `FsPath::Optimized` walk it short-circuits, on loops deep
//! inside the decidable affine fragment.
//!
//! Two gates, both required for exit 0:
//!
//! 1. **Fallback rate**: every bundled corpus kernel must dispatch
//!    symbolically — `fs.symbolic_fallbacks` must not move — and the
//!    symbolic counts must equal the dense counts exactly.
//! 2. **Speedup**: on large in-fragment kernels (many outer iterations, so
//!    the dense walk replays millions of steps while the symbolic path
//!    verifies one steady-state window and extrapolates), the aggregate
//!    per-point speedup must reach `FS_SYMBOLIC_MIN_SPEEDUP` (default 50x).
//!
//! Prints per-point timings and writes `BENCH_symbolic.json` (uploaded as a
//! CI artifact next to the other bench artifacts).

use cost_model::{run_fs_model_prepared, FsModelConfig, FsPath};
use fs_core::{machines, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the symbolic path over the dense path,
/// overridable via the `FS_SYMBOLIC_MIN_SPEEDUP` environment variable.
const GATE: f64 = 50.0;
const REPEAT: u32 = 3;
const JSON_PATH: &str = "BENCH_symbolic.json";

fn gate() -> f64 {
    std::env::var("FS_SYMBOLIC_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(GATE)
}

struct Point {
    name: String,
    kernel: loop_ir::Kernel,
    plan: loop_ir::AccessPlan,
    bases: Vec<u64>,
}

impl Point {
    fn new(name: impl Into<String>, kernel: loop_ir::Kernel, line_size: u64) -> Self {
        let plan = kernel.access_plan();
        let bases = kernel.array_bases(line_size);
        Point {
            name: name.into(),
            kernel,
            plan,
            bases,
        }
    }
}

struct PointResult {
    name: String,
    fs_cases: u64,
    symbolic_s: f64,
    dense_s: f64,
}

/// Fallbacks counted so far (the obs counter is process-global).
fn fallbacks() -> u64 {
    fs_obs::counters::FS_SYMBOLIC_FALLBACKS.get()
}

/// Min-of-`reps` wall time of one full FS-model evaluation on `path`.
///
/// The symbolic side is timed min-of-[`REPEAT`] because it is milliseconds
/// long and noise-sensitive; the dense side of the big speedup points runs
/// once — at tens of seconds per point the measurement self-averages, and
/// repeating it would triple the bench's wall time for no precision gain.
fn time_path(p: &Point, cfg: &FsModelConfig, path: FsPath, reps: u32) -> (f64, u64) {
    let mut cfg = cfg.clone();
    cfg.path = path;
    let mut min = f64::INFINITY;
    let mut cases = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases);
        min = min.min(t0.elapsed().as_secs_f64());
        cases = r.fs_cases;
    }
    std::hint::black_box(cases);
    (min, cases)
}

fn main() -> ExitCode {
    fs_obs::configure(fs_obs::ObsConfig::enabled());
    let machine = machines::paper48();
    let threads = 8u32;
    let ls = machine.line_size();
    let cfg = FsModelConfig::for_machine(&machine, threads);
    let gate = gate();

    // -- Gate 1: zero symbolic fallbacks over the bundled corpus ----------
    let corpus = ["dft", "heat", "histogram", "linreg", "matmul", "stencil"];
    println!("## symbolic fallback rate: bundled corpus ({threads} threads)");
    let mut corpus_ok = true;
    for name in corpus {
        let kernel = fs_core::corpus_kernel(name).expect("bundled kernel");
        let p = Point::new(name, kernel, ls);
        let before = fallbacks();
        let (_, sym_cases) = time_path(&p, &cfg, FsPath::Symbolic, 1);
        let fell = fallbacks() - before;
        let (_, dense_cases) = time_path(&p, &cfg, FsPath::Optimized, 1);
        let exact = sym_cases == dense_cases;
        println!("{name:<12} symbolic cases {sym_cases:>8}  fallbacks {fell}  exact {exact}");
        if fell > 0 || !exact {
            eprintln!("symbolic_bench: {name} fell off the symbolic path or diverged");
            corpus_ok = false;
        }
    }

    // -- Gate 2: per-point speedup on large in-fragment kernels -----------
    // Many outer iterations: the dense path replays every chunk run, the
    // symbolic path verifies one steady-state window and extrapolates the
    // rest in closed form, so the gap grows with the outer trip count.
    let points = vec![
        Point::new(
            "heat_32768x514",
            loop_ir::kernels::heat_diffusion(32768, 514, 1),
            ls,
        ),
        Point::new(
            "linreg_1048576x16",
            loop_ir::kernels::linear_regression(1 << 20, 16, 1),
            ls,
        ),
        Point::new(
            "matmul_262144",
            loop_ir::kernels::matmul(262144, 16, 8, 1),
            ls,
        ),
    ];

    println!(
        "## symbolic vs dense: {} large points, {REPEAT} reps",
        points.len()
    );
    let mut results: Vec<PointResult> = Vec::new();
    let mut speed_ok = true;
    for p in &points {
        let before = fallbacks();
        let (sym_s, sym_cases) = time_path(p, &cfg, FsPath::Symbolic, REPEAT);
        let fell = fallbacks() - before;
        let (dense_s, dense_cases) = time_path(p, &cfg, FsPath::Optimized, 1);
        if fell > 0 {
            eprintln!("symbolic_bench: {} fell off the symbolic path", p.name);
            speed_ok = false;
        }
        if sym_cases != dense_cases {
            eprintln!(
                "symbolic_bench: {} diverges: symbolic {sym_cases} vs dense {dense_cases}",
                p.name
            );
            speed_ok = false;
        }
        println!(
            "{:<16} symbolic {:>9.3} ms, dense {:>9.3} ms ({:>7.0}x), {} cases",
            p.name,
            sym_s * 1e3,
            dense_s * 1e3,
            dense_s / sym_s.max(1e-12),
            sym_cases
        );
        results.push(PointResult {
            name: p.name.clone(),
            fs_cases: sym_cases,
            symbolic_s: sym_s,
            dense_s,
        });
    }

    let sym_total: f64 = results.iter().map(|r| r.symbolic_s).sum();
    let dense_total: f64 = results.iter().map(|r| r.dense_s).sum();
    let speedup = dense_total / sym_total.max(1e-12);
    let pass = corpus_ok && speed_ok && speedup >= gate;
    println!(
        "aggregate: symbolic {:.3} ms, dense {:.3} ms, speedup {speedup:.0}x \
         (gate {gate:.0}x), corpus fallbacks {}: {}",
        sym_total * 1e3,
        dense_total * 1e3,
        if corpus_ok { "none" } else { "PRESENT" },
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = JsonValue::obj()
        .field("benchmark", "symbolic")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field(
            "points",
            JsonValue::Arr(
                results
                    .iter()
                    .map(|r| {
                        JsonValue::obj()
                            .field("kernel", r.name.as_str())
                            .field("fs_cases", r.fs_cases)
                            .field("symbolic_seconds", r.symbolic_s)
                            .field("dense_seconds", r.dense_s)
                    })
                    .collect::<Vec<_>>(),
            ),
        )
        .field("corpus_zero_fallbacks", corpus_ok)
        .field("speedup", speedup)
        .field("gate", gate)
        .field("pass", pass);
    if let Err(e) = std::fs::write(JSON_PATH, doc.render_pretty()) {
        eprintln!("symbolic_bench: cannot write {JSON_PATH}: {e}");
    }

    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
