//! Fig. 9: summary comparison of measured / modeled / predicted
//! false-sharing effect (% of execution time) vs thread count, DFT kernel.

use fs_bench::{fs_effect_table, paper48, prediction_table, scale, thread_counts_from_env};

fn main() {
    fs_bench::enable_sim_counters();
    let machine = paper48();
    let threads = thread_counts_from_env();
    let effect = fs_effect_table(scale::dft, scale::DFT_CHUNKS, &machine, &threads);
    let pred = prediction_table(scale::dft, scale::DFT_CHUNKS, &machine, &threads, 50);
    println!("## Fig. 9: FS effect (% of execution time) vs threads — DFT");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "threads", "measured", "modeled", "predicted"
    );
    for (e, p) in effect.iter().zip(&pred) {
        println!(
            "{:>8} {:>11.1}% {:>11.1}% {:>11.1}%",
            e.threads, e.measured_pct, e.modeled_pct, p.pred_pct
        );
    }
    fs_bench::eprint_sim_summary("fig9_dft_summary");
}
