//! Table I: % false-sharing overhead in the heat diffusion kernel,
//! measured (MESI-simulated) vs modeled, threads 2..48, chunk 1 vs 64.

use fs_bench::{fs_effect_table, paper48, render_fs_effect, scale, thread_counts_from_env};

fn main() {
    fs_bench::enable_sim_counters();
    let machine = paper48();
    let rows = fs_effect_table(
        scale::heat,
        scale::HEAT_CHUNKS,
        &machine,
        &thread_counts_from_env(),
    );
    print!(
        "{}",
        render_fs_effect(
            "Table I: false-sharing overheads, heat diffusion (chunk 1 vs 64)",
            &rows
        )
    );
    fs_bench::eprint_sim_summary("table1_heat");
}
