//! Symbolic-lint benchmark: the closed-form `cost_model::lint` analyzer vs
//! the `FsPath::Reference` simulator it replaces for yes/no questions, over
//! the bundled corpus.
//!
//! A *point* is one (kernel, threads, chunk) configuration. For every point
//! the lint verdict is first checked against the simulated FS-case count
//! (the differential contract: `FalseSharing` ⇒ cases > 0, `Clean` ⇒ 0,
//! `Unknown` fails the run), then both sides are timed — the lint in
//! batches, because a single symbolic pass costs microseconds and a single
//! `Instant` read would dominate it.
//!
//! Prints per-point timings, the aggregate points/sec on each side, and the
//! speedup; writes `BENCH_lint.json` (uploaded as a CI artifact next to the
//! other bench artifacts) and exits non-zero if the lint is not at least
//! 100x faster than the reference simulation or any verdict disagrees.

use cost_model::{lint_kernel, run_fs_model_prepared, FsModelConfig, FsPath, LintVerdict};
use fs_core::{machines, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the symbolic lint over the reference path.
const GATE: f64 = 100.0;
/// Timed repetitions per (point, side); each rep of the lint side runs
/// `LINT_BATCH` lints and divides.
const REPEAT: u32 = 3;
const LINT_BATCH: u32 = 64;
const JSON_PATH: &str = "BENCH_lint.json";

struct Point {
    name: &'static str,
    chunk: u64,
    kernel: loop_ir::Kernel,
    plan: loop_ir::AccessPlan,
    bases: Vec<u64>,
}

struct PointResult {
    kernel: String,
    chunk: u64,
    verdict: &'static str,
    sim_cases: u64,
    lint_s: f64,
    sim_s: f64,
}

fn main() -> ExitCode {
    let machine = machines::paper48();
    let threads = 8u32;
    let chunks = [1u64, 4];
    let kernel_names = ["linreg", "heat", "dft", "stencil", "histogram", "matmul"];

    // Previous run's speedup, for an informational delta line.
    let baseline_speedup = std::fs::read_to_string(JSON_PATH)
        .ok()
        .and_then(|doc| fs_bench::json_number(&doc, "speedup"));

    println!(
        "## lint benchmark: {} kernels x {{1,4}} chunks, {threads} threads, \
         {REPEAT} reps (lint batched x{LINT_BATCH})",
        kernel_names.len()
    );

    let mut grid: Vec<Point> = Vec::new();
    for name in kernel_names {
        let base = fs_core::corpus_kernel(name).expect("bundled kernel");
        for chunk in chunks {
            let kernel = fs_core::kernel_at_chunk(&base, chunk);
            let plan = kernel.access_plan();
            let bases = kernel.array_bases(machine.line_size());
            grid.push(Point {
                name,
                chunk,
                kernel,
                plan,
                bases,
            });
        }
    }

    let mut points: Vec<PointResult> = Vec::new();
    for p in &grid {
        let mut cfg = FsModelConfig::for_machine(&machine, threads);
        cfg.path = FsPath::Reference;

        // Correctness gate first: the lint verdict must agree with the
        // simulated count at the same configuration.
        let lint = lint_kernel(&p.kernel, machine.line_size(), threads);
        let sim = run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases);
        let agree = match lint.verdict {
            LintVerdict::FalseSharing => sim.fs_cases > 0,
            LintVerdict::Clean => sim.fs_cases == 0,
            LintVerdict::Unknown => false,
        };
        if !agree {
            eprintln!(
                "lint_bench: divergence on {} chunk {}: lint says {}, \
                 simulator counted {} cases",
                p.name,
                p.chunk,
                lint.verdict.as_str(),
                sim.fs_cases
            );
            return ExitCode::FAILURE;
        }

        // Lint side: min-of-reps, each rep a batch of LINT_BATCH passes.
        let mut lint_min = f64::INFINITY;
        let mut sink = 0u64;
        for _ in 0..REPEAT {
            let t0 = Instant::now();
            for _ in 0..LINT_BATCH {
                let r = lint_kernel(&p.kernel, machine.line_size(), threads);
                sink = sink.wrapping_add(r.diagnostics.len() as u64);
            }
            let s = t0.elapsed().as_secs_f64() / LINT_BATCH as f64;
            lint_min = lint_min.min(s);
        }
        std::hint::black_box(sink);

        // Simulator side: min-of-reps, one full reference evaluation each.
        let mut sim_min = f64::INFINITY;
        let mut sink = 0u64;
        for _ in 0..REPEAT {
            let t0 = Instant::now();
            let r = run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases);
            sink = sink.wrapping_add(r.fs_cases);
            sim_min = sim_min.min(t0.elapsed().as_secs_f64());
        }
        std::hint::black_box(sink);

        println!(
            "{:<12} chunk {}: lint {:>9.3} us, reference sim {:>9.3} ms \
             ({:>8.0}x), verdict {} / {} sim cases",
            p.name,
            p.chunk,
            lint_min * 1e6,
            sim_min * 1e3,
            sim_min / lint_min.max(1e-12),
            lint.verdict.as_str(),
            sim.fs_cases
        );
        points.push(PointResult {
            kernel: p.name.to_string(),
            chunk: p.chunk,
            verdict: lint.verdict.as_str(),
            sim_cases: sim.fs_cases,
            lint_s: lint_min,
            sim_s: sim_min,
        });
    }

    let lint_total: f64 = points.iter().map(|p| p.lint_s).sum();
    let sim_total: f64 = points.iter().map(|p| p.sim_s).sum();
    let n = points.len() as f64;
    let lint_pps = n / lint_total.max(1e-12);
    let sim_pps = n / sim_total.max(1e-12);
    let speedup = sim_total / lint_total.max(1e-12);
    let pass = speedup >= GATE;

    println!(
        "aggregate: lint {lint_pps:.0} points/s, reference sim {sim_pps:.1} points/s, \
         speedup {speedup:.0}x (gate {GATE:.0}x): {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if let Some(base) = baseline_speedup {
        println!("previous {JSON_PATH}: speedup {base:.0}x");
    }

    let doc = JsonValue::obj()
        .field("benchmark", "lint")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field("lint_batch", LINT_BATCH)
        .field(
            "points",
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj()
                            .field("kernel", p.kernel.as_str())
                            .field("chunk", p.chunk)
                            .field("verdict", p.verdict)
                            .field("sim_cases", p.sim_cases)
                            .field("lint_seconds", p.lint_s)
                            .field("sim_seconds", p.sim_s)
                    })
                    .collect::<Vec<_>>(),
            ),
        )
        .field("lint_points_per_sec", lint_pps)
        .field("sim_points_per_sec", sim_pps)
        .field("speedup", speedup)
        .field("gate", GATE)
        .field("pass", pass);
    if let Err(e) = std::fs::write(JSON_PATH, doc.render_pretty()) {
        eprintln!("lint_bench: cannot write {JSON_PATH}: {e}");
    }

    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
