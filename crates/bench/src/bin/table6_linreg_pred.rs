//! Table VI: predicted vs fully modeled FS cases (and overhead %), linear
//! regression, nominal 10 chunk runs. The chunk-run total here is
//! `n/(T*C)`, so both columns decay with the thread count — the paper's
//! Table VI signature.

use fs_bench::{paper48, prediction_table, render_prediction, scale, thread_counts_from_env};

fn main() {
    let machine = paper48();
    let rows = prediction_table(
        scale::linreg,
        scale::LINREG_CHUNKS,
        &machine,
        &thread_counts_from_env(),
        10,
    );
    print!(
        "{}",
        render_prediction(
            "Table VI: predicted vs modeled FS cases, linear regression (nominal 10 chunk runs)",
            &rows
        )
    );
}
