//! Sweep-engine benchmark: the naive per-point analysis loop vs the
//! parallel memoized engine, over an 8-thread-wide schedule sweep of the
//! bundled corpus.
//!
//! The baseline is what `recommend_chunk` did before the engine existed:
//! clone the kernel at each chunk size and run the full model from scratch
//! for every (kernel, threads, chunk) point — re-deriving the
//! schedule-independent terms every time and simulating every chunk run of
//! the FS model. The engine shares one `PreparedKernel` per kernel across
//! all of its schedule variants, runs points across a worker pool, caches
//! full points for the (common) case of repeated what-if queries, and uses
//! the adaptive early-exit predictor so long loops are sampled, not
//! exhausted.
//!
//! Prints per-stage wall times and the overall speedup; exits non-zero if
//! the engine is under 4x, so the claim is CI-checkable.

use cost_model::{analyze_loop, AnalysisOptions};
use fs_core::{machines, obs, EarlyExit, EvalMode, SweepEngine, SweepGrid};
use std::process::ExitCode;
use std::time::Instant;

/// Iterative-tuning workload: the same grid queried `REPEAT` times, the
/// way an advisor explores schedules (re-querying overlapping points as it
/// narrows in). The naive path recomputes; the engine's memo does not.
const REPEAT: usize = 5;

fn grid() -> SweepGrid {
    let kernels = ["linreg", "heat", "dft", "stencil", "histogram", "matmul"]
        .iter()
        .map(|n| {
            (
                n.to_string(),
                fs_core::corpus_kernel(n).expect("bundled kernel"),
            )
        })
        .collect();
    SweepGrid::new(
        kernels,
        ("paper48".to_string(), machines::paper48()),
        vec![8],
        vec![1, 2, 4, 8, 16, 32, 64, 128],
    )
}

fn main() -> ExitCode {
    let g = grid();
    println!(
        "## sweep-engine benchmark: {} kernels x {} threads x {} chunks = {} points, {} passes",
        g.kernels.len(),
        g.threads.len(),
        g.chunks.len(),
        g.len(),
        REPEAT
    );

    // Naive baseline: fresh full-model analysis per point, every pass.
    let t0 = Instant::now();
    let mut baseline_total = 0.0f64;
    for _ in 0..REPEAT {
        for spec in g.points() {
            let (_, kernel) = &g.kernels[spec.kernel];
            let (_, machine) = &g.machines[spec.machine];
            let k = fs_core::kernel_at_chunk(kernel, spec.chunk);
            let cost = analyze_loop(&k, machine, &AnalysisOptions::new(spec.threads));
            baseline_total += cost.total_cycles;
        }
    }
    let baseline = t0.elapsed();
    println!(
        "naive per-point analysis: {:>10.3} s",
        baseline.as_secs_f64()
    );

    // The engine: parallel workers + shared prepared kernels + point memo +
    // adaptive early exit. Timing is sourced from the obs registry — the
    // `sweep.run` span total is the engine wall time and `sweep.points_evaluated`
    // must account for every point the passes issued.
    let engine = SweepEngine::new()
        .workers(8)
        .mode(EvalMode::EarlyExit(EarlyExit::default()));
    obs::configure(obs::ObsConfig::enabled());
    obs::reset();
    let mut engine_total = 0.0f64;
    let mut last = None;
    for _ in 0..REPEAT {
        let r = engine.run(&g).expect("corpus grid is valid");
        engine_total += r.outcomes.iter().map(|o| o.cost.total_cycles).sum::<f64>();
        last = Some(r);
    }
    let snap = obs::snapshot();
    obs::configure(obs::ObsConfig::disabled());
    let engine_s = snap.span_total_ns("sweep.run") as f64 / 1e9;
    let engine_points = snap.counter("sweep.points_evaluated");
    let expected_points = (REPEAT * g.len()) as u64;
    if engine_points != expected_points {
        eprintln!(
            "sweep_bench: counter drift: sweep.points_evaluated {engine_points} != \
             {REPEAT} passes x {} points = {expected_points}",
            g.len()
        );
        return ExitCode::FAILURE;
    }
    let r = last.unwrap();
    println!(
        "memoized sweep engine:    {:>10.3} s  ({} hits / {} misses on final pass)",
        engine_s, r.memo_hits, r.memo_misses
    );

    // Sanity: both paths must agree on where the false sharing is. The
    // early-exit predictor extrapolates, so compare verdicts, not bytes.
    let naive_mean = baseline_total / (REPEAT * g.len()) as f64;
    let engine_mean = engine_total / (REPEAT * g.len()) as f64;
    println!(
        "mean modeled cycles/point: naive {naive_mean:.0}, engine {engine_mean:.0} ({:+.1}%)",
        (engine_mean / naive_mean - 1.0) * 100.0
    );

    let points = engine_points as f64;
    println!(
        "throughput: naive {:.1} points/s, engine {:.1} points/s (counter-sourced)",
        points / baseline.as_secs_f64().max(1e-9),
        points / engine_s.max(1e-9)
    );
    // Per-point latency shape from the histogram, not just the mean: a
    // healthy memoized run is bimodal (cache hits ~µs, computes ~ms).
    if let Some(h) = snap.hist("sweep.point_ns") {
        println!(
            "point latency: p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms over {} points",
            h.quantile(0.50) as f64 / 1e6,
            h.quantile(0.95) as f64 / 1e6,
            h.quantile(0.99) as f64 / 1e6,
            h.count
        );
    }

    let speedup = baseline.as_secs_f64() / engine_s.max(1e-9);
    println!("speedup: {speedup:.1}x");
    if speedup >= 4.0 {
        println!("PASS (>= 4x)");
        ExitCode::SUCCESS
    } else {
        println!("FAIL (< 4x)");
        ExitCode::FAILURE
    }
}
