//! Analytic FS-path benchmark: the closed-form reuse-distance engine
//! (`FsPath::Analytic` — symbolic coherence counts *plus* the capacity
//! prediction) vs the dense `FsPath::Optimized` walk, on loops deep inside
//! the decidable affine fragment.
//!
//! Two gates, both required for exit 0:
//!
//! 1. **Fallback rate**: every bundled corpus kernel must dispatch
//!    analytically — `fs.analytic_fallbacks` must not move, a capacity
//!    prediction must attach — and the coherence counts must equal the
//!    dense counts exactly.
//! 2. **Speedup**: on large in-fragment kernels the aggregate per-point
//!    speedup must reach `FS_ANALYTIC_MIN_SPEEDUP` (default 50x): the dense
//!    walk replays millions of accesses per thread while the analytic path
//!    derives histograms and miss counts in closed form.
//!
//! Prints per-point timings and writes `BENCH_analytic.json` (uploaded as a
//! CI artifact next to the other bench artifacts).

use cost_model::{run_fs_model_prepared, FsModelConfig, FsPath};
use fs_core::{machines, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the analytic path over the dense path,
/// overridable via the `FS_ANALYTIC_MIN_SPEEDUP` environment variable.
const GATE: f64 = 50.0;
const REPEAT: u32 = 3;
const JSON_PATH: &str = "BENCH_analytic.json";

fn gate() -> f64 {
    std::env::var("FS_ANALYTIC_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(GATE)
}

struct Point {
    name: String,
    kernel: loop_ir::Kernel,
    plan: loop_ir::AccessPlan,
    bases: Vec<u64>,
}

impl Point {
    fn new(name: impl Into<String>, kernel: loop_ir::Kernel, line_size: u64) -> Self {
        let plan = kernel.access_plan();
        let bases = kernel.array_bases(line_size);
        Point {
            name: name.into(),
            kernel,
            plan,
            bases,
        }
    }
}

struct PointResult {
    name: String,
    fs_cases: u64,
    mem_fetches: f64,
    analytic_s: f64,
    dense_s: f64,
}

/// Fallbacks counted so far (the obs counter is process-global).
fn fallbacks() -> u64 {
    fs_obs::counters::FS_ANALYTIC_FALLBACKS.get()
}

/// Min-of-`reps` wall time of one full FS-model evaluation on `path`,
/// returning (seconds, fs_cases, capacity mem_fetches if attached).
///
/// The analytic side is timed min-of-[`REPEAT`] because it is milliseconds
/// long and noise-sensitive; the dense side of the big speedup points runs
/// once — at tens of seconds per point the measurement self-averages.
fn time_path(p: &Point, cfg: &FsModelConfig, path: FsPath, reps: u32) -> (f64, u64, Option<f64>) {
    let mut cfg = cfg.clone();
    cfg.path = path;
    let mut min = f64::INFINITY;
    let mut cases = 0;
    let mut mem = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases);
        min = min.min(t0.elapsed().as_secs_f64());
        cases = r.fs_cases;
        mem = r.capacity.as_ref().map(|c| c.mem_fetches);
    }
    std::hint::black_box(cases);
    (min, cases, mem)
}

fn main() -> ExitCode {
    fs_obs::configure(fs_obs::ObsConfig::enabled());
    let machine = machines::paper48();
    let threads = 8u32;
    let ls = machine.line_size();
    let cfg = FsModelConfig::for_machine(&machine, threads);
    let gate = gate();

    // -- Gate 1: zero analytic fallbacks over the bundled corpus ----------
    let corpus = ["dft", "heat", "histogram", "linreg", "matmul", "stencil"];
    println!("## analytic fallback rate: bundled corpus ({threads} threads)");
    let mut corpus_ok = true;
    for name in corpus {
        let kernel = fs_core::corpus_kernel(name).expect("bundled kernel");
        let p = Point::new(name, kernel, ls);
        let before = fallbacks();
        let (_, ana_cases, mem) = time_path(&p, &cfg, FsPath::Analytic, 1);
        let fell = fallbacks() - before;
        let (_, dense_cases, _) = time_path(&p, &cfg, FsPath::Optimized, 1);
        let exact = ana_cases == dense_cases;
        println!(
            "{name:<12} analytic cases {ana_cases:>8}  fallbacks {fell}  exact {exact}  \
             predicted mem {:.0}",
            mem.unwrap_or(f64::NAN)
        );
        if fell > 0 || !exact || mem.is_none() {
            eprintln!("analytic_bench: {name} fell back, diverged, or lost its prediction");
            corpus_ok = false;
        }
    }

    // -- Gate 2: per-point speedup on large in-fragment kernels -----------
    // Many outer iterations: the dense path replays every access of every
    // chunk run; the analytic path derives coherence counts symbolically
    // and the capacity histogram in closed form, independent of trip count.
    let points = vec![
        Point::new(
            "heat_32768x514",
            loop_ir::kernels::heat_diffusion(32768, 514, 1),
            ls,
        ),
        Point::new(
            "linreg_1048576x16",
            loop_ir::kernels::linear_regression(1 << 20, 16, 1),
            ls,
        ),
        Point::new(
            "matmul_262144",
            loop_ir::kernels::matmul(262144, 16, 8, 1),
            ls,
        ),
    ];

    println!(
        "## analytic vs dense: {} large points, {REPEAT} reps",
        points.len()
    );
    let mut results: Vec<PointResult> = Vec::new();
    let mut speed_ok = true;
    for p in &points {
        let before = fallbacks();
        let (ana_s, ana_cases, mem) = time_path(p, &cfg, FsPath::Analytic, REPEAT);
        let fell = fallbacks() - before;
        let (dense_s, dense_cases, _) = time_path(p, &cfg, FsPath::Optimized, 1);
        if fell > 0 || mem.is_none() {
            eprintln!("analytic_bench: {} fell off the analytic path", p.name);
            speed_ok = false;
        }
        if ana_cases != dense_cases {
            eprintln!(
                "analytic_bench: {} diverges: analytic {ana_cases} vs dense {dense_cases}",
                p.name
            );
            speed_ok = false;
        }
        println!(
            "{:<18} analytic {:>9.3} ms, dense {:>9.3} ms ({:>7.0}x), {} cases, mem {:.0}",
            p.name,
            ana_s * 1e3,
            dense_s * 1e3,
            dense_s / ana_s.max(1e-12),
            ana_cases,
            mem.unwrap_or(f64::NAN)
        );
        results.push(PointResult {
            name: p.name.clone(),
            fs_cases: ana_cases,
            mem_fetches: mem.unwrap_or(f64::NAN),
            analytic_s: ana_s,
            dense_s,
        });
    }

    let ana_total: f64 = results.iter().map(|r| r.analytic_s).sum();
    let dense_total: f64 = results.iter().map(|r| r.dense_s).sum();
    let speedup = dense_total / ana_total.max(1e-12);
    let pass = corpus_ok && speed_ok && speedup >= gate;
    println!(
        "aggregate: analytic {:.3} ms, dense {:.3} ms, speedup {speedup:.0}x \
         (gate {gate:.0}x), corpus fallbacks {}: {}",
        ana_total * 1e3,
        dense_total * 1e3,
        if corpus_ok { "none" } else { "PRESENT" },
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = JsonValue::obj()
        .field("benchmark", "analytic")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field(
            "points",
            JsonValue::Arr(
                results
                    .iter()
                    .map(|r| {
                        JsonValue::obj()
                            .field("kernel", r.name.as_str())
                            .field("fs_cases", r.fs_cases)
                            .field("predicted_mem_fetches", r.mem_fetches)
                            .field("analytic_seconds", r.analytic_s)
                            .field("dense_seconds", r.dense_s)
                    })
                    .collect::<Vec<_>>(),
            ),
        )
        .field("corpus_zero_fallbacks", corpus_ok)
        .field("speedup", speedup)
        .field("gate", gate)
        .field("pass", pass);
    if let Err(e) = std::fs::write(JSON_PATH, doc.render_pretty()) {
        eprintln!("analytic_bench: cannot write {JSON_PATH}: {e}");
    }

    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
