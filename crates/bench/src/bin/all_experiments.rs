//! Regenerate every table and figure of the paper in one run (the output
//! recorded in EXPERIMENTS.md). Set `FS_QUICK=1` for a reduced thread
//! sweep.

use std::process::Command;

fn main() {
    // Keep each experiment in its own binary so they can be run (and
    // profiled) independently; this driver just runs them all in paper
    // order.
    let bins = [
        "fig2_chunksize",
        "fig6_linearity",
        "table1_heat",
        "table2_dft",
        "table3_linreg",
        "table4_heat_pred",
        "table5_dft_pred",
        "table6_linreg_pred",
        "fig8_heat_summary",
        "fig9_dft_summary",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
        println!();
    }
}
