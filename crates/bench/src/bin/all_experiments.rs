//! Regenerate every table and figure of the paper in one run (the output
//! recorded in EXPERIMENTS.md). Set `FS_QUICK=1` for a reduced thread
//! sweep.
//!
//! Tables go to stdout; progress and per-binary wall time go to stderr
//! (interleaved with each binary's own `sim.*` counter summary), so
//! `all_experiments > EXPERIMENTS.out` captures clean tables while the
//! terminal still shows where the time went.

use std::process::Command;
use std::time::Instant;

fn main() {
    // Keep each experiment in its own binary so they can be run (and
    // profiled) independently; this driver just runs them all in paper
    // order.
    let bins = [
        "fig2_chunksize",
        "fig6_linearity",
        "table1_heat",
        "table2_dft",
        "table3_linreg",
        "table4_heat_pred",
        "table5_dft_pred",
        "table6_linreg_pred",
        "fig8_heat_summary",
        "fig9_dft_summary",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let total = Instant::now();
    for (i, bin) in bins.iter().enumerate() {
        eprintln!("[{}/{}] {bin} ...", i + 1, bins.len());
        let path = dir.join(bin);
        let t0 = Instant::now();
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed");
        eprintln!(
            "[{}/{}] {bin} done in {:.2}s",
            i + 1,
            bins.len(),
            t0.elapsed().as_secs_f64()
        );
        println!();
    }
    eprintln!(
        "all experiments regenerated in {:.2}s",
        total.elapsed().as_secs_f64()
    );
}
