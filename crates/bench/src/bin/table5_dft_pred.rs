//! Table V: predicted vs fully modeled FS cases (and overhead %), DFT,
//! nominal 50 chunk runs.

use fs_bench::{paper48, prediction_table, render_prediction, scale, thread_counts_from_env};

fn main() {
    let machine = paper48();
    let rows = prediction_table(
        scale::dft,
        scale::DFT_CHUNKS,
        &machine,
        &thread_counts_from_env(),
        50,
    );
    print!(
        "{}",
        render_prediction(
            "Table V: predicted vs modeled FS cases, DFT (nominal 50 chunk runs)",
            &rows
        )
    );
}
