//! FS-model hot-loop benchmark: the strength-reduced dense-table path vs
//! the reference hash-map transcription of the paper's algorithm, over the
//! bundled corpus.
//!
//! A *point* is one full model evaluation of a (kernel, threads, chunk)
//! configuration. For every point the two paths are first checked for
//! count-identical results (the optimized path is an optimization, not an
//! approximation — any divergence fails the run), then timed over enough
//! repetitions to be stable.
//!
//! Prints per-kernel timings and the aggregate points/sec before vs after;
//! writes the numbers to `BENCH_fs_model.json` (uploaded as a CI artifact)
//! and exits non-zero if the aggregate speedup is under the 3x gate.

use cost_model::{run_fs_model_prepared, FsModelConfig, FsPath};
use fs_core::{machines, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the optimized path.
const GATE: f64 = 3.0;
/// Timed repetitions per (point, path).
const REPEAT: u32 = 3;

struct PointResult {
    kernel: String,
    chunk: u64,
    reference_s: f64,
    optimized_s: f64,
}

fn main() -> ExitCode {
    let machine = machines::paper48();
    let threads = 8u32;
    let chunks = [1u64, 4];
    let kernel_names = ["linreg", "heat", "dft", "stencil", "histogram", "matmul"];

    println!(
        "## fs-model benchmark: {} kernels x {{1,4}} chunks, {threads} threads, {REPEAT} reps",
        kernel_names.len()
    );

    let mut points: Vec<PointResult> = Vec::new();
    for name in kernel_names {
        let base = fs_core::corpus_kernel(name).expect("bundled kernel");
        for chunk in chunks {
            let kernel = fs_core::kernel_at_chunk(&base, chunk);
            // Step-1 inputs are schedule-independent; prepare once, as the
            // sweep engine does.
            let plan = kernel.access_plan();
            let bases = kernel.array_bases(machine.line_size());
            let mut cfg = FsModelConfig::for_machine(&machine, threads);

            // Correctness gate: identical counts, field for field.
            cfg.path = FsPath::Reference;
            let want = run_fs_model_prepared(&kernel, &cfg, &plan, &bases);
            cfg.path = FsPath::Optimized;
            let got = run_fs_model_prepared(&kernel, &cfg, &plan, &bases);
            if got != want {
                eprintln!(
                    "fs_model_bench: paths diverge on {name} chunk {chunk}: \
                     optimized {} cases / {} events, reference {} cases / {} events",
                    got.fs_cases, got.fs_events, want.fs_cases, want.fs_events
                );
                return ExitCode::FAILURE;
            }

            let mut time_path = |path: FsPath| {
                cfg.path = path;
                let t0 = Instant::now();
                let mut sink = 0u64;
                for _ in 0..REPEAT {
                    sink = sink
                        .wrapping_add(run_fs_model_prepared(&kernel, &cfg, &plan, &bases).fs_cases);
                }
                std::hint::black_box(sink);
                t0.elapsed().as_secs_f64() / REPEAT as f64
            };
            let reference_s = time_path(FsPath::Reference);
            let optimized_s = time_path(FsPath::Optimized);
            println!(
                "{name:>10} chunk {chunk:>2}: reference {:>8.2} ms, optimized {:>8.2} ms ({:>5.1}x)",
                reference_s * 1e3,
                optimized_s * 1e3,
                reference_s / optimized_s.max(1e-9)
            );
            points.push(PointResult {
                kernel: name.to_string(),
                chunk,
                reference_s,
                optimized_s,
            });
        }
    }

    let ref_total: f64 = points.iter().map(|p| p.reference_s).sum();
    let opt_total: f64 = points.iter().map(|p| p.optimized_s).sum();
    let n = points.len() as f64;
    let ref_pps = n / ref_total.max(1e-9);
    let opt_pps = n / opt_total.max(1e-9);
    let speedup = ref_total / opt_total.max(1e-9);
    println!("throughput: reference {ref_pps:.1} points/s, optimized {opt_pps:.1} points/s");
    println!("speedup: {speedup:.1}x (gate {GATE:.1}x)");
    let pass = speedup >= GATE;

    let doc = JsonValue::obj()
        .field("benchmark", "fs_model")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field("points", {
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj()
                            .field("kernel", p.kernel.as_str())
                            .field("chunk", p.chunk)
                            .field("reference_seconds", p.reference_s)
                            .field("optimized_seconds", p.optimized_s)
                            .field("speedup", p.reference_s / p.optimized_s.max(1e-9))
                    })
                    .collect(),
            )
        })
        .field("points_per_sec_before", ref_pps)
        .field("points_per_sec_after", opt_pps)
        .field("speedup", speedup)
        .field("gate", GATE)
        .field("pass", pass);
    let json_path = "BENCH_fs_model.json";
    match std::fs::write(json_path, doc.render_pretty()) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => {
            eprintln!("fs_model_bench: cannot write {json_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if pass {
        println!("PASS (>= {GATE:.1}x)");
        ExitCode::SUCCESS
    } else {
        println!("FAIL (< {GATE:.1}x)");
        ExitCode::FAILURE
    }
}
