//! FS-model hot-loop benchmark: the strength-reduced dense-table path vs
//! the reference hash-map transcription of the paper's algorithm, over the
//! bundled corpus.
//!
//! A *point* is one full model evaluation of a (kernel, threads, chunk)
//! configuration. For every point the two paths are first checked for
//! count-identical results (the optimized path is an optimization, not an
//! approximation — any divergence fails the run), then timed over enough
//! repetitions to be stable.
//!
//! Two measurement phases:
//!
//! 1. **Observability disabled** (the library default): wall-clock per-point
//!    timings. These are the official throughput figures, and the input to
//!    the obs-overhead gate — with `FS_OBS_GATE=1` the optimized points/sec
//!    must stay within 2% of the previous `BENCH_fs_model.json` baseline,
//!    proving the disabled instrumentation is free.
//! 2. **Observability enabled**: the same workload re-run with `fs-obs` on;
//!    throughput is sourced from the registry itself (dispatch counters +
//!    `fs.reference`/`fs.dense` span totals) instead of hand-rolled timers,
//!    with a drift assertion that the counters account for every run.
//!
//! Prints per-kernel timings and the aggregate points/sec before vs after;
//! writes the numbers to `BENCH_fs_model.json` (uploaded as a CI artifact)
//! and exits non-zero if the aggregate speedup is under the 3x gate.

use cost_model::{run_fs_model_prepared, FsModelConfig, FsPath};
use fs_core::{machines, obs, JsonValue};
use std::process::ExitCode;
use std::time::Instant;

/// Required aggregate speedup of the optimized path.
const GATE: f64 = 3.0;
/// Timed repetitions per (point, path).
const REPEAT: u32 = 3;
/// Max tolerated slowdown of the obs-disabled hot loop vs the recorded
/// baseline (enforced only under `FS_OBS_GATE=1`).
const OBS_OVERHEAD_GATE: f64 = 0.02;
const JSON_PATH: &str = "BENCH_fs_model.json";

struct PointResult {
    kernel: String,
    chunk: u64,
    reference_s: f64,
    optimized_s: f64,
}

struct Point {
    name: &'static str,
    chunk: u64,
    kernel: loop_ir::Kernel,
    plan: loop_ir::AccessPlan,
    bases: Vec<u64>,
}

fn main() -> ExitCode {
    let machine = machines::paper48();
    let threads = 8u32;
    let chunks = [1u64, 4];
    let kernel_names = ["linreg", "heat", "dft", "stencil", "histogram", "matmul"];

    // Read the previous run's baseline before this run overwrites it. Prefer
    // the obs-aware field; fall back to the pre-obs artifact layout.
    let baseline_pps = std::fs::read_to_string(JSON_PATH).ok().and_then(|doc| {
        fs_bench::json_number(&doc, "points_per_sec_disabled_obs")
            .or_else(|| fs_bench::json_number(&doc, "points_per_sec_after"))
    });

    println!(
        "## fs-model benchmark: {} kernels x {{1,4}} chunks, {threads} threads, {REPEAT} reps",
        kernel_names.len()
    );

    let mut grid: Vec<Point> = Vec::new();
    for name in kernel_names {
        let base = fs_core::corpus_kernel(name).expect("bundled kernel");
        for chunk in chunks {
            let kernel = fs_core::kernel_at_chunk(&base, chunk);
            // Step-1 inputs are schedule-independent; prepare once, as the
            // sweep engine does.
            let plan = kernel.access_plan();
            let bases = kernel.array_bases(machine.line_size());
            grid.push(Point {
                name,
                chunk,
                kernel,
                plan,
                bases,
            });
        }
    }

    // Per point, back to back: correctness gate, obs-disabled timed reps
    // (min-of-reps — the official figures and the overhead-gate input),
    // then the same reps with obs enabled feeding the registry. Interleaving
    // the two modes at point granularity keeps slow drift on a shared box
    // (thermal throttling, noisy neighbours) from biasing one mode.
    obs::reset();
    let mut points: Vec<PointResult> = Vec::new();
    // Total obs-disabled seconds across all reps of the optimized path —
    // the mean-based denominator the enabled-mode overhead is compared to.
    let mut disabled_opt_rep_total = 0.0f64;
    for p in &grid {
        let mut cfg = FsModelConfig::for_machine(&machine, threads);

        // Correctness gate: identical counts, field for field.
        cfg.path = FsPath::Reference;
        let want = run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases);
        cfg.path = FsPath::Optimized;
        let got = run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases);
        if got != want {
            eprintln!(
                "fs_model_bench: paths diverge on {} chunk {}: \
                 optimized {} cases / {} events, reference {} cases / {} events",
                p.name, p.chunk, got.fs_cases, got.fs_events, want.fs_cases, want.fs_events
            );
            return ExitCode::FAILURE;
        }

        // (min seconds, total seconds) over REPEAT individually timed runs.
        let mut time_path = |path: FsPath| {
            cfg.path = path;
            let mut min = f64::INFINITY;
            let mut total = 0.0f64;
            let mut sink = 0u64;
            for _ in 0..REPEAT {
                let t0 = Instant::now();
                sink = sink.wrapping_add(
                    run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases).fs_cases,
                );
                let dt = t0.elapsed().as_secs_f64();
                min = min.min(dt);
                total += dt;
            }
            std::hint::black_box(sink);
            (min, total)
        };
        let (reference_s, _) = time_path(FsPath::Reference);
        let (optimized_s, opt_total) = time_path(FsPath::Optimized);
        disabled_opt_rep_total += opt_total;

        // Same reps again with the registry live.
        obs::configure(obs::ObsConfig::enabled());
        let mut sink = 0u64;
        for path in [FsPath::Reference, FsPath::Optimized] {
            cfg.path = path;
            for _ in 0..REPEAT {
                sink = sink.wrapping_add(
                    run_fs_model_prepared(&p.kernel, &cfg, &p.plan, &p.bases).fs_cases,
                );
            }
        }
        std::hint::black_box(sink);
        obs::configure(obs::ObsConfig::disabled());

        println!(
            "{:>10} chunk {:>2}: reference {:>8.2} ms, optimized {:>8.2} ms ({:>5.1}x)",
            p.name,
            p.chunk,
            reference_s * 1e3,
            optimized_s * 1e3,
            reference_s / optimized_s.max(1e-9)
        );
        points.push(PointResult {
            kernel: p.name.to_string(),
            chunk: p.chunk,
            reference_s,
            optimized_s,
        });
    }

    let ref_total: f64 = points.iter().map(|p| p.reference_s).sum();
    let opt_total: f64 = points.iter().map(|p| p.optimized_s).sum();
    let n = points.len() as f64;
    let disabled_ref_pps = n / ref_total.max(1e-9);
    let disabled_opt_pps = n / opt_total.max(1e-9);
    let speedup = ref_total / opt_total.max(1e-9);
    println!(
        "throughput (obs disabled): reference {disabled_ref_pps:.1} points/s, \
         optimized {disabled_opt_pps:.1} points/s"
    );
    println!("speedup: {speedup:.1}x (gate {GATE:.1}x)");
    let pass = speedup >= GATE;

    // The enabled-mode runs above fed the registry; the registry is the
    // timer here — dispatch counters say how many runs happened, span totals
    // say how long each path spent.
    let snap = obs::snapshot();

    let runs_ref = snap.counter("fs.dispatch_reference");
    let runs_dense = snap.counter("fs.dispatch_dense");
    let expected = grid.len() as u64 * REPEAT as u64;
    // Drift assertion: the counters must account for exactly the runs this
    // process issued, or the instrumentation cannot be trusted as a timer.
    if runs_ref != expected || runs_dense != expected {
        eprintln!(
            "fs_model_bench: counter drift: expected {expected} runs per path, \
             counters say reference {runs_ref} / dense {runs_dense}"
        );
        return ExitCode::FAILURE;
    }
    if snap.counter("fs.model_runs") != runs_ref + runs_dense {
        eprintln!(
            "fs_model_bench: counter drift: fs.model_runs {} != dispatch sum {}",
            snap.counter("fs.model_runs"),
            runs_ref + runs_dense
        );
        return ExitCode::FAILURE;
    }
    let ref_span_s = snap.span_total_ns("fs.reference") as f64 / 1e9;
    let dense_span_s = snap.span_total_ns("fs.dense") as f64 / 1e9;
    // Model evaluations per second with the registry live, straight from
    // the registry: run counts over span totals.
    let enabled_ref_pps = runs_ref as f64 / ref_span_s.max(1e-9);
    let enabled_opt_pps = runs_dense as f64 / dense_span_s.max(1e-9);
    // Mean-vs-mean on the interleaved reps: the honest enabled-mode cost.
    let obs_overhead = dense_span_s / disabled_opt_rep_total.max(1e-9) - 1.0;
    println!(
        "throughput (obs enabled, counter-sourced): reference {enabled_ref_pps:.1} points/s, \
         optimized {enabled_opt_pps:.1} points/s"
    );
    println!(
        "obs-enabled overhead on optimized path: {:+.2}%",
        obs_overhead * 100.0
    );

    // Overhead gate: the *disabled* hot loop must not have regressed vs the
    // previous artifact. Opt-in via FS_OBS_GATE=1 so one-off local runs on
    // loaded machines don't trip it.
    let gate_on = std::env::var("FS_OBS_GATE").as_deref() == Ok("1");
    let mut obs_gate_pass = true;
    match (gate_on, baseline_pps) {
        (true, Some(base)) => {
            let floor = base * (1.0 - OBS_OVERHEAD_GATE);
            obs_gate_pass = disabled_opt_pps >= floor;
            println!(
                "obs overhead gate: disabled-obs optimized {disabled_opt_pps:.1} points/s vs \
                 baseline {base:.1} (floor {floor:.1}): {}",
                if obs_gate_pass { "PASS" } else { "FAIL" }
            );
        }
        (true, None) => {
            println!(
                "obs overhead gate: no baseline {JSON_PATH} yet; recording one (gate skipped)"
            );
        }
        (false, _) => {
            println!("obs overhead gate: not enforced (set FS_OBS_GATE=1 to enable)");
        }
    }

    let doc = JsonValue::obj()
        .field("benchmark", "fs_model")
        .field("threads", threads)
        .field("repeat", REPEAT)
        .field("points", {
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj()
                            .field("kernel", p.kernel.as_str())
                            .field("chunk", p.chunk)
                            .field("reference_seconds", p.reference_s)
                            .field("optimized_seconds", p.optimized_s)
                            .field("speedup", p.reference_s / p.optimized_s.max(1e-9))
                    })
                    .collect(),
            )
        })
        .field("points_per_sec_before", disabled_ref_pps)
        .field("points_per_sec_after", disabled_opt_pps)
        .field("points_per_sec_disabled_obs", disabled_opt_pps)
        .field("points_per_sec_enabled_obs", enabled_opt_pps)
        .field("obs_overhead_percent", obs_overhead * 100.0)
        .field(
            "obs_baseline_points_per_sec",
            baseline_pps.map(JsonValue::from).unwrap_or(JsonValue::Null),
        )
        .field("obs_gate_enforced", gate_on)
        .field("speedup", speedup)
        .field("gate", GATE)
        .field("pass", pass && obs_gate_pass);
    match std::fs::write(JSON_PATH, doc.render_pretty()) {
        Ok(()) => println!("wrote {JSON_PATH}"),
        Err(e) => {
            eprintln!("fs_model_bench: cannot write {JSON_PATH}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if pass && obs_gate_pass {
        println!("PASS (>= {GATE:.1}x)");
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL ({})",
            if pass { "obs overhead gate" } else { "speedup" }
        );
        ExitCode::FAILURE
    }
}
