//! Table III: % false-sharing overhead in the linear-regression kernel
//! (outer-loop parallel), measured vs modeled, threads 2..48, chunk 1 vs
//! 10. The paper's signature effect: the *modeled* FS decays with the
//! thread count because the total chunk runs are `n/(T*C)`.

use fs_bench::{fs_effect_table, paper48, render_fs_effect, scale, thread_counts_from_env};

fn main() {
    fs_bench::enable_sim_counters();
    let machine = paper48();
    let rows = fs_effect_table(
        scale::linreg,
        scale::LINREG_CHUNKS,
        &machine,
        &thread_counts_from_env(),
    );
    print!(
        "{}",
        render_fs_effect(
            "Table III: false-sharing overheads, linear regression (chunk 1 vs 10)",
            &rows
        )
    );
    fs_bench::eprint_sim_summary("table3_linreg");
}
