//! Fig. 6: the estimated number of FS cases grows linearly with the number
//! of chunk runs. Prints the cumulative series and the least-squares fit
//! quality for each kernel.

use cost_model::{least_squares, run_fs_model, FsModelConfig};
use fs_bench::{paper48, scale};

fn main() {
    let machine = paper48();
    let threads = 8;
    for (name, kernel) in [
        ("heat diffusion", scale::heat(1, threads)),
        ("DFT", scale::dft(1, threads)),
        ("linear regression", scale::linreg(1, threads)),
    ] {
        let mut cfg = FsModelConfig::for_machine(&machine, threads);
        cfg.max_chunk_runs = Some(512);
        let r = run_fs_model(&kernel, &cfg);
        println!("## Fig. 6: cumulative FS cases vs chunk runs — {name} ({threads} threads)");
        let stride = (r.series.len() / 16).max(1);
        println!("{:>12} {:>16}", "chunk run", "FS cases");
        for (x, y) in r.series.iter().step_by(stride) {
            println!("{x:>12} {y:>16}");
        }
        let pts: Vec<(f64, f64)> = r
            .series
            .iter()
            .map(|&(x, y)| (x as f64, y as f64))
            .collect();
        if let Some(fit) = least_squares(&pts[pts.len() / 4..]) {
            println!(
                "fit: y = {:.1} * x + {:.1}   (r^2 = {:.6})\n",
                fit.a, fit.b, fit.r2
            );
        }
    }
}
