//! Table IV: predicted vs fully modeled FS cases (and overhead %), heat
//! diffusion, nominal 20 chunk runs.

use fs_bench::{paper48, prediction_table, render_prediction, scale, thread_counts_from_env};

fn main() {
    let machine = paper48();
    let rows = prediction_table(
        scale::heat,
        scale::HEAT_CHUNKS,
        &machine,
        &thread_counts_from_env(),
        20,
    );
    print!(
        "{}",
        render_prediction(
            "Table IV: predicted vs modeled FS cases, heat diffusion (nominal 20 chunk runs)",
            &rows
        )
    );
}
