//! Criterion: the paper's efficiency claim — the linear-regression
//! predictor against the full model evaluation on the same loop.

use cost_model::{predict_fs, run_fs_model, FsModelConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use loop_ir::kernels;
use machine::presets::paper48;

fn bench_predictor(c: &mut Criterion) {
    let machine = paper48();
    let kernel = kernels::dft(64, 1536, 1);
    let cfg = FsModelConfig::for_machine(&machine, 8);

    let mut g = c.benchmark_group("predictor_vs_full");
    g.sample_size(20);
    g.bench_function("full_model", |b| b.iter(|| run_fs_model(&kernel, &cfg)));
    g.bench_function("predict_48_runs", |b| {
        b.iter(|| predict_fs(&kernel, &cfg, 48))
    });
    g.bench_function("predict_192_runs", |b| {
        b.iter(|| predict_fs(&kernel, &cfg, 192))
    });
    g.finish();

    // The fit itself is trivial; measure it for completeness.
    let pts: Vec<(f64, f64)> = (0..512).map(|i| (i as f64, 2.0 * i as f64)).collect();
    c.bench_function("least_squares_512pts", |b| {
        b.iter(|| cost_model::least_squares(&pts))
    });
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
