//! Criterion: *real* false sharing on the host — native kernels on OS
//! threads, packed vs padded and chunk 1 vs large. These benches are where
//! the repository's claims meet actual silicon.

use criterion::{criterion_group, criterion_main, Criterion};
use fs_runtime::kernels::{dotprod_partials, linreg_packed, linreg_padded, synth_points};
use fs_runtime::ThreadPool;
use std::hint::black_box;

fn bench_dotprod(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let len = 1_000_000usize;
    let x: Vec<f64> = (0..len).map(|i| (i % 1000) as f64 * 1e-3).collect();
    let y: Vec<f64> = (0..len).map(|i| ((i + 3) % 1000) as f64 * 1e-3).collect();
    let mut g = c.benchmark_group("host_dotprod");
    g.sample_size(20);
    g.bench_function("packed_partials", |b| {
        b.iter(|| black_box(dotprod_partials(&x, &y, threads, false)))
    });
    g.bench_function("padded_partials", |b| {
        b.iter(|| black_box(dotprod_partials(&x, &y, threads, true)))
    });
    g.finish();
}

fn bench_linreg_chunks(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let (n, m) = (768usize, 512usize);
    let pts = synth_points(n * m);
    let mut g = c.benchmark_group("host_linreg");
    g.sample_size(15);
    for chunk in [1u64, 10, 64] {
        g.bench_function(format!("packed_chunk{chunk}"), |b| {
            b.iter(|| black_box(linreg_packed(&pts, n, m, threads, chunk)))
        });
    }
    g.bench_function("padded_chunk1", |b| {
        b.iter(|| black_box(linreg_padded(&pts, n, m, threads, 1)))
    });
    g.finish();
}

fn bench_heat(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let (n, m) = (66usize, 2050usize);
    let a: Vec<f64> = (0..n * m).map(|i| (i % 7) as f64).collect();
    let pool = ThreadPool::new(threads);
    let mut g = c.benchmark_group("host_heat");
    g.sample_size(15);
    for chunk in [1u64, 64] {
        g.bench_function(format!("chunk{chunk}"), |b| {
            let mut out = vec![0.0; n * m];
            b.iter(|| {
                fs_runtime::kernels::heat_step(&a, &mut out, n, m, chunk, &pool);
                black_box(out[m + 1])
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dotprod, bench_linreg_chunks, bench_heat);
criterion_main!(benches);
