//! Criterion: MESI simulator throughput (accesses/second) under cache-
//! friendly, streaming, and pathological false-sharing traffic.

use cache_sim::{simulate_kernel, MultiCoreSim, SimOptions};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use loop_ir::kernels;
use machine::presets::paper48;

fn bench_raw_access_patterns(c: &mut Criterion) {
    let machine = paper48();
    let mut g = c.benchmark_group("mesi_raw");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("l1_hits", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 1);
            for i in 0..n {
                sim.access(0, (i % 8) * 8, 8, false);
            }
            sim.stats().total_accesses()
        })
    });
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 1);
            for i in 0..n {
                sim.access(0, i * 8, 8, false);
            }
            sim.stats().total_accesses()
        })
    });
    g.bench_function("pingpong_2threads", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 2);
            for i in 0..n / 2 {
                sim.access((i % 2) as u32, (i % 2) * 8, 8, true);
            }
            sim.stats().total_false_sharing()
        })
    });
    g.finish();
}

fn bench_kernel_sim(c: &mut Criterion) {
    let machine = paper48();
    let mut g = c.benchmark_group("mesi_kernels");
    g.sample_size(20);
    for (name, kernel) in [
        ("heat_chunk1", kernels::heat_diffusion(18, 962, 1)),
        ("heat_chunk64", kernels::heat_diffusion(18, 962, 64)),
        ("dft_chunk1", kernels::dft(16, 960, 1)),
        ("linreg_chunk1", kernels::linear_regression(192, 50, 1)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| simulate_kernel(&kernel, &machine, SimOptions::new(8)))
        });
    }
    g.finish();
}

fn bench_sharing_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharing_baseline");
    g.sample_size(20);
    for (name, kernel) in [
        ("heat", kernels::heat_diffusion(18, 962, 1)),
        ("linreg", kernels::linear_regression(192, 50, 1)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| cache_sim::SharingAnalysis::of_kernel(&kernel, 8, 64).census())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_raw_access_patterns,
    bench_kernel_sim,
    bench_sharing_baseline
);
criterion_main!(benches);
