//! Criterion: ablations of the design choices DESIGN.md calls out.
//!
//! * stack depth (L1-sized vs L1+L2-sized fully-associative cache states),
//! * faithful counting vs invalidate-on-detect,
//! * line- vs byte-granularity conflict counting,
//! * per-iteration vs per-chunk trace interleaving in the simulator.
//!
//! Each bench also prints (once) the effect of the ablation on the FS
//! count so `cargo bench` output records accuracy, not just speed.

use cache_sim::{Interleave, MultiCoreSim, SimOptions, TraceGen};
use cost_model::{run_fs_model, FsModelConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use loop_ir::kernels;
use machine::presets::paper48;
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_ablation_effects() {
    let machine = paper48();
    let kernel = kernels::dft(32, 960, 1);
    let base_cfg = FsModelConfig::for_machine(&machine, 8);
    let base = run_fs_model(&kernel, &base_cfg);

    let mut deep = base_cfg.clone();
    deep.stack_lines =
        (machine.caches.levels[0].size_bytes + machine.caches.levels[1].size_bytes) as usize / 64;
    let deep_r = run_fs_model(&kernel, &deep);

    let mut inval = base_cfg.clone();
    inval.invalidate_on_detect = true;
    let inval_r = run_fs_model(&kernel, &inval);

    let mut linegran = base_cfg.clone();
    linegran.count_true_sharing = true;
    let line_r = run_fs_model(&kernel, &linegran);

    println!("--- ablation effects on FS cases (dft, 8 threads) ---");
    println!(
        "baseline (L1 stack, faithful, byte-split): {}",
        base.fs_cases
    );
    println!(
        "L1+L2-deep stacks:                         {}",
        deep_r.fs_cases
    );
    println!(
        "invalidate-on-detect:                      {}",
        inval_r.fs_cases
    );
    println!(
        "line-granularity (paper counting):         {}",
        line_r.fs_cases
    );

    let mut setassoc = base_cfg.clone();
    setassoc.stack_sets = 64; // 16-way over the same capacity
    let sa_r = run_fs_model(&kernel, &setassoc);
    println!(
        "16-way set-associative cache states:       {}",
        sa_r.fs_cases
    );

    let gen = TraceGen::new(&kernel, 8, 64);
    for (name, il) in [
        ("per-iteration", Interleave::PerIteration),
        ("skewed", Interleave::PerIterationSkewed),
        ("per-chunk", Interleave::PerChunk),
    ] {
        let mut sim = MultiCoreSim::new(&machine, 8);
        gen.for_each_interleaved(il, |a| sim.access(a.thread, a.addr, a.size, a.is_write));
        println!(
            "sim interleave {name:>13}: fs misses = {}",
            sim.stats().total_false_sharing()
        );
    }

    // Prefetcher on/off: streaming kernel (heat) vs RMW kernel (dft).
    for (kname, k) in [
        ("heat", kernels::heat_diffusion(18, 962, 1)),
        ("dft", kernels::dft(16, 960, 1)),
    ] {
        let g = TraceGen::new(&k, 8, 64);
        for pf in [false, true] {
            let mut sim = MultiCoreSim::new(&machine, 8);
            if pf {
                sim = sim.with_prefetchers();
            }
            g.for_each_interleaved(Interleave::PerIteration, |a| {
                sim.access(a.thread, a.addr, a.size, a.is_write)
            });
            println!(
                "sim {kname:>5} prefetch={:<5}: makespan = {:>9} cy, fs = {}",
                pf,
                sim.stats().makespan_cycles(),
                sim.stats().total_false_sharing()
            );
        }
    }
}

fn bench_ablations(c: &mut Criterion) {
    PRINT_ONCE.call_once(print_ablation_effects);

    let machine = paper48();
    let kernel = kernels::dft(16, 960, 1);
    let mut g = c.benchmark_group("ablations");
    g.sample_size(20);

    let base = FsModelConfig::for_machine(&machine, 8);
    g.bench_function("model_l1_stack", |b| {
        b.iter(|| run_fs_model(&kernel, &base))
    });

    let mut deep = base.clone();
    deep.stack_lines *= 9; // ~L1+L2
    g.bench_function("model_deep_stack", |b| {
        b.iter(|| run_fs_model(&kernel, &deep))
    });

    let mut inval = base.clone();
    inval.invalidate_on_detect = true;
    g.bench_function("model_invalidate_on_detect", |b| {
        b.iter(|| run_fs_model(&kernel, &inval))
    });

    let gen = TraceGen::new(&kernel, 8, 64);
    g.bench_function("sim_prefetch_on", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 8).with_prefetchers();
            gen.for_each_interleaved(Interleave::PerIteration, |a| {
                sim.access(a.thread, a.addr, a.size, a.is_write)
            });
            sim.stats().makespan_cycles()
        })
    });
    g.bench_function("sim_prefetch_off", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 8);
            gen.for_each_interleaved(Interleave::PerIteration, |a| {
                sim.access(a.thread, a.addr, a.size, a.is_write)
            });
            sim.stats().makespan_cycles()
        })
    });
    g.bench_function("sim_per_iteration_interleave", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 8);
            gen.for_each_interleaved(Interleave::PerIteration, |a| {
                sim.access(a.thread, a.addr, a.size, a.is_write)
            });
            sim.stats().total_false_sharing()
        })
    });
    g.bench_function("sim_per_chunk_interleave", |b| {
        b.iter(|| {
            let mut sim = MultiCoreSim::new(&machine, 8);
            gen.for_each_interleaved(Interleave::PerChunk, |a| {
                sim.access(a.thread, a.addr, a.size, a.is_write)
            });
            sim.stats().total_false_sharing()
        })
    });
    g.finish();

    // Set-associative vs fully-associative simulator caches (the paper's
    // §III-C approximation argument).
    let mut fa_machine = paper48();
    for l in &mut fa_machine.caches.levels {
        l.associativity = machine::Associativity::Full;
    }
    let mut g2 = c.benchmark_group("associativity");
    g2.sample_size(20);
    for (name, m) in [("set_assoc", &machine), ("fully_assoc", &fa_machine)] {
        g2.bench_function(name, |b| {
            b.iter(|| cache_sim::simulate_kernel(&kernel, m, SimOptions::new(8)))
        });
    }
    g2.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
