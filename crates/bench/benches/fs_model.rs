//! Criterion: throughput of the FS cost model itself (the cost a compiler
//! pays at compile time), across kernels and team sizes.

use cost_model::{run_fs_model, FsModelConfig, FsPath};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use loop_ir::kernels;
use machine::presets::paper48;

fn bench_fs_model(c: &mut Criterion) {
    let machine = paper48();
    let mut g = c.benchmark_group("fs_model");
    for threads in [2u32, 8, 48] {
        let kernel = kernels::heat_diffusion(18, 962, 1);
        let iters = kernel.nest.total_iterations().unwrap();
        g.throughput(Throughput::Elements(iters));
        g.bench_with_input(BenchmarkId::new("heat", threads), &threads, |b, &t| {
            let cfg = FsModelConfig::for_machine(&machine, t);
            b.iter(|| run_fs_model(&kernel, &cfg));
        });
    }
    for threads in [2u32, 8, 48] {
        let kernel = kernels::dft(16, 960, 1);
        let iters = kernel.nest.total_iterations().unwrap();
        g.throughput(Throughput::Elements(iters));
        g.bench_with_input(BenchmarkId::new("dft", threads), &threads, |b, &t| {
            let cfg = FsModelConfig::for_machine(&machine, t);
            b.iter(|| run_fs_model(&kernel, &cfg));
        });
    }
    let kernel = kernels::linear_regression(192, 80, 1);
    let iters = kernel.nest.total_iterations().unwrap();
    g.throughput(Throughput::Elements(iters));
    g.bench_function("linreg/8", |b| {
        let cfg = FsModelConfig::for_machine(&machine, 8);
        b.iter(|| run_fs_model(&kernel, &cfg));
    });
    g.finish();
}

/// The two implementations of the same model, head to head (the gate for
/// the ratio lives in the `fs_model_bench` binary; this gives the per-kernel
/// criterion view).
fn bench_fs_paths(c: &mut Criterion) {
    let machine = paper48();
    let mut g = c.benchmark_group("fs_model_paths");
    for (name, kernel) in [
        ("heat", kernels::heat_diffusion(18, 962, 1)),
        ("dft", kernels::dft(16, 960, 1)),
        ("transpose", kernels::transpose(96, 96, 1)),
    ] {
        let iters = kernel.nest.total_iterations().unwrap();
        g.throughput(Throughput::Elements(iters));
        for path in [FsPath::Optimized, FsPath::Reference] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("{path:?}")),
                &path,
                |b, &p| {
                    let mut cfg = FsModelConfig::for_machine(&machine, 8);
                    cfg.path = p;
                    b.iter(|| run_fs_model(&kernel, &cfg));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fs_model, bench_fs_paths);
criterion_main!(benches);
