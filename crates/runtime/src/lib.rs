//! An OpenMP-like parallel-for runtime with static round-robin chunk
//! scheduling — the execution substrate the reproduction uses in place of
//! OpenMP.
//!
//! * [`parallel_for`] — scoped-thread `schedule(static, chunk)` loops.
//! * [`pool`] — a persistent worker team for kernels that enter a
//!   worksharing region repeatedly (heat diffusion enters one per outer
//!   iteration).
//! * [`shared`] — the disjoint-write shared-slice idiom OpenMP programs use
//!   implicitly.
//! * [`cache`] — a generic sharded-mutex container ([`Sharded`]) for caches
//!   shared across worker threads without a single global lock.
//! * [`spsc`] — bounded single-producer single-consumer queues
//!   ([`SpscQueue`]), the batch conduit between the sharded-replay
//!   partitioner and its shard workers.
//! * [`kernels`] — native implementations of the paper's kernels (and
//!   padded variants) that really false-share on the host machine.
//! * [`measure()`] — wall-clock measurement with warmup and repetition.

pub mod cache;
pub mod kernels;
pub mod measure;
pub mod parallel_for;
pub mod pool;
pub mod shared;
pub mod spsc;

pub use cache::Sharded;
pub use measure::{measure, relative_overhead, Measurement};
pub use parallel_for::{chunks_of_thread, parallel_for_each, parallel_for_static};
pub use pool::ThreadPool;
pub use shared::SharedSlice;
pub use spsc::SpscQueue;
