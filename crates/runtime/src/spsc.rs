//! Bounded single-producer single-consumer handoff queues.
//!
//! The sharded replay engine feeds each shard worker batches of a few
//! thousand line operations, so the queue only has to be cheap at *batch*
//! granularity — a `Mutex<VecDeque>` with two condvars is plenty (one lock
//! per ~4096 simulated operations) and keeps the crate dependency-free.
//! The bound applies backpressure: a producer that outruns a shard blocks
//! instead of buffering the whole trace.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO for exactly one producer and one consumer (nothing
/// enforces that cardinality — it is just the only shape the blocking
/// protocol is tuned for).
pub struct SpscQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> SpscQueue<T> {
    /// A queue buffering at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        SpscQueue {
            inner: Mutex::new(Inner {
                buf: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue `item`, blocking while the queue is full. Pushing to a
    /// closed queue drops the item (the consumer is gone and will never
    /// pop it).
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().expect("spsc lock poisoned");
        while inner.buf.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).expect("spsc lock poisoned");
        }
        if inner.closed {
            return;
        }
        inner.buf.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Dequeue the next item, blocking while the queue is empty and open.
    /// `None` means closed *and* drained — the consumer's loop exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("spsc lock poisoned");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("spsc lock poisoned");
        }
    }

    /// Mark the stream finished: the consumer drains what is buffered and
    /// then sees `None`; a blocked producer wakes and drops its item.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("spsc lock poisoned");
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_survives_the_handoff() {
        let q = Arc::new(SpscQueue::new(4));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..1000u64 {
                    q.push(i);
                }
                q.close();
            })
        };
        let mut got = Vec::new();
        while let Some(i) = q.pop() {
            got.push(i);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn close_drains_buffered_items_then_ends() {
        let q = SpscQueue::new(8);
        q.push(1);
        q.push(2);
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays closed
    }

    #[test]
    fn bounded_producer_blocks_until_consumed() {
        let q = Arc::new(SpscQueue::new(1));
        q.push(0u32);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(1); // must block until the consumer pops
                q.close();
            })
        };
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        producer.join().unwrap();
    }

    #[test]
    fn push_after_close_is_dropped() {
        let q = SpscQueue::new(2);
        q.close();
        q.push(7u8);
        assert_eq!(q.pop(), None);
    }
}
