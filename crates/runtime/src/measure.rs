//! Wall-clock measurement harness.

use std::time::{Duration, Instant};

/// Summary of repeated timed runs. Runs are sorted once at construction so
/// the order statistics (`min`/`max`/`median`) are plain indexing instead
/// of a clone-and-sort per call.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Run times in ascending order.
    sorted: Vec<Duration>,
}

impl Measurement {
    pub fn new(mut runs: Vec<Duration>) -> Self {
        runs.sort_unstable();
        Measurement { sorted: runs }
    }

    /// The measured run times, ascending (insertion order is not kept).
    pub fn runs(&self) -> &[Duration] {
        &self.sorted
    }

    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    pub fn min(&self) -> Duration {
        self.sorted.first().copied().unwrap_or_default()
    }

    pub fn max(&self) -> Duration {
        self.sorted.last().copied().unwrap_or_default()
    }

    /// Upper median (element at index `len / 2`), matching the historical
    /// behavior on even-length run sets.
    pub fn median(&self) -> Duration {
        if self.sorted.is_empty() {
            return Duration::ZERO;
        }
        self.sorted[self.sorted.len() / 2]
    }

    pub fn mean(&self) -> Duration {
        if self.sorted.is_empty() {
            return Duration::ZERO;
        }
        self.sorted.iter().sum::<Duration>() / self.sorted.len() as u32
    }

    /// Median in seconds, the number the experiment tables print.
    pub fn seconds(&self) -> f64 {
        self.median().as_secs_f64()
    }
}

/// Time `body` `reps` times after `warmups` unmeasured runs.
pub fn measure(warmups: usize, reps: usize, mut body: impl FnMut()) -> Measurement {
    for _ in 0..warmups {
        body();
    }
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        body();
        runs.push(start.elapsed());
    }
    Measurement::new(runs)
}

/// Relative slowdown of `slow` vs `fast`: `(slow - fast)/slow`, the
/// "measured FS effect on execution time" of the paper's Tables I–III.
pub fn relative_overhead(slow: f64, fast: f64) -> f64 {
    if slow <= 0.0 {
        0.0
    } else {
        ((slow - fast) / slow).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_over_known_runs() {
        let m = Measurement::new(vec![
            Duration::from_millis(30),
            Duration::from_millis(10),
            Duration::from_millis(20),
        ]);
        assert_eq!(m.min(), Duration::from_millis(10));
        assert_eq!(m.max(), Duration::from_millis(30));
        assert_eq!(m.median(), Duration::from_millis(20));
        assert_eq!(m.mean(), Duration::from_millis(20));
        assert!((m.seconds() - 0.020).abs() < 1e-9);
        assert_eq!(
            m.runs(),
            &[
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(30),
            ]
        );
    }

    #[test]
    fn measure_runs_the_right_number_of_times() {
        let mut calls = 0;
        let m = measure(2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn relative_overhead_basics() {
        assert!((relative_overhead(2.0, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_overhead(1.0, 2.0), 0.0, "clamped at zero");
        assert_eq!(relative_overhead(0.0, 1.0), 0.0);
    }

    #[test]
    fn empty_measurement_is_zero() {
        let m = Measurement::new(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.min(), Duration::ZERO);
        assert_eq!(m.max(), Duration::ZERO);
        assert_eq!(m.median(), Duration::ZERO);
        assert_eq!(m.mean(), Duration::ZERO);
        assert_eq!(m.seconds(), 0.0);
    }

    #[test]
    fn even_length_uses_upper_median() {
        let m = Measurement::new(vec![
            Duration::from_millis(40),
            Duration::from_millis(10),
            Duration::from_millis(20),
            Duration::from_millis(30),
        ]);
        // len/2 = index 2 of [10, 20, 30, 40] -> 30 ms (upper median).
        assert_eq!(m.median(), Duration::from_millis(30));
        assert_eq!(m.mean(), Duration::from_millis(25));
        assert_eq!(m.min(), Duration::from_millis(10));
        assert_eq!(m.max(), Duration::from_millis(40));
    }
}
