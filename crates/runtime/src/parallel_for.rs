//! OpenMP-style `parallel for schedule(static, chunk)` on OS threads.

/// The chunks (as iteration ranges) thread `t` of `threads` executes for a
/// `trip`-iteration loop under `schedule(static, chunk)`.
pub fn chunks_of_thread(
    trip: u64,
    threads: usize,
    chunk: u64,
    t: usize,
) -> impl Iterator<Item = std::ops::Range<u64>> {
    let chunk = chunk.max(1);
    let num_chunks = trip.div_ceil(chunk);
    (t as u64..num_chunks)
        .step_by(threads.max(1))
        .map(move |c| {
            let lo = c * chunk;
            lo..(lo + chunk).min(trip)
        })
}

/// Run `body(thread, range)` for every chunk, distributing chunks to
/// `threads` scoped OS threads round-robin — the scheduling the paper's
/// model assumes. Blocks until the loop (and its implicit barrier)
/// completes.
pub fn parallel_for_static<F>(trip: u64, threads: usize, chunk: u64, body: F)
where
    F: Fn(usize, std::ops::Range<u64>) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        for r in chunks_of_thread(trip, 1, chunk, 0) {
            body(0, r);
        }
        return;
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let body = &body;
            s.spawn(move || {
                for r in chunks_of_thread(trip, threads, chunk, t) {
                    body(t, r);
                }
            });
        }
    });
}

/// Per-iteration convenience wrapper over [`parallel_for_static`].
pub fn parallel_for_each<F>(trip: u64, threads: usize, chunk: u64, body: F)
where
    F: Fn(usize, u64) + Sync,
{
    parallel_for_static(trip, threads, chunk, |t, r| {
        for i in r {
            body(t, i);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunk_assignment_matches_round_robin() {
        let c: Vec<_> = chunks_of_thread(14, 2, 3, 0).collect();
        assert_eq!(c, vec![0..3, 6..9, 12..14]);
        let c1: Vec<_> = chunks_of_thread(14, 2, 3, 1).collect();
        assert_eq!(c1, vec![3..6, 9..12]);
    }

    #[test]
    fn every_iteration_executes_exactly_once() {
        for &(trip, threads, chunk) in &[(100u64, 4usize, 1u64), (97, 3, 7), (5, 8, 2), (64, 1, 64)]
        {
            let counts: Vec<AtomicU64> = (0..trip).map(|_| AtomicU64::new(0)).collect();
            parallel_for_each(trip, threads, chunk, |_, i| {
                counts[i as usize].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "iteration {i} (trip={trip} T={threads} C={chunk})"
                );
            }
        }
    }

    #[test]
    fn thread_ids_are_in_range() {
        let max_t = AtomicU64::new(0);
        parallel_for_each(1000, 4, 8, |t, _| {
            max_t.fetch_max(t as u64, Ordering::Relaxed);
        });
        assert!(max_t.load(Ordering::Relaxed) < 4);
    }

    #[test]
    fn empty_loop_is_fine() {
        parallel_for_each(0, 4, 1, |_, _| panic!("no iterations expected"));
    }

    #[test]
    fn single_thread_runs_inline() {
        let sum = AtomicU64::new(0);
        parallel_for_each(10, 1, 3, |t, i| {
            assert_eq!(t, 0);
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }
}
