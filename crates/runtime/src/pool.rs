//! A persistent worker pool: spawn once, run many parallel regions.
//!
//! Kernels like heat diffusion enter a worksharing region once per outer
//! iteration; re-spawning OS threads each time would swamp the measurement
//! with spawn latency (the real OpenMP runtime keeps its team parked on a
//! futex for exactly this reason).

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Arc<dyn Fn(usize) + Send + Sync>;

enum Msg {
    Run(Job),
    Quit,
}

/// A fixed-size pool. Dropping the pool joins all workers.
pub struct ThreadPool {
    senders: Vec<SyncSender<Msg>>,
    done_rx: Receiver<()>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `threads` workers (ids `0..threads`).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (done_tx, done_rx) = sync_channel::<()>(threads);
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (tx, rx) = sync_channel::<Msg>(1);
            let done = done_tx.clone();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("fs-worker-{t}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                Msg::Run(job) => {
                                    {
                                        let _span = fs_obs::span("pool.job");
                                        job(t);
                                    }
                                    done.send(()).expect("pool owner vanished");
                                }
                                Msg::Quit => break,
                            }
                        }
                    })
                    .expect("failed to spawn worker"),
            );
        }
        ThreadPool {
            senders,
            done_rx,
            handles,
        }
    }

    pub fn num_threads(&self) -> usize {
        self.senders.len()
    }

    /// Run `job(thread_id)` on every worker and wait for all to finish (the
    /// implicit barrier of a worksharing region).
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        let job: Job = Arc::new(job);
        for tx in &self.senders {
            tx.send(Msg::Run(Arc::clone(&job))).expect("worker died");
        }
        for _ in 0..self.senders.len() {
            self.done_rx.recv().expect("worker died");
        }
    }

    /// Like [`Self::run`] but for non-'static jobs (scoped): the pool
    /// guarantees the job does not outlive the call.
    pub fn run_scoped<'env, F>(&self, job: F)
    where
        F: Fn(usize) + Send + Sync + 'env,
    {
        // SAFETY: `run` blocks until every worker has finished executing
        // the job and signalled completion, so no reference escapes 'env.
        let job: Box<dyn Fn(usize) + Send + Sync + 'env> = Box::new(job);
        let job: Box<dyn Fn(usize) + Send + Sync + 'static> = unsafe { std::mem::transmute(job) };
        self.run(job);
    }

    /// Like [`Self::run_scoped`], but the *calling thread* runs `feeder`
    /// concurrently with the workers — the producer/consumer shape of the
    /// sharded replay, where the caller partitions the trace into queues
    /// the workers drain. Returns once `feeder` has returned and every
    /// worker has finished `job`.
    pub fn run_scoped_with<'env, F, P>(&self, job: F, feeder: P)
    where
        F: Fn(usize) + Send + Sync + 'env,
        P: FnOnce(),
    {
        // SAFETY: the Drain guard below blocks until every worker has
        // signalled completion — on normal return *and* if `feeder`
        // unwinds — so no reference escapes 'env.
        let job: Box<dyn Fn(usize) + Send + Sync + 'env> = Box::new(job);
        let job: Box<dyn Fn(usize) + Send + Sync + 'static> = unsafe { std::mem::transmute(job) };
        let job: Job = Arc::from(job);
        for tx in &self.senders {
            tx.send(Msg::Run(Arc::clone(&job))).expect("worker died");
        }
        struct Drain<'a> {
            pool: &'a ThreadPool,
            pending: usize,
        }
        impl Drop for Drain<'_> {
            fn drop(&mut self) {
                for _ in 0..self.pending {
                    self.pool.done_rx.recv().expect("worker died");
                }
            }
        }
        let _barrier = Drain {
            pool: self,
            pending: self.senders.len(),
        };
        feeder();
    }

    /// Static round-robin parallel-for on the pool.
    pub fn parallel_for<'env, F>(&self, trip: u64, chunk: u64, body: F)
    where
        F: Fn(usize, std::ops::Range<u64>) + Send + Sync + 'env,
    {
        let threads = self.num_threads();
        self.run_scoped(move |t| {
            for r in crate::parallel_for::chunks_of_thread(trip, threads, chunk, t) {
                body(t, r);
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Quit);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn run_executes_on_every_worker() {
        let pool = ThreadPool::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        pool.run(move |_| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn regions_are_serialized_by_barrier() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for round in 0..10u64 {
            let c = Arc::clone(&counter);
            pool.run(move |_| {
                // All threads of round r see at least r*3 completed adds.
                assert!(c.load(Ordering::SeqCst) >= round * 3);
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn scoped_jobs_can_borrow_stack_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.run_scoped(|t| {
            data[t].store(t as u64 + 1, Ordering::Relaxed);
        });
        let v: Vec<u64> = data.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        assert_eq!(v, vec![1, 2, 3, 4]);
    }

    #[test]
    fn run_scoped_with_overlaps_feeder_and_workers() {
        let pool = ThreadPool::new(3);
        let fed = Arc::new(AtomicU64::new(0));
        let drained = AtomicU64::new(0);
        pool.run_scoped_with(
            |_t| {
                // Each worker spins until the feeder has produced, proving
                // the feeder really runs concurrently with the jobs.
                while fed.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
                drained.fetch_add(1, Ordering::Relaxed);
            },
            || {
                fed.store(1, Ordering::Release);
            },
        );
        assert_eq!(drained.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_scoped_with_barrier_precedes_return() {
        let pool = ThreadPool::new(4);
        for _ in 0..20 {
            let hits = AtomicU64::new(0);
            pool.run_scoped_with(
                |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                },
                || {},
            );
            assert_eq!(hits.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn pool_parallel_for_covers_all_iterations() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(100, 7, |_, r| {
            for i in r {
                counts[i as usize].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = ThreadPool::new(2);
        pool.run(|_| {});
        drop(pool); // must not hang
    }
}
