//! Shared-slice utilities for disjoint parallel writes.
//!
//! OpenMP kernels freely let every thread write *its own* elements of a
//! shared array; safe Rust's `chunks_mut` cannot express the interleaved
//! (round-robin) ownership a `schedule(static, chunk)` loop produces. The
//! [`SharedSlice`] wrapper reintroduces that idiom with an explicit safety
//! contract: callers guarantee that no element is written by two threads
//! concurrently (which the static schedule provides by construction — each
//! iteration, and therefore each written element, belongs to exactly one
//! thread).

use std::cell::UnsafeCell;

/// A slice that may be mutated concurrently from several threads at
/// *disjoint* indices.
///
/// ```
/// # use fs_runtime::shared::SharedSlice;
/// let mut data = vec![0u64; 8];
/// let shared = SharedSlice::new(&mut data);
/// std::thread::scope(|s| {
///     for t in 0..2 {
///         let shared = &shared;
///         s.spawn(move || {
///             for i in (t..8).step_by(2) {
///                 // Safety contract: thread t only writes indices ≡ t (mod 2).
///                 unsafe { *shared.get_mut(i) = t as u64 };
///             }
///         });
///     }
/// });
/// assert_eq!(data, vec![0, 1, 0, 1, 0, 1, 0, 1]);
/// ```
pub struct SharedSlice<'a, T> {
    data: &'a [UnsafeCell<T>],
}

// SAFETY: access discipline is delegated to the caller per the type's
// contract; the wrapper itself adds no aliasing.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice for the duration of a parallel region.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`; exclusive
        // access to the whole slice is held for 'a.
        let data = unsafe {
            std::slice::from_raw_parts(slice.as_ptr() as *const UnsafeCell<T>, slice.len())
        };
        SharedSlice { data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw mutable access to element `i`.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent access (read or write) to
    /// index `i` from another thread for the lifetime of the returned
    /// reference. Bounds are checked.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.data[i].get()
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No concurrent write to index `i` may be in progress.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        &*self.data[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_disjoint_writes() {
        let mut v = vec![0u32; 64];
        let s = SharedSlice::new(&mut v);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let s = &s;
                scope.spawn(move || {
                    for i in (t..64).step_by(4) {
                        unsafe { *s.get_mut(i) = t as u32 + 1 };
                    }
                });
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i % 4) as u32 + 1);
        }
    }

    #[test]
    fn len_and_get() {
        let mut v = vec![7i64; 5];
        let s = SharedSlice::new(&mut v);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        unsafe {
            *s.get_mut(2) = 9;
            assert_eq!(*s.get(2), 9);
            assert_eq!(*s.get(0), 7);
        }
    }

    #[test]
    #[should_panic]
    fn bounds_are_checked() {
        let mut v = vec![0u8; 2];
        let s = SharedSlice::new(&mut v);
        unsafe {
            let _ = s.get(5);
        }
    }
}
