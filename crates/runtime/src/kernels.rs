//! Native (really-executing) implementations of the paper's kernels, used
//! by the examples to demonstrate *actual* false sharing on the host
//! machine, and by tests to validate the runtime against serial references.
//!
//! Accumulator updates go through volatile read-modify-write: the C kernels
//! the paper measures update `tid_args[j].sx` in memory every iteration
//! (that is precisely what makes them false-share); a Rust compiler would
//! otherwise happily keep the accumulator in a register and erase the
//! effect being studied.

use crate::parallel_for::parallel_for_static;
use crate::pool::ThreadPool;
use crate::shared::SharedSlice;

/// The five running sums of the Phoenix linear-regression kernel. 40 bytes
/// packed — two accumulators share a 64-byte line.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinRegAcc {
    pub sx: f64,
    pub sxx: f64,
    pub sy: f64,
    pub syy: f64,
    pub sxy: f64,
}

/// A cache-line-padded accumulator: the classic FS mitigation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(align(64))]
pub struct PaddedLinRegAcc(pub LinRegAcc);

#[inline]
unsafe fn vadd(p: *mut f64, v: f64) {
    std::ptr::write_volatile(p, std::ptr::read_volatile(p) + v);
}

/// Accumulate one point into an accumulator through memory.
#[inline]
unsafe fn accumulate(acc: *mut LinRegAcc, x: f64, y: f64) {
    let base = acc as *mut f64;
    vadd(base, x);
    vadd(base.add(1), x * x);
    vadd(base.add(2), y);
    vadd(base.add(3), y * y);
    vadd(base.add(4), x * y);
}

/// Parallel linear regression over `n` independent series of `m_inner`
/// points each (`points[j * m_inner + i]`), `schedule(static, chunk)` on
/// the outer loop — the paper's Fig. 1.
pub fn linreg_packed(
    points: &[(f64, f64)],
    n: usize,
    m_inner: usize,
    threads: usize,
    chunk: u64,
) -> Vec<LinRegAcc> {
    assert_eq!(points.len(), n * m_inner);
    let mut accs = vec![LinRegAcc::default(); n];
    {
        let shared = SharedSlice::new(&mut accs);
        parallel_for_static(n as u64, threads, chunk, |_, r| {
            for j in r {
                // SAFETY: iteration j is owned by exactly one thread.
                let acc = unsafe { shared.get_mut(j as usize) } as *mut LinRegAcc;
                for i in 0..m_inner {
                    let (x, y) = points[j as usize * m_inner + i];
                    unsafe { accumulate(acc, x, y) };
                }
            }
        });
    }
    accs
}

/// [`linreg_packed`] with line-padded accumulators (no false sharing).
pub fn linreg_padded(
    points: &[(f64, f64)],
    n: usize,
    m_inner: usize,
    threads: usize,
    chunk: u64,
) -> Vec<PaddedLinRegAcc> {
    assert_eq!(points.len(), n * m_inner);
    let mut accs = vec![PaddedLinRegAcc::default(); n];
    {
        let shared = SharedSlice::new(&mut accs);
        parallel_for_static(n as u64, threads, chunk, |_, r| {
            for j in r {
                let acc = unsafe { &mut shared.get_mut(j as usize).0 } as *mut LinRegAcc;
                for i in 0..m_inner {
                    let (x, y) = points[j as usize * m_inner + i];
                    unsafe { accumulate(acc, x, y) };
                }
            }
        });
    }
    accs
}

/// Serial reference for the linear-regression kernels.
pub fn linreg_serial(points: &[(f64, f64)], n: usize, m_inner: usize) -> Vec<LinRegAcc> {
    let mut accs = vec![LinRegAcc::default(); n];
    for j in 0..n {
        for i in 0..m_inner {
            let (x, y) = points[j * m_inner + i];
            let a = &mut accs[j];
            a.sx += x;
            a.sxx += x * x;
            a.sy += y;
            a.syy += y * y;
            a.sxy += x * y;
        }
    }
    accs
}

/// One sweep of 2-D heat diffusion (`n x m`, halo of 1), inner loop
/// work-shared on `pool` with `schedule(static, chunk)`; writes `b` from
/// `a`.
pub fn heat_step(a: &[f64], b: &mut [f64], n: usize, m: usize, chunk: u64, pool: &ThreadPool) {
    assert_eq!(a.len(), n * m);
    assert_eq!(b.len(), n * m);
    let shared = SharedSlice::new(b);
    for i in 1..n - 1 {
        let a = &a;
        let shared = &shared;
        pool.parallel_for((m - 2) as u64, chunk, move |_, r| {
            for jj in r {
                let j = jj as usize + 1;
                let c = a[i * m + j];
                let lap =
                    a[(i - 1) * m + j] + a[(i + 1) * m + j] + a[i * m + j - 1] + a[i * m + j + 1]
                        - 4.0 * c;
                // SAFETY: element (i, j) belongs to exactly one thread.
                unsafe { *shared.get_mut(i * m + j) = c + 0.1 * lap };
            }
        });
    }
}

/// Serial reference for [`heat_step`].
pub fn heat_step_serial(a: &[f64], b: &mut [f64], n: usize, m: usize) {
    for i in 1..n - 1 {
        for j in 1..m - 1 {
            let c = a[i * m + j];
            let lap = a[(i - 1) * m + j] + a[(i + 1) * m + j] + a[i * m + j - 1] + a[i * m + j + 1]
                - 4.0 * c;
            b[i * m + j] = c + 0.1 * lap;
        }
    }
}

/// Direct DFT: for each input sample, scatter its twiddled contribution
/// into all output bins, inner (bin) loop work-shared with
/// `schedule(static, chunk)` — the paper's DFT kernel shape.
pub fn dft_scatter(x: &[f64], re: &mut [f64], im: &mut [f64], chunk: u64, pool: &ThreadPool) {
    let n_in = x.len();
    let n_out = re.len();
    assert_eq!(im.len(), n_out);
    let re_s = SharedSlice::new(re);
    let im_s = SharedSlice::new(im);
    for n in 0..n_in {
        let (x, re_s, im_s) = (&x, &re_s, &im_s);
        pool.parallel_for(n_out as u64, chunk, move |_, r| {
            for k in r {
                let ang = -2.0 * std::f64::consts::PI * k as f64 * n as f64 / n_in as f64;
                let (s, c) = ang.sin_cos();
                // SAFETY: bin k belongs to exactly one thread.
                unsafe {
                    vadd(re_s.get_mut(k as usize), x[n] * c);
                    vadd(im_s.get_mut(k as usize), x[n] * s);
                }
            }
        });
    }
}

/// Serial reference DFT (direct evaluation).
#[allow(clippy::needless_range_loop)]
pub fn dft_serial(x: &[f64], re: &mut [f64], im: &mut [f64]) {
    let n_in = x.len();
    for k in 0..re.len() {
        let (mut sr, mut si) = (0.0, 0.0);
        for n in 0..n_in {
            let ang = -2.0 * std::f64::consts::PI * k as f64 * n as f64 / n_in as f64;
            let (s, c) = ang.sin_cos();
            sr += x[n] * c;
            si += x[n] * s;
        }
        re[k] = sr;
        im[k] = si;
    }
}

/// Dot product with per-thread partials. `padded = false` packs the
/// partials on one line (maximal false sharing); `true` pads each to its
/// own line. Returns the dot product.
pub fn dotprod_partials(x: &[f64], y: &[f64], threads: usize, padded: bool) -> f64 {
    assert_eq!(x.len(), y.len());
    let stride = if padded { 8 } else { 1 };
    let mut partials = vec![0.0f64; threads.max(1) * stride];
    {
        let shared = SharedSlice::new(&mut partials);
        let len = x.len() as u64;
        let per = len.div_ceil(threads.max(1) as u64);
        parallel_for_static(threads.max(1) as u64, threads, 1, |_, r| {
            for t in r {
                let lo = t * per;
                let hi = ((t + 1) * per).min(len);
                // SAFETY: slot t*stride is owned by this thread.
                let slot = unsafe { shared.get_mut(t as usize * stride) } as *mut f64;
                for i in lo..hi {
                    unsafe { vadd(slot, x[i as usize] * y[i as usize]) };
                }
            }
        });
    }
    partials.iter().step_by(stride).sum()
}

/// Matrix transpose `b[j][i] = a[i][j]` (`a` is `n x m`), parallel over the
/// source rows with `schedule(static, chunk)` — with `chunk = 1` adjacent
/// threads write adjacent elements of every destination row.
pub fn transpose(a: &[f64], b: &mut [f64], n: usize, m: usize, threads: usize, chunk: u64) {
    assert_eq!(a.len(), n * m);
    assert_eq!(b.len(), n * m);
    let shared = SharedSlice::new(b);
    parallel_for_static(n as u64, threads, chunk, |_, r| {
        for i in r {
            for j in 0..m {
                // SAFETY: destination column i belongs to one thread.
                unsafe { *shared.get_mut(j * n + i as usize) = a[i as usize * m + j] };
            }
        }
    });
}

/// Matrix multiply `c[i][j] += a[i][k] * b[k][j]` (`a` is `n x p`, `b` is
/// `p x m`), the *middle* (column) loop work-shared per output row — the
/// native twin of `loop_ir::kernels::matmul`. With `chunk = 1` adjacent
/// threads accumulate into adjacent `c` elements.
#[allow(clippy::too_many_arguments)]
pub fn matmul(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    n: usize,
    m: usize,
    p: usize,
    chunk: u64,
    pool: &ThreadPool,
) {
    assert_eq!(a.len(), n * p);
    assert_eq!(b.len(), p * m);
    assert_eq!(c.len(), n * m);
    let shared = SharedSlice::new(c);
    for i in 0..n {
        let (a, b, shared) = (&a, &b, &shared);
        pool.parallel_for(m as u64, chunk, move |_, r| {
            for jj in r {
                let j = jj as usize;
                // SAFETY: output column j of row i belongs to one thread.
                let slot = unsafe { shared.get_mut(i * m + j) } as *mut f64;
                for k in 0..p {
                    unsafe { vadd(slot, a[i * p + k] * b[k * m + j]) };
                }
            }
        });
    }
}

/// Serial reference for [`matmul`].
pub fn matmul_serial(a: &[f64], b: &[f64], c: &mut [f64], n: usize, m: usize, p: usize) {
    for i in 0..n {
        for j in 0..m {
            let mut acc = c[i * m + j];
            for k in 0..p {
                acc += a[i * p + k] * b[k * m + j];
            }
            c[i * m + j] = acc;
        }
    }
}

/// 1-D 3-point stencil `b[i] = (a[i-1] + a[i] + a[i+1]) / 3`, work-shared
/// with `schedule(static, chunk)`.
pub fn stencil1d(a: &[f64], b: &mut [f64], threads: usize, chunk: u64) {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 3 {
        return;
    }
    let shared = SharedSlice::new(b);
    parallel_for_static((n - 2) as u64, threads, chunk, |_, r| {
        for ii in r {
            let i = ii as usize + 1;
            // SAFETY: element i belongs to exactly one thread.
            unsafe { *shared.get_mut(i) = (a[i - 1] + a[i] + a[i + 1]) / 3.0 };
        }
    });
}

/// Deterministic pseudo-random points for the linreg/dot kernels (no RNG
/// dependency in the library crate).
pub fn synth_points(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let x = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 500.0 - 1.0;
            let y = 3.0 * x + ((i as u64).wrapping_mul(40503) % 100) as f64 / 100.0;
            (x, y)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "{a} != {b}"
        );
    }

    #[test]
    fn linreg_parallel_matches_serial() {
        let (n, m) = (16, 37);
        let pts = synth_points(n * m);
        let serial = linreg_serial(&pts, n, m);
        for threads in [1, 2, 4] {
            for chunk in [1, 3, 16] {
                let par = linreg_packed(&pts, n, m, threads, chunk);
                for (s, p) in serial.iter().zip(&par) {
                    assert_close(s.sx, p.sx);
                    assert_close(s.sxx, p.sxx);
                    assert_close(s.sxy, p.sxy);
                }
                let padded = linreg_padded(&pts, n, m, threads, chunk);
                for (s, p) in serial.iter().zip(&padded) {
                    assert_close(s.syy, p.0.syy);
                    assert_close(s.sy, p.0.sy);
                }
            }
        }
    }

    #[test]
    fn acc_layouts() {
        assert_eq!(std::mem::size_of::<LinRegAcc>(), 40);
        assert_eq!(std::mem::size_of::<PaddedLinRegAcc>(), 64);
        assert_eq!(std::mem::align_of::<PaddedLinRegAcc>(), 64);
    }

    #[test]
    fn heat_parallel_matches_serial() {
        let (n, m) = (18, 22);
        let a: Vec<f64> = (0..n * m).map(|i| (i % 13) as f64).collect();
        let mut b_ser = vec![0.0; n * m];
        heat_step_serial(&a, &mut b_ser, n, m);
        let pool = ThreadPool::new(4);
        for chunk in [1, 4, 64] {
            let mut b_par = vec![0.0; n * m];
            heat_step(&a, &mut b_par, n, m, chunk, &pool);
            assert_eq!(b_ser, b_par, "chunk={chunk}");
        }
    }

    #[test]
    fn dft_parallel_matches_serial() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let bins = 24;
        let (mut re_s, mut im_s) = (vec![0.0; bins], vec![0.0; bins]);
        dft_serial(&x, &mut re_s, &mut im_s);
        let pool = ThreadPool::new(3);
        let (mut re_p, mut im_p) = (vec![0.0; bins], vec![0.0; bins]);
        dft_scatter(&x, &mut re_p, &mut im_p, 1, &pool);
        for k in 0..bins {
            assert_close(re_s[k], re_p[k]);
            assert_close(im_s[k], im_p[k]);
        }
    }

    #[test]
    fn dotprod_matches_direct() {
        let x: Vec<f64> = (0..1000).map(|i| i as f64 * 0.001).collect();
        let y: Vec<f64> = (0..1000).map(|i| (1000 - i) as f64 * 0.002).collect();
        let direct: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        for threads in [1, 3, 8] {
            for padded in [false, true] {
                let d = dotprod_partials(&x, &y, threads, padded);
                assert_close(d, direct);
            }
        }
    }

    #[test]
    fn transpose_is_correct() {
        let (n, m) = (13, 7);
        let a: Vec<f64> = (0..n * m).map(|i| i as f64).collect();
        let mut b = vec![0.0; n * m];
        transpose(&a, &mut b, n, m, 4, 1);
        for i in 0..n {
            for j in 0..m {
                assert_eq!(b[j * n + i], a[i * m + j]);
            }
        }
    }

    #[test]
    fn matmul_matches_serial() {
        let (n, m, p) = (9, 14, 11);
        let a: Vec<f64> = (0..n * p).map(|i| (i % 7) as f64 * 0.5).collect();
        let b: Vec<f64> = (0..p * m).map(|i| ((i + 3) % 5) as f64 * 0.25).collect();
        let mut c_ser = vec![1.0; n * m];
        matmul_serial(&a, &b, &mut c_ser, n, m, p);
        let pool = ThreadPool::new(3);
        for chunk in [1u64, 4, 64] {
            let mut c_par = vec![1.0; n * m];
            matmul(&a, &b, &mut c_par, n, m, p, chunk, &pool);
            for (s, q) in c_ser.iter().zip(&c_par) {
                assert_close(*s, *q);
            }
        }
    }

    #[test]
    fn stencil_matches_formula() {
        let a: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let mut b = vec![0.0; 40];
        stencil1d(&a, &mut b, 4, 3);
        #[allow(clippy::needless_range_loop)]
        for i in 1..39 {
            assert_close(b[i], i as f64); // average of i-1, i, i+1
        }
        assert_eq!(b[0], 0.0);
        assert_eq!(b[39], 0.0);
        // Degenerate inputs are no-ops.
        let tiny: Vec<f64> = vec![1.0, 2.0];
        let mut out = vec![0.0; 2];
        stencil1d(&tiny, &mut out, 4, 1);
        assert_eq!(out, vec![0.0, 0.0]);
    }

    #[test]
    fn synth_points_deterministic() {
        assert_eq!(synth_points(100), synth_points(100));
    }
}
