//! A generic sharded mutex container for caches shared across workers.
//!
//! The daemon's cross-run memo cache is read and written by every
//! connection handler and every sweep worker at once; one global mutex
//! would serialize them on cache bookkeeping. [`Sharded`] splits the
//! protected state into `N` independently locked shards and routes each
//! key (by hash) to exactly one shard, so workers touching different keys
//! never contend. The shard count is fixed at construction — typically the
//! `fs-runtime` worker count — and routing is a pure function of the key
//! hash, so the same key always lands on the same shard.

use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard};

/// `N` independently locked copies of `T`, with hash-based routing.
pub struct Sharded<T> {
    shards: Vec<Mutex<T>>,
}

impl<T> Sharded<T> {
    /// Build `shards` shards (clamped to >= 1), each initialized by `init`
    /// (called once per shard with the shard index).
    pub fn new(shards: usize, init: impl Fn(usize) -> T) -> Self {
        let n = shards.max(1);
        Sharded {
            shards: (0..n).map(|i| Mutex::new(init(i))).collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Stable hash of `key` (FNV-1a; `DefaultHasher` is not guaranteed
    /// stable across releases, and shard routing only needs a fixed,
    /// well-mixed function).
    pub fn hash_key<K: Hash + ?Sized>(key: &K) -> u64 {
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        h.finish()
    }

    /// Lock the shard owning `key`.
    pub fn shard_for<K: Hash + ?Sized>(&self, key: &K) -> MutexGuard<'_, T> {
        let idx = (Self::hash_key(key) % self.shards.len() as u64) as usize;
        self.lock_shard(idx)
    }

    /// Lock shard `idx` directly (callers iterating all shards).
    pub fn lock_shard(&self, idx: usize) -> MutexGuard<'_, T> {
        match self.shards[idx].lock() {
            Ok(g) => g,
            // The protected caches are valid at every step; a panic while
            // holding the lock cannot leave them torn.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Visit every shard in index order (for aggregation / clearing).
    pub fn for_each(&self, mut f: impl FnMut(&mut T)) {
        for i in 0..self.shards.len() {
            f(&mut self.lock_shard(i));
        }
    }

    /// Fold over every shard in index order.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &T) -> A) -> A {
        let mut acc = init;
        for i in 0..self.shards.len() {
            acc = f(acc, &self.lock_shard(i));
        }
        acc
    }
}

/// 64-bit FNV-1a — tiny, dependency-free, and stable across builds.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x1_0000_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn routes_keys_stably_and_disjointly() {
        let s: Sharded<Vec<String>> = Sharded::new(4, |_| Vec::new());
        assert_eq!(s.num_shards(), 4);
        for key in ["a", "b", "c", "d", "e", "f"] {
            s.shard_for(key).push(key.to_string());
            s.shard_for(key).push(key.to_string());
        }
        // Every key landed twice on exactly one shard.
        let mut seen: HashMap<String, usize> = HashMap::new();
        s.for_each(|shard| {
            for k in shard.iter() {
                *seen.entry(k.clone()).or_insert(0) += 1;
            }
        });
        assert_eq!(seen.len(), 6);
        assert!(seen.values().all(|&c| c == 2));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s: Sharded<u64> = Sharded::new(0, |_| 0);
        assert_eq!(s.num_shards(), 1);
        *s.shard_for("anything") += 1;
        assert_eq!(s.fold(0u64, |a, v| a + v), 1);
    }

    #[test]
    fn concurrent_writers_never_lose_updates() {
        let s: Arc<Sharded<u64>> = Arc::new(Sharded::new(8, |_| 0));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        *s.shard_for(&(t * 1000 + i)) += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.fold(0u64, |a, v| a + v), 4000);
    }

    #[test]
    fn fnv_hash_is_stable() {
        // Routing must not change between runs: pin the hash values.
        assert_eq!(
            Sharded::<()>::hash_key("fsd"),
            Sharded::<()>::hash_key("fsd")
        );
        assert_ne!(Sharded::<()>::hash_key("a"), Sharded::<()>::hash_key("b"));
    }
}
