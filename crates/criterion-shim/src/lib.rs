//! A vendored, minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access; this shim keeps the
//! repository's `harness = false` benches compiling and *running* offline.
//! It measures wall-clock time with warmup and repeated sampling and prints
//! a one-line summary per benchmark (mean / best per iteration, plus
//! throughput when configured). It does not do statistical outlier
//! analysis, HTML reports, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget. Small enough that a full `cargo bench` sweep
/// of the repository stays in CI budget on one core.
const SAMPLE_BUDGET: Duration = Duration::from_millis(400);

/// Identifies one benchmark within a group, e.g. `heat/8`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Work-per-iteration declaration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    fn new(max_samples: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            max_samples,
        }
    }

    /// Run `f` repeatedly, recording one sample per call, until the sample
    /// budget or the configured sample count is exhausted.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup, untimed
        let budget_start = Instant::now();
        while self.samples.len() < self.max_samples
            && (self.samples.is_empty() || budget_start.elapsed() < SAMPLE_BUDGET)
        {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<44} no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let best = samples.iter().min().copied().unwrap_or_default();
    let mut line = format!(
        "{id:<44} mean {:>10}   best {:>10}   ({} samples)",
        format_duration(mean),
        format_duration(best),
        samples.len()
    );
    if let Some(t) = throughput {
        let secs = mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!("   {:.1} Melem/s", n as f64 / secs / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   {:.1} MB/s", n as f64 / secs / 1e6));
            }
        }
    }
    println!("{line}");
}

/// Entry point object; one per process, threaded through the bench fns.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&name.into(), &b.samples, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            &b.samples,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            &b.samples,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.len() <= 5);
    }

    #[test]
    fn group_and_function_run_to_completion() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("param", 8), &8u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(format_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(format_duration(Duration::from_millis(10)).contains("ms"));
        assert!(format_duration(Duration::from_secs(10)).contains('s'));
    }
}
