//! Chunk-size advisor: the compiler use-case the paper motivates ("it will
//! be helpful for both programmers and compilers to choose the optimal
//! chunk size for OpenMP loops", §IV-B) — sweep candidate chunk sizes,
//! model each, and recommend the cheapest schedule.

use cost_model::sweep::{evaluate_point, kernel_at_chunk, EvalMode, MemoCache};
use cost_model::FsPath;
use loop_ir::Kernel;
use machine::MachineConfig;

/// One evaluated schedule point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkPoint {
    pub chunk: u64,
    pub fs_cases: u64,
    pub fs_cycles: f64,
    pub total_cycles: f64,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct ChunkAdvice {
    /// Candidate schedules, in sweep order.
    pub points: Vec<ChunkPoint>,
    /// The chunk size with the lowest modeled total cost.
    pub best_chunk: u64,
    /// Modeled speedup of the best chunk over chunk = 1.
    pub speedup_vs_chunk1: f64,
}

/// Sweep power-of-two chunk sizes (plus 1) up to `max_chunk` and recommend
/// the cheapest. Uses the linear-regression predictor with
/// `predict_chunk_runs` when given, keeping the sweep fast on big loops.
///
/// Internally runs on the memoized sweep primitives: the schedule-independent
/// terms (machine cost, access plan, array layout) are prepared once and
/// shared across every candidate chunk size, so the sweep does the O(chunks)
/// FS-model work but only O(1) of everything else.
pub fn recommend_chunk(
    kernel: &Kernel,
    machine: &MachineConfig,
    num_threads: u32,
    max_chunk: u64,
    predict_chunk_runs: Option<u64>,
) -> ChunkAdvice {
    let trip = kernel.nest.parallel_trip_count().unwrap_or(1).max(1);
    let cap = max_chunk.min(trip).max(1);
    let mut candidates = vec![1u64];
    let mut c = 2;
    while c <= cap {
        candidates.push(c);
        c *= 2;
    }

    let mode = match predict_chunk_runs {
        Some(runs) => EvalMode::Predict(runs),
        None => EvalMode::Full,
    };
    let mut memo = MemoCache::new();

    let mut points = Vec::with_capacity(candidates.len());
    for &chunk in &candidates {
        let k = kernel_at_chunk(kernel, chunk);
        let cost = evaluate_point(&k, machine, num_threads, mode, FsPath::Symbolic, &mut memo);
        points.push(ChunkPoint {
            chunk,
            fs_cases: cost.fs.fs_cases,
            fs_cycles: cost.fs_cycles,
            total_cycles: cost.total_cycles,
        });
    }
    let best = points
        .iter()
        .min_by(|a, b| a.total_cycles.total_cmp(&b.total_cycles))
        .expect("at least one candidate");
    let chunk1_cost = points[0].total_cycles;
    ChunkAdvice {
        best_chunk: best.chunk,
        speedup_vs_chunk1: chunk1_cost / best.total_cycles.max(1e-9),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use loop_ir::kernels;

    #[test]
    fn advisor_prefers_larger_chunks_for_fs_kernels() {
        let m = machines::paper48();
        let k = kernels::transpose(128, 128, 1);
        let advice = recommend_chunk(&k, &m, 8, 64, None);
        assert!(advice.best_chunk > 1, "best = {}", advice.best_chunk);
        assert!(advice.speedup_vs_chunk1 > 1.0);
        // FS cases decrease monotonically-ish along the sweep.
        let first = advice.points.first().unwrap().fs_cases;
        let last = advice.points.last().unwrap().fs_cases;
        assert!(first > last);
    }

    #[test]
    fn advisor_caps_at_trip_count() {
        let m = machines::paper48();
        let k = kernels::stencil1d(18, 1); // trip 16
        let advice = recommend_chunk(&k, &m, 4, 1024, None);
        assert!(advice.points.iter().all(|p| p.chunk <= 16));
    }

    #[test]
    fn advice_includes_chunk1_baseline() {
        let m = machines::paper48();
        let k = kernels::dft(32, 64, 1);
        let advice = recommend_chunk(&k, &m, 8, 16, None);
        assert_eq!(advice.points[0].chunk, 1);
        assert!(advice.points.len() >= 4);
    }
}
