//! Structured errors for the fallible analysis entry points.
//!
//! [`try_analyze`](crate::try_analyze) reports *why* a kernel cannot be
//! costed instead of panicking, so batch drivers (the sweep engine, the
//! CLI, CI corpus runs) can skip or report bad inputs without dying.

use loop_ir::dsl::ParseError;
use loop_ir::validate::ValidateError;
use std::fmt;

/// Why an analysis request was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The kernel failed structural validation (bad subscripts, empty
    /// body, rank mismatches, …).
    Validation(ValidateError),
    /// DSL source did not parse.
    Parse(ParseError),
    /// The kernel's schedule (or requested team) cannot be modeled: zero
    /// chunk, non-constant parallel bounds, or a zero-thread team.
    UnsupportedSchedule { reason: String },
    /// The machine description is unusable (zero line size, no cores, no
    /// cache levels, non-positive frequency).
    MachineConfig { reason: String },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Validation(e) => write!(f, "kernel validation failed: {e}"),
            AnalysisError::Parse(e) => write!(f, "kernel source failed to parse: {e}"),
            AnalysisError::UnsupportedSchedule { reason } => {
                write!(f, "unsupported schedule: {reason}")
            }
            AnalysisError::MachineConfig { reason } => {
                write!(f, "invalid machine configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Validation(e) => Some(e),
            AnalysisError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for AnalysisError {
    /// Schedule-shaped validation failures become
    /// [`AnalysisError::UnsupportedSchedule`]; everything else is a
    /// structural [`AnalysisError::Validation`].
    fn from(e: ValidateError) -> Self {
        match e {
            ValidateError::ZeroChunk | ValidateError::NonConstParallelBounds => {
                AnalysisError::UnsupportedSchedule {
                    reason: e.to_string(),
                }
            }
            other => AnalysisError::Validation(other),
        }
    }
}

impl From<ParseError> for AnalysisError {
    fn from(e: ParseError) -> Self {
        AnalysisError::Parse(e)
    }
}

/// Reject machine descriptions the cost model cannot price.
pub(crate) fn check_machine(m: &machine::MachineConfig) -> Result<(), AnalysisError> {
    let reject = |reason: &str| {
        Err(AnalysisError::MachineConfig {
            reason: reason.to_string(),
        })
    };
    if m.caches.line_size == 0 {
        return reject("cache line size is 0");
    }
    if m.caches.levels.is_empty() {
        return reject("cache hierarchy has no levels");
    }
    if m.num_cores == 0 {
        return reject("machine has 0 cores");
    }
    if !m.freq_ghz.is_finite() || m.freq_ghz <= 0.0 {
        return reject("clock frequency must be positive");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_validate_errors_map_to_unsupported_schedule() {
        let e: AnalysisError = ValidateError::ZeroChunk.into();
        assert!(matches!(e, AnalysisError::UnsupportedSchedule { .. }));
        let e: AnalysisError = ValidateError::NonConstParallelBounds.into();
        assert!(matches!(e, AnalysisError::UnsupportedSchedule { .. }));
    }

    #[test]
    fn structural_validate_errors_stay_validation() {
        let e: AnalysisError = ValidateError::NoLoops.into();
        assert!(matches!(e, AnalysisError::Validation(_)));
        assert!(e.to_string().contains("no loops"));
    }

    #[test]
    fn machine_checks_cover_each_field() {
        let mut m = machine::presets::tiny_test();
        assert!(check_machine(&m).is_ok());
        m.caches.line_size = 0;
        assert!(matches!(
            check_machine(&m),
            Err(AnalysisError::MachineConfig { .. })
        ));
        let mut m = machine::presets::tiny_test();
        m.num_cores = 0;
        assert!(check_machine(&m).is_err());
        let mut m = machine::presets::tiny_test();
        m.freq_ghz = 0.0;
        assert!(check_machine(&m).is_err());
        let mut m = machine::presets::tiny_test();
        m.caches.levels.clear();
        assert!(check_machine(&m).is_err());
    }

    #[test]
    fn display_and_source_are_wired() {
        let e: AnalysisError = ValidateError::EmptyBody.into();
        assert!(std::error::Error::source(&e).is_some());
        let e = AnalysisError::MachineConfig { reason: "x".into() };
        assert!(std::error::Error::source(&e).is_none());
        assert!(e.to_string().contains("machine"));
    }
}
