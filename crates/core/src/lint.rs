//! High-level surface of the symbolic lint: [`crate::try_lint`] wraps
//! `cost_model::lint::lint_kernel` with the same machine/team guards as
//! `try_analyze`, verifies suggested padding fixes by actually applying
//! [`crate::pad_array`] and re-linting, and renders the outcome for humans,
//! `--json`, and SARIF 2.1.0.

use crate::json::JsonValue;
use cost_model::lint::{Diagnostic, LintResult, LintVerdict, Severity};
use loop_ir::Kernel;

/// Rule metadata table: (id, short description), in rule-id order. Drives
/// both the SARIF `tool.driver.rules` array and `docs/LINT.md`.
pub const LINT_RULES: &[(&str, &str)] = &[
    (
        cost_model::lint::RULE_SHARED_LINE,
        "Chunk-seam writes from different threads share a cache line",
    ),
    (
        cost_model::lint::RULE_STRIDED,
        "Per-iteration cross-thread write interleaving within cache lines",
    ),
    (
        cost_model::lint::RULE_POTENTIAL,
        "Write pattern outside the closed-form fragment; verdict unknown",
    ),
    (
        cost_model::lint::RULE_TRUE_SHARING,
        "All threads write the same bytes (true sharing, not false sharing)",
    ),
];

/// A padding fix that was *verified*: applying [`crate::pad_array`] to the
/// array and re-linting yields a clean verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedFix {
    pub array: String,
    /// Element size after padding, in bytes.
    pub padded_elem_bytes: usize,
}

/// Result of [`crate::try_lint`]: the symbolic verdict plus presentation.
#[derive(Debug, Clone)]
pub struct LintReport {
    pub kernel_name: String,
    pub result: LintResult,
    /// Padding fixes confirmed by transform-and-relint.
    pub verified_fixes: Vec<VerifiedFix>,
}

impl LintReport {
    pub(crate) fn new(kernel: &Kernel, result: LintResult) -> LintReport {
        // Verify pad suggestions: pad each implicated array and re-lint.
        // The transform is pure and the lint closed-form, so this costs
        // microseconds — no simulation involved.
        let mut verified_fixes = Vec::new();
        for d in &result.diagnostics {
            if d.suggested_fix
                .as_deref()
                .is_none_or(|f| !f.contains("pad"))
            {
                continue;
            }
            let Some((id, _)) = kernel
                .arrays
                .iter()
                .enumerate()
                .find(|(_, a)| a.name == d.array)
                .map(|(i, a)| (loop_ir::ArrayId(i as u32), a))
            else {
                continue;
            };
            if let Some((padded, new_size)) = crate::pad_array(kernel, id, result.line_size) {
                let relint =
                    cost_model::lint::lint_kernel(&padded, result.line_size, result.num_threads);
                if relint.verdict == LintVerdict::Clean
                    && !verified_fixes
                        .iter()
                        .any(|v: &VerifiedFix| v.array == d.array)
                {
                    verified_fixes.push(VerifiedFix {
                        array: d.array.clone(),
                        padded_elem_bytes: new_size,
                    });
                }
            }
        }
        LintReport {
            kernel_name: kernel.name.clone(),
            result,
            verified_fixes,
        }
    }

    /// True when the lint produced at least one Error/Warning finding (the
    /// condition under which `fslint` exits 1).
    pub fn has_findings(&self) -> bool {
        self.result.findings().next().is_some()
    }

    /// Human-readable rendering: one `file:line:col: severity: [rule]
    /// message` block per diagnostic, then the verdict line.
    pub fn render(&self, source_name: &str) -> String {
        let mut out = String::new();
        for d in &self.result.diagnostics {
            let (line, col) = span_or_default(d);
            out.push_str(&format!(
                "{source_name}:{line}:{col}: {}: [{}] {}\n",
                d.severity, d.rule_id, d.message
            ));
            if let Some(fix) = &d.suggested_fix {
                out.push_str(&format!("    fix: {fix}\n"));
            }
            if let Some(v) = self.verified_fixes.iter().find(|v| v.array == d.array) {
                out.push_str(&format!(
                    "    verified: padding '{}' to {} B elements re-lints clean\n",
                    v.array, v.padded_elem_bytes
                ));
            }
        }
        out.push_str(&format!(
            "{}: verdict {} ({} threads, chunk {}, {} B lines)\n",
            self.kernel_name,
            self.result.verdict.as_str(),
            self.result.num_threads,
            self.result.chunk,
            self.result.line_size
        ));
        out
    }

    /// Structured JSON mirroring [`Self::render`], stable field order.
    pub fn to_json(&self) -> JsonValue {
        let diags: Vec<JsonValue> = self
            .result
            .diagnostics
            .iter()
            .map(|d| {
                let (line, col) = span_or_default(d);
                JsonValue::obj()
                    .field("rule_id", d.rule_id)
                    .field("severity", d.severity.as_str())
                    .field("array", d.array.as_str())
                    .field("line", line as u64)
                    .field("col", col as u64)
                    .field("message", d.message.as_str())
                    .field(
                        "suggested_fix",
                        d.suggested_fix
                            .as_ref()
                            .map(|f| JsonValue::Str(f.clone()))
                            .unwrap_or(JsonValue::Null),
                    )
            })
            .collect();
        let sites: Vec<JsonValue> = self
            .result
            .sites
            .iter()
            .map(|s| {
                JsonValue::obj()
                    .field("array", s.array.as_str())
                    .field("access", if s.access.is_write() { "write" } else { "read" })
                    .field("class", s.class.as_str())
                    .field(
                        "span",
                        s.span
                            .map(|sp| JsonValue::Str(sp.to_string()))
                            .unwrap_or(JsonValue::Null),
                    )
            })
            .collect();
        let fixes: Vec<JsonValue> = self
            .verified_fixes
            .iter()
            .map(|v| {
                JsonValue::obj()
                    .field("array", v.array.as_str())
                    .field("padded_elem_bytes", v.padded_elem_bytes as u64)
            })
            .collect();
        JsonValue::obj()
            .field("kernel", self.kernel_name.as_str())
            .field("verdict", self.result.verdict.as_str())
            .field("threads", self.result.num_threads as u64)
            .field("chunk", self.result.chunk)
            .field("line_size", self.result.line_size)
            .field("diagnostics", diags)
            .field("sites", sites)
            .field("verified_fixes", fixes)
    }

    /// SARIF `result` objects for this report, attributed to `uri`.
    pub fn sarif_results(&self, uri: &str) -> Vec<JsonValue> {
        self.result
            .diagnostics
            .iter()
            .map(|d| {
                let (line, col) = span_or_default(d);
                let mut text = d.message.clone();
                if let Some(fix) = &d.suggested_fix {
                    text.push_str(" Suggested fix: ");
                    text.push_str(fix);
                }
                JsonValue::obj()
                    .field("ruleId", d.rule_id)
                    .field("level", d.severity.sarif_level())
                    .field("message", JsonValue::obj().field("text", text))
                    .field(
                        "locations",
                        vec![JsonValue::obj().field(
                            "physicalLocation",
                            JsonValue::obj()
                                .field("artifactLocation", JsonValue::obj().field("uri", uri))
                                .field(
                                    "region",
                                    JsonValue::obj()
                                        .field("startLine", line as u64)
                                        .field("startColumn", col as u64),
                                ),
                        )],
                    )
            })
            .collect()
    }

    /// A complete single-artifact SARIF 2.1.0 document.
    pub fn to_sarif(&self, uri: &str) -> JsonValue {
        sarif_document(vec![(uri.to_string(), self.sarif_results(uri))])
    }
}

fn span_or_default(d: &Diagnostic) -> (u32, u32) {
    d.span.map(|s| (s.line, s.col)).unwrap_or((1, 1))
}

/// Assemble a SARIF 2.1.0 document from per-artifact result lists (as
/// produced by [`LintReport::sarif_results`]).
pub fn sarif_document(entries: Vec<(String, Vec<JsonValue>)>) -> JsonValue {
    let rules: Vec<JsonValue> = LINT_RULES
        .iter()
        .map(|(id, short)| {
            JsonValue::obj()
                .field("id", *id)
                .field("shortDescription", JsonValue::obj().field("text", *short))
        })
        .collect();
    let mut results = Vec::new();
    for (_, rs) in entries {
        results.extend(rs);
    }
    JsonValue::obj()
        .field("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
        .field("version", "2.1.0")
        .field(
            "runs",
            vec![JsonValue::obj()
                .field(
                    "tool",
                    JsonValue::obj().field(
                        "driver",
                        JsonValue::obj()
                            .field("name", "fslint")
                            .field("informationUri", "https://github.com/paper-repro/fs-detect")
                            .field("version", env!("CARGO_PKG_VERSION"))
                            .field("rules", rules),
                    ),
                )
                .field("results", results)],
        )
}

/// Severity of the worst diagnostic, for summary lines.
pub fn worst_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    fn stencil_report() -> LintReport {
        let k = crate::parse_kernel(
            "kernel s {
  array A[4096]: f64;
  array B[4096]: f64;
  parallel for i in 0..4096 schedule(static, 1) {
    B[i] = A[i] + 1.0;
  }
}",
        )
        .unwrap();
        crate::try_lint(&k, &machines::paper48(), 8).unwrap()
    }

    #[test]
    fn report_renders_spans_and_verified_fix() {
        let r = stencil_report();
        assert!(r.has_findings());
        let text = r.render("kernels/s.loop");
        assert!(
            text.contains("kernels/s.loop:5:5: error: [FS002]"),
            "{text}"
        );
        assert!(text.contains("verified: padding 'B' to 64 B"), "{text}");
        assert_eq!(
            r.verified_fixes,
            vec![VerifiedFix {
                array: "B".into(),
                padded_elem_bytes: 64
            }]
        );
    }

    #[test]
    fn json_has_stable_shape() {
        let doc = stencil_report().to_json().render();
        for key in [
            "\"kernel\":\"s\"",
            "\"verdict\":\"false-sharing\"",
            "\"rule_id\":\"FS002\"",
            "\"line\":5",
            "\"col\":5",
            "\"verified_fixes\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn sarif_has_required_fields() {
        let doc = stencil_report().to_sarif("kernels/s.loop").render();
        for key in [
            "\"version\":\"2.1.0\"",
            "\"name\":\"fslint\"",
            "\"ruleId\":\"FS002\"",
            "\"level\":\"error\"",
            "\"artifactLocation\":{\"uri\":\"kernels/s.loop\"}",
            "\"startLine\":5",
            "\"startColumn\":5",
            "\"id\":\"FS001\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn worst_severity_orders() {
        let r = stencil_report();
        assert_eq!(worst_severity(&r.result.diagnostics), Some(Severity::Error));
        assert_eq!(worst_severity(&[]), None);
    }
}
