//! High-level surface of the symbolic lint: [`crate::try_lint`] wraps
//! `cost_model::lint::lint_kernel` with the same machine/team guards as
//! `try_analyze`, verifies suggested padding fixes by actually applying
//! [`crate::pad_array`] and re-linting, and renders the outcome for humans,
//! `--json`, and SARIF 2.1.0.

use crate::json::JsonValue;
use cost_model::lint::{Diagnostic, LintResult, LintVerdict, Severity};
use loop_ir::Kernel;

/// Metadata for one lint rule: the single source of truth behind the SARIF
/// `tool.driver.rules` array, `fslint --explain`, and `docs/LINT.md`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id (`FS001`..`FS005`).
    pub id: &'static str,
    /// Short CamelCase rule name, SARIF-style.
    pub name: &'static str,
    /// One-line summary.
    pub short: &'static str,
    /// Longer `--explain` text: what fires, why it costs, how to fix it.
    pub explanation: &'static str,
}

/// Rule metadata table, in rule-id order.
pub const LINT_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: cost_model::lint::RULE_SHARED_LINE,
        name: "SharedLine",
        short: "Chunk-seam writes from different threads share a cache line",
        explanation: "Adjacent chunks of the parallel loop end and start inside the same cache \
            line, so the two owning threads invalidate each other at every chunk boundary. \
            Fires when chunk x stride is at least one line but seam writes still collide. \
            Fix: pad the array's element size to the line size, or align chunk boundaries to \
            lines by widening the chunk.",
    },
    RuleInfo {
        id: cost_model::lint::RULE_STRIDED,
        name: "StridedConflict",
        short: "Per-iteration cross-thread write interleaving within cache lines",
        explanation: "Consecutive iterations map to the same cache line but run on different \
            threads (chunk x stride below the line size), so every line ping-pongs between \
            private caches for its whole lifetime — the worst false-sharing shape (Fig. 3 of \
            the paper). Fix: widen the static chunk so each line has a single writer, or pad \
            elements to the line size.",
    },
    RuleInfo {
        id: cost_model::lint::RULE_POTENTIAL,
        name: "PotentialConflict",
        short: "Write pattern outside the closed-form fragment; verdict unknown",
        explanation: "The write's affine structure leaves the fragment the symbolic lint can \
            decide (non-constant bounds, mixed strides per array, thread-skewed instances), \
            so no claim is made either way. Run the simulator-backed `fsdetect` on the kernel \
            for a definite count.",
    },
    RuleInfo {
        id: cost_model::lint::RULE_TRUE_SHARING,
        name: "TrueSharing",
        short: "All threads write the same bytes (true sharing, not false sharing)",
        explanation: "Every thread writes the very same element(s), so the coherence traffic \
            is true sharing: padding cannot help because the bytes themselves are contended. \
            Fix: give each thread a private copy (index by the parallel variable) and reduce \
            afterwards.",
    },
    RuleInfo {
        id: cost_model::lint::RULE_CAPACITY,
        name: "CapacityThrash",
        short: "One chunk's line footprint overflows the private cache",
        explanation: "The reuse-distance footprint model predicts that one chunk of the \
            parallel loop touches more distinct cache lines than the largest private cache \
            level holds, so each thread evicts its own working set mid-chunk and pays \
            capacity misses instead of hits. Advisory only: the false-sharing verdict is \
            unchanged. Fix: shrink the static chunk to the suggested size that fits, or tile \
            the inner loops.",
    },
];

/// The [`RuleInfo`] for `id`, accepting `FS00x` in any case.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    LINT_RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(id.trim()))
}

/// Render one rule's `--explain` text.
pub fn explain_rule(id: &str) -> Option<String> {
    let r = rule_info(id)?;
    Some(format!(
        "{} ({})\n  {}\n\n  {}\n",
        r.id, r.name, r.short, r.explanation
    ))
}

/// A padding fix that was *verified*: applying [`crate::pad_array`] to the
/// array and re-linting yields a clean verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedFix {
    pub array: String,
    /// Element size after padding, in bytes.
    pub padded_elem_bytes: usize,
}

/// Result of [`crate::try_lint`]: the symbolic verdict plus presentation.
#[derive(Debug, Clone)]
pub struct LintReport {
    pub kernel_name: String,
    pub result: LintResult,
    /// Padding fixes confirmed by transform-and-relint.
    pub verified_fixes: Vec<VerifiedFix>,
    /// FS005's suggested chunk, confirmed by re-scheduling and re-linting:
    /// at this `schedule(static, chunk)` the capacity warning clears.
    pub verified_chunk: Option<u64>,
}

impl LintReport {
    pub(crate) fn new(
        kernel: &Kernel,
        result: LintResult,
        private_capacity_lines: Option<u64>,
    ) -> LintReport {
        // Verify pad suggestions: pad each implicated array and re-lint.
        // The transform is pure and the lint closed-form, so this costs
        // microseconds — no simulation involved.
        let mut verified_fixes = Vec::new();
        for d in &result.diagnostics {
            if d.suggested_fix
                .as_deref()
                .is_none_or(|f| !f.contains("pad"))
            {
                continue;
            }
            let Some((id, _)) = kernel
                .arrays
                .iter()
                .enumerate()
                .find(|(_, a)| a.name == d.array)
                .map(|(i, a)| (loop_ir::ArrayId(i as u32), a))
            else {
                continue;
            };
            if let Some((padded, new_size)) = crate::pad_array(kernel, id, result.line_size) {
                let relint =
                    cost_model::lint::lint_kernel(&padded, result.line_size, result.num_threads);
                if relint.verdict == LintVerdict::Clean
                    && !verified_fixes
                        .iter()
                        .any(|v: &VerifiedFix| v.array == d.array)
                {
                    verified_fixes.push(VerifiedFix {
                        array: d.array.clone(),
                        padded_elem_bytes: new_size,
                    });
                }
            }
        }
        // Verify FS005's chunk suggestion the same way: re-schedule the
        // kernel at the largest fitting chunk and re-lint with the same
        // capacity — the warning must clear.
        let verified_chunk = verify_chunk_fix(kernel, &result, private_capacity_lines);
        LintReport {
            kernel_name: kernel.name.clone(),
            result,
            verified_fixes,
            verified_chunk,
        }
    }

    /// True when the lint produced at least one Error/Warning finding (the
    /// condition under which `fslint` exits 1).
    pub fn has_findings(&self) -> bool {
        self.result.findings().next().is_some()
    }

    /// Human-readable rendering: one `file:line:col: severity: [rule]
    /// message` block per diagnostic, then the verdict line.
    pub fn render(&self, source_name: &str) -> String {
        let mut out = String::new();
        for d in &self.result.diagnostics {
            let (line, col) = span_or_default(d);
            out.push_str(&format!(
                "{source_name}:{line}:{col}: {}: [{}] {}\n",
                d.severity, d.rule_id, d.message
            ));
            if let Some(fix) = &d.suggested_fix {
                out.push_str(&format!("    fix: {fix}\n"));
            }
            if let Some(v) = self.verified_fixes.iter().find(|v| v.array == d.array) {
                out.push_str(&format!(
                    "    verified: padding '{}' to {} B elements re-lints clean\n",
                    v.array, v.padded_elem_bytes
                ));
            }
            if d.rule_id == cost_model::lint::RULE_CAPACITY {
                if let Some(c) = self.verified_chunk {
                    out.push_str(&format!(
                        "    verified: schedule(static, {c}) re-lints without FS005\n"
                    ));
                }
            }
        }
        out.push_str(&format!(
            "{}: verdict {} ({} threads, chunk {}, {} B lines)\n",
            self.kernel_name,
            self.result.verdict.as_str(),
            self.result.num_threads,
            self.result.chunk,
            self.result.line_size
        ));
        out
    }

    /// Structured JSON mirroring [`Self::render`], stable field order.
    pub fn to_json(&self) -> JsonValue {
        let diags: Vec<JsonValue> = self
            .result
            .diagnostics
            .iter()
            .map(|d| {
                let (line, col) = span_or_default(d);
                JsonValue::obj()
                    .field("rule_id", d.rule_id)
                    .field("severity", d.severity.as_str())
                    .field("array", d.array.as_str())
                    .field("line", line as u64)
                    .field("col", col as u64)
                    .field("message", d.message.as_str())
                    .field(
                        "suggested_fix",
                        d.suggested_fix
                            .as_ref()
                            .map(|f| JsonValue::Str(f.clone()))
                            .unwrap_or(JsonValue::Null),
                    )
            })
            .collect();
        let sites: Vec<JsonValue> = self
            .result
            .sites
            .iter()
            .map(|s| {
                JsonValue::obj()
                    .field("array", s.array.as_str())
                    .field("access", if s.access.is_write() { "write" } else { "read" })
                    .field("class", s.class.as_str())
                    .field(
                        "span",
                        s.span
                            .map(|sp| JsonValue::Str(sp.to_string()))
                            .unwrap_or(JsonValue::Null),
                    )
            })
            .collect();
        let fixes: Vec<JsonValue> = self
            .verified_fixes
            .iter()
            .map(|v| {
                JsonValue::obj()
                    .field("array", v.array.as_str())
                    .field("padded_elem_bytes", v.padded_elem_bytes as u64)
            })
            .collect();
        JsonValue::obj()
            .field("kernel", self.kernel_name.as_str())
            .field("verdict", self.result.verdict.as_str())
            .field("threads", self.result.num_threads as u64)
            .field("chunk", self.result.chunk)
            .field("line_size", self.result.line_size)
            .field("diagnostics", diags)
            .field("sites", sites)
            .field("verified_fixes", fixes)
            .field(
                "verified_chunk",
                self.verified_chunk
                    .map(|c| JsonValue::Num(c as f64))
                    .unwrap_or(JsonValue::Null),
            )
    }

    /// SARIF `result` objects for this report, attributed to `uri`.
    pub fn sarif_results(&self, uri: &str) -> Vec<JsonValue> {
        self.result
            .diagnostics
            .iter()
            .map(|d| {
                let (line, col) = span_or_default(d);
                let mut text = d.message.clone();
                if let Some(fix) = &d.suggested_fix {
                    text.push_str(" Suggested fix: ");
                    text.push_str(fix);
                }
                JsonValue::obj()
                    .field("ruleId", d.rule_id)
                    .field("level", d.severity.sarif_level())
                    .field("message", JsonValue::obj().field("text", text))
                    .field(
                        "locations",
                        vec![JsonValue::obj().field(
                            "physicalLocation",
                            JsonValue::obj()
                                .field("artifactLocation", JsonValue::obj().field("uri", uri))
                                .field(
                                    "region",
                                    JsonValue::obj()
                                        .field("startLine", line as u64)
                                        .field("startColumn", col as u64),
                                ),
                        )],
                    )
            })
            .collect()
    }

    /// A complete single-artifact SARIF 2.1.0 document.
    pub fn to_sarif(&self, uri: &str) -> JsonValue {
        sarif_document(vec![(uri.to_string(), self.sarif_results(uri))])
    }
}

fn span_or_default(d: &Diagnostic) -> (u32, u32) {
    d.span.map(|s| (s.line, s.col)).unwrap_or((1, 1))
}

/// If the lint raised FS005 with a chunk suggestion, recompute the largest
/// fitting chunk, apply it as `schedule(static, c)`, and re-lint with the
/// same capacity. Returns the chunk only when the warning actually clears.
fn verify_chunk_fix(
    kernel: &Kernel,
    result: &LintResult,
    private_capacity_lines: Option<u64>,
) -> Option<u64> {
    let cap = private_capacity_lines?;
    let d = result
        .diagnostics
        .iter()
        .find(|d| d.rule_id == cost_model::lint::RULE_CAPACITY)?;
    d.suggested_fix.as_ref()?;
    let c = cost_model::chunk_footprint(kernel, result.line_size)?
        .max_chunk_fitting(cap)
        .filter(|&c| c >= 1 && c < result.chunk)?;
    let mut rescheduled = kernel.clone();
    rescheduled.nest.parallel.schedule = loop_ir::Schedule::Static { chunk: c };
    let relint = cost_model::lint::lint_kernel_with_capacity(
        &rescheduled,
        result.line_size,
        result.num_threads,
        Some(cap),
    );
    relint
        .diagnostics
        .iter()
        .all(|d| d.rule_id != cost_model::lint::RULE_CAPACITY)
        .then_some(c)
}

/// Assemble a SARIF 2.1.0 document from per-artifact result lists (as
/// produced by [`LintReport::sarif_results`]).
pub fn sarif_document(entries: Vec<(String, Vec<JsonValue>)>) -> JsonValue {
    let rules: Vec<JsonValue> = LINT_RULES
        .iter()
        .map(|r| {
            JsonValue::obj()
                .field("id", r.id)
                .field("name", r.name)
                .field("shortDescription", JsonValue::obj().field("text", r.short))
                .field(
                    "fullDescription",
                    JsonValue::obj().field("text", r.explanation),
                )
        })
        .collect();
    let mut results = Vec::new();
    for (_, rs) in entries {
        results.extend(rs);
    }
    JsonValue::obj()
        .field("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
        .field("version", "2.1.0")
        .field(
            "runs",
            vec![JsonValue::obj()
                .field(
                    "tool",
                    JsonValue::obj().field(
                        "driver",
                        JsonValue::obj()
                            .field("name", "fslint")
                            .field("informationUri", "https://github.com/paper-repro/fs-detect")
                            .field("version", env!("CARGO_PKG_VERSION"))
                            .field("rules", rules),
                    ),
                )
                .field("results", results)],
        )
}

/// Severity of the worst diagnostic, for summary lines.
pub fn worst_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;

    fn stencil_report() -> LintReport {
        let k = crate::parse_kernel(
            "kernel s {
  array A[4096]: f64;
  array B[4096]: f64;
  parallel for i in 0..4096 schedule(static, 1) {
    B[i] = A[i] + 1.0;
  }
}",
        )
        .unwrap();
        crate::try_lint(&k, &machines::paper48(), 8).unwrap()
    }

    #[test]
    fn report_renders_spans_and_verified_fix() {
        let r = stencil_report();
        assert!(r.has_findings());
        let text = r.render("kernels/s.loop");
        assert!(
            text.contains("kernels/s.loop:5:5: error: [FS002]"),
            "{text}"
        );
        assert!(text.contains("verified: padding 'B' to 64 B"), "{text}");
        assert_eq!(
            r.verified_fixes,
            vec![VerifiedFix {
                array: "B".into(),
                padded_elem_bytes: 64
            }]
        );
    }

    #[test]
    fn json_has_stable_shape() {
        let doc = stencil_report().to_json().render();
        for key in [
            "\"kernel\":\"s\"",
            "\"verdict\":\"false-sharing\"",
            "\"rule_id\":\"FS002\"",
            "\"line\":5",
            "\"col\":5",
            "\"verified_fixes\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn sarif_has_required_fields() {
        let doc = stencil_report().to_sarif("kernels/s.loop").render();
        for key in [
            "\"version\":\"2.1.0\"",
            "\"name\":\"fslint\"",
            "\"ruleId\":\"FS002\"",
            "\"level\":\"error\"",
            "\"artifactLocation\":{\"uri\":\"kernels/s.loop\"}",
            "\"startLine\":5",
            "\"startColumn\":5",
            "\"id\":\"FS001\"",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn worst_severity_orders() {
        let r = stencil_report();
        assert_eq!(worst_severity(&r.result.diagnostics), Some(Severity::Error));
        assert_eq!(worst_severity(&[]), None);
    }

    /// A chunk of 64 streaming f64 iterations over two arrays (~18 lines)
    /// against the tiny machine's 16-line L2.
    fn thrash_report() -> LintReport {
        let k = crate::parse_kernel(
            "kernel t {
  array A[4096]: f64;
  array B[4096]: f64;
  parallel for i in 0..4096 schedule(static, 64) {
    B[i] = A[i] + 1.0;
  }
}",
        )
        .unwrap();
        crate::try_lint(&k, &machines::tiny_test(), 4).unwrap()
    }

    #[test]
    fn capacity_warning_surfaces_with_verified_chunk() {
        let r = thrash_report();
        let d = r
            .result
            .diagnostics
            .iter()
            .find(|d| d.rule_id == cost_model::lint::RULE_CAPACITY)
            .expect("FS005 fires on the tiny machine");
        assert_eq!(d.severity, Severity::Warning);
        let c = r.verified_chunk.expect("chunk fix verifies by re-lint");
        assert!((1..64).contains(&c), "suggested chunk {c} not a shrink");
        let text = r.render("kernels/t.loop");
        assert!(text.contains("[FS005]"), "{text}");
        assert!(
            text.contains(&format!("schedule(static, {c}) re-lints without FS005")),
            "{text}"
        );
        let json = r.to_json().render();
        assert!(json.contains("\"rule_id\":\"FS005\""), "{json}");
        assert!(json.contains(&format!("\"verified_chunk\":{c}")), "{json}");
        let sarif = r.to_sarif("kernels/t.loop").render();
        assert!(sarif.contains("\"ruleId\":\"FS005\""), "{sarif}");
        assert!(sarif.contains("\"id\":\"FS005\""), "{sarif}");
    }

    #[test]
    fn capacity_fits_on_big_machine() {
        let k = crate::parse_kernel(
            "kernel t {
  array A[4096]: f64;
  array B[4096]: f64;
  parallel for i in 0..4096 schedule(static, 64) {
    B[i] = A[i] + 1.0;
  }
}",
        )
        .unwrap();
        let r = crate::try_lint(&k, &machines::paper48(), 4).unwrap();
        assert!(
            !r.result
                .diagnostics
                .iter()
                .any(|d| d.rule_id == cost_model::lint::RULE_CAPACITY),
            "an 8192-line L2 swallows an 18-line chunk"
        );
        assert_eq!(r.verified_chunk, None);
    }

    #[test]
    fn explain_covers_every_rule() {
        assert_eq!(LINT_RULES.len(), 5);
        for r in LINT_RULES {
            let text = explain_rule(r.id).expect("every rule explains");
            assert!(text.contains(r.id), "{text}");
            assert!(text.contains(r.name), "{text}");
        }
        assert!(explain_rule("fs005").is_some(), "case-insensitive lookup");
        assert!(explain_rule("FS999").is_none());
    }
}
