//! Parallel, memoized execution of cost-model sweep grids.
//!
//! [`SweepEngine`] evaluates a [`SweepGrid`] (`kernels × machines ×
//! threads × chunks`) across the [`fs_runtime::pool::ThreadPool`] workers,
//! sharing one [`cost_model::MemoCache`] between workers and across calls. Every
//! evaluation strategy produces *identical* results in *identical* order:
//! each grid point is a pure function of its spec, workers write disjoint
//! result slots, and output follows the grid's canonical kernel → machine
//! → threads → chunk enumeration — so a parallel run is byte-for-byte the
//! sequential run, just faster.

use crate::error::{check_machine, AnalysisError};
use crate::json::JsonValue;
use crate::service::ServiceCache;
use cost_model::sweep::{
    compute_point, kernel_at_chunk, point_key, EvalMode, SweepGrid, SweepPointSpec,
};
use cost_model::{FsPath, LoopCost};
use fs_runtime::pool::ThreadPool;
use fs_runtime::shared::SharedSlice;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One evaluated grid point, labeled with its axes.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    pub kernel: String,
    pub machine: String,
    pub threads: u32,
    pub chunk: u64,
    pub cost: LoopCost,
}

impl SweepOutcome {
    /// The stable JSON record for this point. Field order is fixed; this
    /// is what the determinism guarantee is stated over.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("kernel", self.kernel.as_str())
            .field("machine", self.machine.as_str())
            .field("threads", self.threads)
            .field("chunk", self.chunk)
            .field("fs_path", self.cost.fs_path.as_str())
            .field("fs_cases", self.cost.fs.fs_cases)
            .field("fs_events", self.cost.fs.fs_events)
            .field("fs_cycles", self.cost.fs_cycles)
            .field("total_cycles", self.cost.total_cycles)
            .field("fs_fraction", self.cost.fs_fraction())
            .field("iters_per_thread", self.cost.iters_per_thread)
            .field("evaluated_chunk_runs", self.cost.fs.evaluated_chunk_runs)
            .field("total_chunk_runs", self.cost.fs.total_chunk_runs)
    }
}

/// Wall-clock statistics of one [`SweepEngine::run`].
///
/// Deliberately kept *out* of [`SweepGridResult::to_json`]: that document
/// carries the byte-identical parallel/sequential guarantee, and wall times
/// are nondeterministic. Export them via [`SweepGridResult::stats_json`]
/// (the `--json` `sweep_stats` section) or the `--profile` summary instead.
#[derive(Debug, Clone, Default)]
pub struct SweepRunStats {
    /// Whole-run wall time (validation + evaluation).
    pub wall_ns: u64,
    /// Per-point wall time, parallel to the outcomes (canonical grid
    /// order). Every entry is *measured*, never derived from model terms:
    /// a memoized point records its (tiny) real lookup time, and a point
    /// truncated by early exit records the truncated evaluation's real
    /// cost — so no point silently reports zero.
    pub point_wall_ns: Vec<u64>,
}

impl SweepRunStats {
    /// The `n` slowest points as `(outcome index, wall ns)`, slowest first.
    /// Ties break toward the earlier (canonical-order) point.
    pub fn slowest(&self, n: usize) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.point_wall_ns.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Points per second over the whole run (0 when nothing ran).
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_ns == 0 || self.point_wall_ns.is_empty() {
            0.0
        } else {
            self.point_wall_ns.len() as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// All outcomes of one grid run, in canonical order.
#[derive(Debug, Clone)]
pub struct SweepGridResult {
    pub outcomes: Vec<SweepOutcome>,
    /// Memo hits/misses accumulated by this run alone.
    pub memo_hits: u64,
    pub memo_misses: u64,
    /// LRU evictions forced by the cache byte budget during this run.
    /// Eviction order depends on worker interleaving, so this lives in
    /// [`Self::stats_json`], never [`Self::to_json`].
    pub memo_evictions: u64,
    /// Cache resident / peak bytes after the run (aggregate over shards).
    pub memo_bytes: u64,
    pub memo_peak_bytes: u64,
    /// Wall-clock timing of this run (not part of [`Self::to_json`]).
    pub stats: SweepRunStats,
}

impl SweepGridResult {
    /// The full run as one JSON document (stable order and bytes).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("points", self.outcomes.len())
            .field("memo_hits", self.memo_hits)
            .field("memo_misses", self.memo_misses)
            .field(
                "results",
                JsonValue::Arr(self.outcomes.iter().map(|o| o.to_json()).collect()),
            )
    }

    /// The cheapest outcome (by modeled total cycles), if any.
    pub fn best(&self) -> Option<&SweepOutcome> {
        self.outcomes
            .iter()
            .min_by(|a, b| a.cost.total_cycles.total_cmp(&b.cost.total_cycles))
    }

    /// Timing statistics as JSON — a *separate* document from
    /// [`Self::to_json`] because wall times are nondeterministic. Labels
    /// the `slowest_n` slowest points with their grid axes.
    pub fn stats_json(&self, slowest_n: usize) -> JsonValue {
        let slowest = self
            .stats
            .slowest(slowest_n)
            .into_iter()
            .map(|(i, ns)| {
                let o = &self.outcomes[i];
                JsonValue::obj()
                    .field("kernel", o.kernel.as_str())
                    .field("machine", o.machine.as_str())
                    .field("threads", o.threads)
                    .field("chunk", o.chunk)
                    .field("wall_ms", ns as f64 / 1e6)
            })
            .collect();
        JsonValue::obj()
            .field("wall_ms", self.stats.wall_ns as f64 / 1e6)
            .field("points_per_sec", self.stats.points_per_sec())
            .field("memo_evictions", self.memo_evictions)
            .field("memo_bytes", self.memo_bytes)
            .field("memo_peak_bytes", self.memo_peak_bytes)
            .field("slowest_points", JsonValue::Arr(slowest))
    }
}

/// Sweep executor: the worker policy plus a shared [`ServiceCache`] memo —
/// its own by default, or one handed in via [`Self::with_cache`] (the
/// daemon shares a single cache between the sweep engine and single-kernel
/// analysis).
pub struct SweepEngine {
    memo: Arc<ServiceCache>,
    mode: EvalMode,
    path: FsPath,
    workers: usize,
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepEngine {
    /// Full-model evaluation, one worker per available core, a private
    /// unbounded cache (one shard per worker).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine {
            memo: Arc::new(ServiceCache::new(workers, None)),
            mode: EvalMode::Full,
            path: FsPath::default(),
            workers,
        }
    }

    /// An engine evaluating into an existing shared cache.
    pub fn with_cache(cache: Arc<ServiceCache>) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine {
            memo: cache,
            mode: EvalMode::Full,
            path: FsPath::default(),
            workers,
        }
    }

    /// Set how each point's FS term is evaluated (full / fixed prediction
    /// sample / adaptive early exit).
    pub fn mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the FS-model path every grid point dispatches on. The path is
    /// part of each point's cache identity, so engines with different paths
    /// sharing one cache never serve each other's entries.
    pub fn path(mut self, path: FsPath) -> Self {
        self.path = path;
        self
    }

    /// Set the worker-thread count (1 = sequential).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Bound the memo cache to `bytes` resident bytes (LRU eviction past
    /// the budget; see [`cost_model::MemoCache`]).
    pub fn memo_budget(self, bytes: u64) -> Self {
        self.memo.set_budget(Some(bytes));
        self
    }

    /// The cache this engine evaluates into.
    pub fn cache(&self) -> &Arc<ServiceCache> {
        &self.memo
    }

    /// Lifetime memo statistics `(hits, misses)`.
    pub fn memo_stats(&self) -> (u64, u64) {
        let s = self.memo.stats();
        (s.hits, s.misses)
    }

    /// Drop all cached results (e.g. after mutating machine descriptions in
    /// place — content fingerprints make this unnecessary for kernel edits,
    /// but explicit invalidation keeps memory bounded in long sessions).
    pub fn clear_memo(&self) {
        self.memo.clear();
    }

    /// Evaluate every grid point. Fails fast — before evaluating anything —
    /// if any machine, kernel, or axis value is invalid.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepGridResult, AnalysisError> {
        let _span = fs_obs::span("sweep.run");
        let run_start = Instant::now();
        for (_, m) in &grid.machines {
            check_machine(m)?;
        }
        for (_, k) in &grid.kernels {
            loop_ir::validate(k)?;
        }
        if grid.chunks.contains(&0) {
            return Err(AnalysisError::UnsupportedSchedule {
                reason: "sweep grid contains chunk size 0".to_string(),
            });
        }
        if grid.threads.contains(&0) {
            return Err(AnalysisError::UnsupportedSchedule {
                reason: "sweep grid contains team size 0".to_string(),
            });
        }

        let points = grid.points();
        let sequential = self.workers <= 1 || points.len() <= 1;
        fs_obs::gauges::SWEEP_GRID_POINTS.set(points.len() as u64);
        fs_obs::gauges::SWEEP_WORKERS.set(if sequential {
            1
        } else {
            self.workers.min(points.len()) as u64
        });
        let before = self.memo.stats();
        let timed = if sequential {
            self.run_points_sequential(grid, &points)
        } else {
            self.run_points_parallel(grid, &points)
        };
        let after = self.memo.stats();
        let mut outcomes = Vec::with_capacity(timed.len());
        let mut point_wall_ns = Vec::with_capacity(timed.len());
        for (o, ns) in timed {
            outcomes.push(o);
            point_wall_ns.push(ns);
        }
        Ok(SweepGridResult {
            outcomes,
            memo_hits: after.hits - before.hits,
            memo_misses: after.misses - before.misses,
            memo_evictions: after.evictions - before.evictions,
            memo_bytes: after.bytes,
            memo_peak_bytes: after.peak_bytes,
            stats: SweepRunStats {
                wall_ns: run_start.elapsed().as_nanos() as u64,
                point_wall_ns,
            },
        })
    }

    /// [`Self::eval_one`] with its wall time and per-point span/counter.
    fn eval_timed(&self, grid: &SweepGrid, spec: &SweepPointSpec) -> (SweepOutcome, u64) {
        let _span = fs_obs::span("sweep.point");
        fs_obs::counters::SWEEP_POINTS.inc();
        let start = Instant::now();
        let outcome = self.eval_one(grid, spec);
        let ns = start.elapsed().as_nanos() as u64;
        fs_obs::hists::SWEEP_POINT_NS.record_ns(ns);
        (outcome, ns)
    }

    /// One point: shard-locked memo lookups, computation outside any lock,
    /// so workers only serialize on same-shard cache bookkeeping.
    fn eval_one(&self, grid: &SweepGrid, spec: &SweepPointSpec) -> SweepOutcome {
        let (kname, kernel) = &grid.kernels[spec.kernel];
        let (mname, machine) = &grid.machines[spec.machine];
        let k = kernel_at_chunk(kernel, spec.chunk);
        let key = point_key(&k, machine, spec.threads, &self.mode, self.path);
        let cost = match self.memo.lookup_point(&key) {
            Some(c) => c,
            None => {
                let prep = self.memo.prepared_for(&k, machine, self.path);
                let c = compute_point(&k, machine, spec.threads, self.mode, self.path, &prep);
                self.memo.insert_point(key, c.clone());
                c
            }
        };
        SweepOutcome {
            kernel: kname.clone(),
            machine: mname.clone(),
            threads: spec.threads,
            chunk: spec.chunk,
            cost,
        }
    }

    fn run_points_sequential(
        &self,
        grid: &SweepGrid,
        points: &[SweepPointSpec],
    ) -> Vec<(SweepOutcome, u64)> {
        points.iter().map(|p| self.eval_timed(grid, p)).collect()
    }

    fn run_points_parallel(
        &self,
        grid: &SweepGrid,
        points: &[SweepPointSpec],
    ) -> Vec<(SweepOutcome, u64)> {
        let n = points.len();
        let pool = ThreadPool::new(self.workers.min(n));
        let mut slots: Vec<Option<(SweepOutcome, u64)>> = (0..n).map(|_| None).collect();
        {
            let shared = SharedSlice::new(&mut slots);
            let next = AtomicUsize::new(0);
            pool.run_scoped(|_worker| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let outcome = self.eval_timed(grid, &points[i]);
                // SAFETY: the work queue hands index i to exactly one
                // worker, so writes to slot i are never concurrent.
                unsafe { *shared.get_mut(i) = Some(outcome) };
            });
        }
        slots
            .into_iter()
            .map(|s| s.expect("every grid point evaluated"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cost_model::sweep::EarlyExit;
    use loop_ir::kernels;

    fn grid() -> SweepGrid {
        SweepGrid::new(
            vec![
                ("transpose".into(), kernels::transpose(32, 32, 1)),
                ("dotprod".into(), kernels::dotprod_partials(8, 64, false)),
            ],
            ("paper48".into(), crate::machines::paper48()),
            vec![2, 8],
            vec![1, 4, 16],
        )
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let g = grid();
        let seq = SweepEngine::new().workers(1).run(&g).unwrap();
        let par = SweepEngine::new().workers(4).run(&g).unwrap();
        assert_eq!(seq.to_json().render(), par.to_json().render());
    }

    #[test]
    fn engine_memo_carries_across_runs() {
        let g = grid();
        let engine = SweepEngine::new().workers(2);
        let first = engine.run(&g).unwrap();
        assert_eq!(first.memo_hits, 0);
        let second = engine.run(&g).unwrap();
        assert_eq!(second.memo_misses, 0, "second run must be all hits");
        let results_only = |r: &SweepGridResult| {
            JsonValue::Arr(r.outcomes.iter().map(|o| o.to_json()).collect()).render()
        };
        assert_eq!(
            results_only(&first),
            results_only(&second),
            "cached results are identical"
        );
    }

    #[test]
    fn invalid_grids_fail_fast_with_structured_errors() {
        let mut g = grid();
        g.chunks.push(0);
        assert!(matches!(
            SweepEngine::new().run(&g),
            Err(AnalysisError::UnsupportedSchedule { .. })
        ));
        let mut g = grid();
        g.threads = vec![0];
        assert!(matches!(
            SweepEngine::new().run(&g),
            Err(AnalysisError::UnsupportedSchedule { .. })
        ));
        let mut g = grid();
        g.machines[0].1.num_cores = 0;
        assert!(matches!(
            SweepEngine::new().run(&g),
            Err(AnalysisError::MachineConfig { .. })
        ));
        let mut g = grid();
        g.kernels[0].1.nest.body.clear();
        assert!(matches!(
            SweepEngine::new().run(&g),
            Err(AnalysisError::Validation(_))
        ));
    }

    #[test]
    fn early_exit_mode_runs_and_orders_like_full() {
        let g = grid();
        let full = SweepEngine::new().workers(2).run(&g).unwrap();
        let fast = SweepEngine::new()
            .workers(2)
            .mode(EvalMode::EarlyExit(EarlyExit::default()))
            .run(&g)
            .unwrap();
        assert_eq!(full.outcomes.len(), fast.outcomes.len());
        for (a, b) in full.outcomes.iter().zip(&fast.outcomes) {
            assert_eq!(
                (a.kernel.as_str(), a.threads, a.chunk),
                (b.kernel.as_str(), b.threads, b.chunk)
            );
        }
    }

    #[test]
    fn stats_record_every_point_and_stay_out_of_to_json() {
        let g = grid();
        let engine = SweepEngine::new().workers(2);
        let r = engine.run(&g).unwrap();
        assert_eq!(r.stats.point_wall_ns.len(), r.outcomes.len());
        assert!(r.stats.wall_ns > 0);
        assert!(r.stats.points_per_sec() > 0.0);
        let slowest = r.stats.slowest(3);
        assert_eq!(slowest.len(), 3);
        assert!(slowest[0].1 >= slowest[1].1 && slowest[1].1 >= slowest[2].1);
        // Timing lives in stats_json, never in the deterministic document.
        assert!(r.stats_json(2).render().contains("\"slowest_points\""));
        assert!(!r.to_json().render().contains("wall_ms"));
        // A fully memoized re-run still measures real (nonzero-length)
        // per-point times instead of silently reporting nothing.
        let again = engine.run(&g).unwrap();
        assert_eq!(again.memo_misses, 0);
        assert_eq!(again.stats.point_wall_ns.len(), again.outcomes.len());
    }

    #[test]
    fn best_picks_the_cheapest_point() {
        let g = grid();
        let r = SweepEngine::new().run(&g).unwrap();
        let best = r.best().unwrap();
        assert!(r
            .outcomes
            .iter()
            .all(|o| o.cost.total_cycles >= best.cost.total_cycles));
    }
}
