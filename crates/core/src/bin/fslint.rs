//! `fslint` — symbolic, simulation-free false-sharing lint for loop DSL
//! kernels.
//!
//! ```text
//! fslint <kernel.loop | @bundled-name>... [--threads N]
//!        [--machine paper48|generic|tiny] [--const NAME=VALUE ...]
//!        [--format json|sarif|human] [--json] [--advise] [--list]
//!        [--explain FS00x] [--quiet]
//! ```
//!
//! Where `fsdetect` *runs* the paper's false-sharing cost model over the
//! iteration space, `fslint` decides the same question in closed form from
//! the loop's affine structure — microseconds per kernel, independent of
//! trip counts — and reports per-write-site diagnostics with DSL source
//! positions and actionable fixes (padding / chunk widening), padding fixes
//! verified by transform-and-relint. Rules: FS001 (chunk-seam sharing),
//! FS002 (strided interleaving), FS003 (outside the decidable fragment),
//! FS004 (true sharing), FS005 (private-cache capacity thrashing, from the
//! reuse-distance footprint model). `--explain FS00x` prints the rule's
//! full description from the same table SARIF metadata is built from. See
//! `docs/LINT.md`.
//!
//! Output modes: human text (default, one `file:line:col: severity: [rule]
//! message` block per finding), `--format json` / `--json` (the versioned
//! `fsd_version` envelope shared with `fsdetect` and the `fsd` daemon),
//! `--format sarif` (a SARIF 2.1.0 document suitable for code scanning
//! upload). Results go to stdout, diagnostics to stderr.
//!
//! This binary is a veneer over [`fs_core::service`] — the same layer
//! `fsdetect` and the daemon call. It parses flags, builds one
//! [`ServiceRequest`] (lint-only: the cost model never runs), and renders
//! the response.
//!
//! `--advise` additionally runs the simulator-backed chunk advisor on each
//! kernel with findings — the one opt-in that is *not* simulation-free.
//!
//! Exit codes: 0 = no findings, 1 = findings or any error, 2 = usage.

use fs_core::service::{KernelInput, Service, ServiceOptions, ServiceRequest};
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    inputs: Vec<String>,
    threads: u32,
    machine: String,
    consts: Vec<(String, i64)>,
    format: Format,
    advise: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fslint <kernel.loop | @bundled>... [--threads N] [--machine paper48|generic|tiny]\n\
         \x20             [--const NAME=VALUE ...] [--format json|sarif|human] [--json] [--advise]\n\
         \x20             [--list] [--explain FS00x] [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        inputs: Vec::new(),
        threads: 8,
        machine: "paper48".to_string(),
        consts: Vec::new(),
        format: Format::Human,
        advise: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => args.machine = it.next().unwrap_or_else(|| usage()),
            "--const" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let Some((name, value)) = kv.split_once('=') else {
                    usage()
                };
                let Ok(value) = value.parse::<i64>() else {
                    usage()
                };
                args.consts.push((name.to_string(), value));
            }
            "--json" => args.format = Format::Json,
            "--format" => match it.next().as_deref() {
                Some("sarif") => args.format = Format::Sarif,
                Some("json") => args.format = Format::Json,
                Some("human") | Some("text") => args.format = Format::Human,
                _ => usage(),
            },
            "--advise" => args.advise = true,
            "--quiet" | "-q" => args.quiet = true,
            "--list" => {
                for e in fs_core::CORPUS {
                    println!("@{:<12} {}", e.name, e.blurb);
                }
                std::process::exit(0);
            }
            "--explain" => {
                let id = it.next().unwrap_or_else(|| usage());
                match fs_core::explain_rule(&id) {
                    Some(text) => {
                        print!("{text}");
                        std::process::exit(0);
                    }
                    None => {
                        eprintln!(
                            "fslint: unknown rule '{id}' (rules: {})",
                            fs_core::LINT_RULES
                                .iter()
                                .map(|r| r.id)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') || other.starts_with('@') => {
                args.inputs.push(other.to_string())
            }
            _ => usage(),
        }
    }
    if args.inputs.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let request = ServiceRequest {
        kernels: args.inputs.iter().map(KernelInput::named).collect(),
        machines: vec![args.machine.clone()],
        grid: None,
        options: ServiceOptions {
            threads: args.threads,
            analyze: false,
            lint: true,
            consts: args.consts.clone(),
            ..ServiceOptions::default()
        },
    };
    let svc = Service::new();
    let resp = svc.handle(&request);

    // Request-level failure (unknown machine): nothing ran, abort.
    if !resp.errors.is_empty() {
        for e in &resp.errors {
            eprintln!("fslint: {e}");
        }
        return ExitCode::FAILURE;
    }
    // Per-kernel failures (bad input, parse error): report each, keep the
    // rest of the batch.
    let mut had_error = false;
    for r in &resp.results {
        if let Some(e) = &r.error {
            eprintln!("fslint: {e}");
            had_error = true;
        }
    }
    let any_findings = resp.findings;

    match args.format {
        Format::Sarif => print!("{}", resp.sarif().render_pretty()),
        Format::Json => print!("{}", resp.envelope().render_pretty()),
        Format::Human => {
            let machine = fs_core::service::machine_by_name(&args.machine)
                .expect("machine resolved by service");
            for r in &resp.results {
                let Some(report) = &r.lint else { continue };
                print!("{}", report.render(&r.file));
                if args.advise && report.has_findings() {
                    // Opt-in simulator-backed refinement of the chunk fix.
                    if let Some(k) = &r.kernel {
                        let advice = fs_core::recommend_chunk(k, &machine, args.threads, 64, None);
                        println!(
                            "    advisor: best chunk {} ({:.2}x vs chunk 1, simulated)",
                            advice.best_chunk, advice.speedup_vs_chunk1
                        );
                    }
                }
            }
            if !args.quiet {
                let linted = resp.results.iter().filter(|r| r.lint.is_some()).count();
                let n_findings: usize = resp
                    .results
                    .iter()
                    .filter_map(|r| r.lint.as_ref())
                    .map(|l| l.result.findings().count())
                    .sum();
                eprintln!(
                    "fslint: {} input(s), {} finding(s){}",
                    linted,
                    n_findings,
                    if had_error { ", errors" } else { "" }
                );
            }
        }
    }

    if had_error || any_findings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
