//! `fslint` — symbolic, simulation-free false-sharing lint for loop DSL
//! kernels.
//!
//! ```text
//! fslint <kernel.loop | @bundled-name>... [--threads N]
//!        [--machine paper48|generic|tiny] [--const NAME=VALUE ...]
//!        [--json] [--format sarif] [--advise] [--list] [--quiet]
//! ```
//!
//! Where `fsdetect` *runs* the paper's false-sharing cost model over the
//! iteration space, `fslint` decides the same question in closed form from
//! the loop's affine structure — microseconds per kernel, independent of
//! trip counts — and reports per-write-site diagnostics with DSL source
//! positions and actionable fixes (padding / chunk widening), padding fixes
//! verified by transform-and-relint. Rules: FS001 (chunk-seam sharing),
//! FS002 (strided interleaving), FS003 (outside the decidable fragment),
//! FS004 (true sharing). See `docs/LINT.md`.
//!
//! Output modes: human text (default, one `file:line:col: severity: [rule]
//! message` block per finding), `--json` (one structured document for all
//! inputs), `--format sarif` (a SARIF 2.1.0 document suitable for code
//! scanning upload). Results go to stdout, diagnostics to stderr.
//!
//! `--advise` additionally runs the simulator-backed chunk advisor on each
//! kernel with findings — the one opt-in that is *not* simulation-free.
//!
//! Exit codes: 0 = no findings, 1 = findings or any error, 2 = usage.

use fs_core::{machines, sarif_document, JsonValue, LintReport};
use std::process::ExitCode;

struct Args {
    inputs: Vec<String>,
    threads: u32,
    machine: String,
    consts: Vec<(String, i64)>,
    json: bool,
    sarif: bool,
    advise: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fslint <kernel.loop | @bundled>... [--threads N] [--machine paper48|generic|tiny]\n\
         \x20             [--const NAME=VALUE ...] [--json] [--format sarif] [--advise] [--list]\n\
         \x20             [--quiet]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        inputs: Vec::new(),
        threads: 8,
        machine: "paper48".to_string(),
        consts: Vec::new(),
        json: false,
        sarif: false,
        advise: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => args.machine = it.next().unwrap_or_else(|| usage()),
            "--const" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let Some((name, value)) = kv.split_once('=') else {
                    usage()
                };
                let Ok(value) = value.parse::<i64>() else {
                    usage()
                };
                args.consts.push((name.to_string(), value));
            }
            "--json" => args.json = true,
            "--format" => match it.next().as_deref() {
                Some("sarif") => args.sarif = true,
                Some("json") => args.json = true,
                Some("text") => {}
                _ => usage(),
            },
            "--advise" => args.advise = true,
            "--quiet" | "-q" => args.quiet = true,
            "--list" => {
                for e in fs_core::CORPUS {
                    println!("@{:<12} {}", e.name, e.blurb);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') || other.starts_with('@') => {
                args.inputs.push(other.to_string())
            }
            _ => usage(),
        }
    }
    if args.inputs.is_empty() {
        usage();
    }
    args
}

/// One successfully linted input.
struct Linted {
    /// Display/artifact name (file path, or `@name` for bundled kernels).
    name: String,
    report: LintReport,
}

fn main() -> ExitCode {
    let args = parse_args();
    let machine = match args.machine.as_str() {
        "paper48" => machines::paper48(),
        "generic" => machines::generic_x86(),
        "tiny" => machines::tiny_test(),
        other => {
            eprintln!("fslint: unknown machine '{other}'");
            return ExitCode::FAILURE;
        }
    };
    let consts: Vec<(&str, i64)> = args.consts.iter().map(|(n, v)| (n.as_str(), *v)).collect();

    let mut linted: Vec<Linted> = Vec::new();
    let mut had_error = false;
    for input in &args.inputs {
        let src = if let Some(name) = input.strip_prefix('@') {
            match fs_core::corpus_entry(name) {
                Some(e) => e.source.to_string(),
                None => {
                    eprintln!("fslint: no bundled kernel '@{name}' (try --list)");
                    had_error = true;
                    continue;
                }
            }
        } else {
            match std::fs::read_to_string(input) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("fslint: cannot read {input}: {e}");
                    had_error = true;
                    continue;
                }
            }
        };
        let kernel = match fs_core::parse_kernel_with_consts(&src, &consts) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("fslint: {}", e.with_source_name(input));
                had_error = true;
                continue;
            }
        };
        match fs_core::try_lint(&kernel, &machine, args.threads) {
            Ok(report) => linted.push(Linted {
                name: input.clone(),
                report,
            }),
            Err(e) => {
                eprintln!("fslint: {input}: {e}");
                had_error = true;
            }
        }
    }

    let any_findings = linted.iter().any(|l| l.report.has_findings());

    if args.sarif {
        let doc = sarif_document(
            linted
                .iter()
                .map(|l| (l.name.clone(), l.report.sarif_results(&l.name)))
                .collect(),
        );
        print!("{}", doc.render_pretty());
    } else if args.json {
        let reports: Vec<JsonValue> = linted
            .iter()
            .map(|l| {
                JsonValue::obj()
                    .field("file", l.name.as_str())
                    .field("lint", l.report.to_json())
            })
            .collect();
        let doc = JsonValue::obj()
            .field("threads", args.threads as u64)
            .field("machine", args.machine.as_str())
            .field("reports", reports)
            .field("findings", any_findings)
            .field("errors", had_error);
        print!("{}", doc.render_pretty());
    } else {
        for l in &linted {
            print!("{}", l.report.render(&l.name));
            if args.advise && l.report.has_findings() {
                // Opt-in simulator-backed refinement of the chunk fix.
                let src_kernel = kernel_of(&l.name, &consts);
                if let Some(k) = src_kernel {
                    let advice = fs_core::recommend_chunk(&k, &machine, args.threads, 64, None);
                    println!(
                        "    advisor: best chunk {} ({:.2}x vs chunk 1, simulated)",
                        advice.best_chunk, advice.speedup_vs_chunk1
                    );
                }
            }
        }
        if !args.quiet {
            let n_findings: usize = linted
                .iter()
                .map(|l| l.report.result.findings().count())
                .sum();
            eprintln!(
                "fslint: {} input(s), {} finding(s){}",
                linted.len(),
                n_findings,
                if had_error { ", errors" } else { "" }
            );
        }
    }

    if had_error || any_findings {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Re-load a kernel for the advisor (it needs the `Kernel`, which the lint
/// report does not retain).
fn kernel_of(input: &str, consts: &[(&str, i64)]) -> Option<loop_ir::Kernel> {
    let src = if let Some(name) = input.strip_prefix('@') {
        fs_core::corpus_entry(name)?.source.to_string()
    } else {
        std::fs::read_to_string(input).ok()?
    };
    fs_core::parse_kernel_with_consts(&src, consts).ok()
}
