//! `fsdetect` — analyze a kernel written in the loop DSL for false sharing.
//!
//! ```text
//! fsdetect <kernel.loop | @bundled-name> [--threads N]
//!          [--machine paper48|generic|tiny] [--predict RUNS] [--json]
//!          [--advise] [--eliminate] [--sim] [--contention] [--baseline]
//!          [--sweep] [--sweep-grid THREADS:CHUNKS] [--workers N]
//!          [--early-exit] [--const NAME=VALUE ...] [--list]
//!          [--profile] [--trace-out FILE] [--quiet] [--verbose]
//! ```
//!
//! Prints the Eq. 1 cost breakdown, the FS case count, victim arrays, and
//! (with `--advise`) a chunk-size recommendation. `--eliminate` runs the
//! cost-model-driven mitigation search (padding vs rescheduling) and prints
//! the transformed kernel. `--sim` replays the kernel through the MESI
//! coherence simulator; `--contention` prints the shared-cache and
//! memory-bus interference estimates. `@name` loads a bundled corpus
//! kernel (`--list` shows them).
//!
//! `--sweep-grid 2,4,8:1,4,16` evaluates the kernel over a threads × chunks
//! grid on the parallel memoized sweep engine (`--workers` sets the pool
//! size; `--early-exit` switches the per-point FS model to the adaptive
//! predictor). `--json` emits the analysis — and the grid, when requested —
//! as one structured JSON document on stdout.
//!
//! Observability (see `docs/OBSERVABILITY.md`): `--profile` prints a span
//! and counter summary to stderr, `--trace-out FILE` writes a Chrome
//! trace-event JSON loadable in `chrome://tracing`/Perfetto, and `--json`
//! carries a `metrics` section (counters, gauges, span aggregates). The
//! *result* always goes to stdout; every diagnostic — usage, warnings,
//! verbose notes, the profile — goes to stderr, so `--json` output can be
//! piped without filtering. `--verbose` adds progress notes; `--quiet`
//! suppresses everything on stderr except errors.

use fs_core::obs;
use fs_core::{
    machines, recommend_chunk, try_analyze, AnalysisOptions, EarlyExit, EvalMode, JsonValue,
    SweepEngine, SweepGrid,
};
use std::process::ExitCode;

/// Stderr diagnostics policy: errors always print; `note` prints unless
/// `--quiet`; `detail` prints only with `--verbose`.
#[derive(Clone, Copy)]
struct Diag {
    quiet: bool,
    verbose: bool,
}

impl Diag {
    fn note(&self, msg: &str) {
        if !self.quiet {
            eprintln!("fsdetect: {msg}");
        }
    }

    fn detail(&self, msg: &str) {
        if self.verbose && !self.quiet {
            eprintln!("fsdetect: {msg}");
        }
    }
}

struct Args {
    path: String,
    threads: u32,
    machine: String,
    predict: Option<u64>,
    advise: bool,
    eliminate: bool,
    sim: bool,
    contention: bool,
    baseline: bool,
    sweep: bool,
    sweep_grid: Option<(Vec<u32>, Vec<u64>)>,
    workers: Option<usize>,
    early_exit: bool,
    json: bool,
    consts: Vec<(String, i64)>,
    profile: bool,
    trace_out: Option<String>,
    quiet: bool,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fsdetect <kernel.loop | @bundled> [--threads N] [--machine paper48|generic|tiny]\n\
         \x20              [--predict RUNS] [--json] [--advise] [--eliminate] [--sim] [--contention]\n\
         \x20              [--sweep] [--sweep-grid THREADS:CHUNKS] [--workers N] [--early-exit]\n\
         \x20              [--const NAME=VALUE ...] [--list]\n\
         \x20              [--profile] [--trace-out FILE] [--quiet] [--verbose]"
    );
    std::process::exit(2);
}

/// Parse `2,4,8:1,4,16,64` into (threads, chunks).
fn parse_grid_spec(spec: &str) -> Option<(Vec<u32>, Vec<u64>)> {
    let (t, c) = spec.split_once(':')?;
    let threads: Option<Vec<u32>> = t.split(',').map(|v| v.trim().parse().ok()).collect();
    let chunks: Option<Vec<u64>> = c.split(',').map(|v| v.trim().parse().ok()).collect();
    match (threads, chunks) {
        (Some(t), Some(c)) if !t.is_empty() && !c.is_empty() => Some((t, c)),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        threads: 8,
        machine: "paper48".to_string(),
        predict: None,
        advise: false,
        eliminate: false,
        sim: false,
        contention: false,
        baseline: false,
        sweep: false,
        sweep_grid: None,
        workers: None,
        early_exit: false,
        json: false,
        consts: Vec::new(),
        profile: false,
        trace_out: None,
        quiet: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => args.machine = it.next().unwrap_or_else(|| usage()),
            "--predict" => {
                args.predict = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--advise" => args.advise = true,
            "--eliminate" => args.eliminate = true,
            "--sim" => args.sim = true,
            "--contention" => args.contention = true,
            "--baseline" => args.baseline = true,
            "--sweep" => args.sweep = true,
            "--sweep-grid" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.sweep_grid = Some(parse_grid_spec(&spec).unwrap_or_else(|| usage()));
            }
            "--workers" => {
                args.workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--early-exit" => args.early_exit = true,
            "--json" => args.json = true,
            "--profile" => args.profile = true,
            "--trace-out" => args.trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" | "-q" => args.quiet = true,
            "--verbose" | "-v" => args.verbose = true,
            "--list" => {
                for e in fs_core::CORPUS {
                    println!("@{:<12} {}", e.name, e.blurb);
                }
                std::process::exit(0);
            }
            "--const" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let Some((name, value)) = kv.split_once('=') else {
                    usage()
                };
                let Ok(value) = value.parse::<i64>() else {
                    usage()
                };
                args.consts.push((name.to_string(), value));
            }
            "--help" | "-h" => usage(),
            other
                if args.path.is_empty() && (!other.starts_with('-') || other.starts_with('@')) =>
            {
                args.path = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

/// The `metrics` section of `--json`: every counter and gauge by name,
/// span aggregates (the per-phase timings), and the trace coverage figure.
fn metrics_json(snap: &obs::Snapshot) -> JsonValue {
    let mut counters = JsonValue::obj();
    for &(name, v) in &snap.counters {
        counters = counters.field(name, v);
    }
    let mut gauges = JsonValue::obj();
    for &(name, v) in &snap.gauges {
        gauges = gauges.field(name, v);
    }
    let spans = snap
        .span_aggregate()
        .into_iter()
        .map(|a| {
            JsonValue::obj()
                .field("name", a.name)
                .field("count", a.count)
                .field("total_ms", a.total_ns as f64 / 1e6)
                .field("max_ms", a.max_ns as f64 / 1e6)
        })
        .collect();
    JsonValue::obj()
        .field("counters", counters)
        .field("gauges", gauges)
        .field("spans", JsonValue::Arr(spans))
        .field("wall_ms", snap.wall_ns() as f64 / 1e6)
        .field("span_coverage", span_coverage(snap))
}

/// Fraction of the snapshot's wall interval inside at least one span.
fn span_coverage(snap: &obs::Snapshot) -> f64 {
    let wall = snap.wall_ns();
    if wall == 0 {
        0.0
    } else {
        snap.covered_ns() as f64 / wall as f64
    }
}

/// The `--profile` summary. Diagnostics, so stderr — `--json` on stdout
/// stays machine-readable even when profiling.
fn print_profile(snap: &obs::Snapshot, grid_result: Option<&fs_core::SweepGridResult>) {
    eprintln!("-- profile --");
    eprintln!(
        "wall {:.3} ms, span coverage {:.1}%",
        snap.wall_ns() as f64 / 1e6,
        span_coverage(snap) * 100.0
    );
    eprintln!(
        "{:<18} {:>8} {:>12} {:>12}",
        "span", "count", "total ms", "max ms"
    );
    for a in snap.span_aggregate() {
        eprintln!(
            "{:<18} {:>8} {:>12.3} {:>12.3}",
            a.name,
            a.count,
            a.total_ns as f64 / 1e6,
            a.max_ns as f64 / 1e6
        );
    }
    let busy = snap.track_busy_ns();
    if busy.len() > 1 {
        eprintln!("tracks:");
        for (t, ns) in busy {
            eprintln!(
                "  {:<16} busy {:>10.3} ms",
                snap.track_name(t).unwrap_or("?"),
                ns as f64 / 1e6
            );
        }
    }
    eprintln!("counters:");
    for &(name, v) in &snap.counters {
        if v > 0 {
            eprintln!("  {name:<26} {v}");
        }
    }
    for &(name, v) in &snap.gauges {
        if v > 0 {
            eprintln!("  {name:<26} {v}");
        }
    }
    if let Some(r) = grid_result {
        eprintln!(
            "sweep: {:.1} points/sec over {} points",
            r.stats.points_per_sec(),
            r.outcomes.len()
        );
        eprintln!("slowest points:");
        for (i, ns) in r.stats.slowest(5) {
            let o = &r.outcomes[i];
            eprintln!(
                "  {:<16} threads {:>3} chunk {:>6}  {:>10.3} ms",
                o.kernel,
                o.threads,
                o.chunk,
                ns as f64 / 1e6
            );
        }
    }
}

/// Drop-the-span-then-snapshot finalization shared by the JSON and text
/// paths: write the Chrome trace (if requested) and print the profile.
/// Returns false when the trace file could not be written.
fn finalize_obs(
    args: &Args,
    diag: &Diag,
    snap: &obs::Snapshot,
    grid_result: Option<&fs_core::SweepGridResult>,
) -> bool {
    if let Some(path) = &args.trace_out {
        let trace = obs::trace::chrome_trace(snap);
        match std::fs::write(path, trace) {
            Ok(()) => {
                diag.detail(&format!(
                    "trace written to {path} ({} spans, {:.1}% coverage)",
                    snap.spans.len(),
                    span_coverage(snap) * 100.0
                ));
            }
            Err(e) => {
                eprintln!("fsdetect: cannot write trace {path}: {e}");
                return false;
            }
        }
    }
    if args.profile {
        print_profile(snap, grid_result);
    }
    true
}

fn main() -> ExitCode {
    let args = parse_args();
    let diag = Diag {
        quiet: args.quiet,
        verbose: args.verbose,
    };
    // Observability stays a no-op unless an export was requested (`--json`
    // carries the metrics section, so it counts as a request).
    let obs_on = args.profile || args.trace_out.is_some() || args.json;
    if obs_on {
        obs::configure(obs::ObsConfig::enabled());
    }
    // Top-level span: everything from parsing to the last model run is
    // inside it, so trace coverage of the wall interval stays >= 95%.
    let mut main_span = Some(obs::span("fsdetect.main"));
    let src = if let Some(name) = args.path.strip_prefix('@') {
        match fs_core::corpus_entry(name) {
            Some(e) => e.source.to_string(),
            None => {
                eprintln!("fsdetect: no bundled kernel '@{name}' (try --list)");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(&args.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fsdetect: cannot read {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let consts: Vec<(&str, i64)> = args.consts.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let kernel = match fs_core::parse_kernel_with_consts(&src, &consts) {
        Ok(k) => k,
        Err(e) => {
            // `kernels/stencil.loop:12:7: parse error: ...` — clickable in
            // editors and CI logs.
            eprintln!("fsdetect: {}", e.with_source_name(&args.path));
            return ExitCode::FAILURE;
        }
    };
    let machine = match args.machine.as_str() {
        "paper48" => machines::paper48(),
        "generic" => machines::generic_x86(),
        "tiny" => machines::tiny_test(),
        other => {
            eprintln!("fsdetect: unknown machine '{other}'");
            return ExitCode::FAILURE;
        }
    };

    diag.detail(&format!(
        "parsed kernel '{}' ({} arrays), machine {}, {} threads",
        kernel.name,
        kernel.arrays.len(),
        args.machine,
        args.threads
    ));

    let mut opts = AnalysisOptions::new(args.threads);
    opts.predict_chunk_runs = args.predict;
    let report = match try_analyze(&kernel, &machine, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsdetect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    diag.detail(&format!(
        "analysis: {} FS cases, {:.1}% of modeled cycles",
        report.cost.fs.fs_cases,
        report.fs_percent()
    ));

    let grid_result = if let Some((threads, chunks)) = &args.sweep_grid {
        let grid = SweepGrid::new(
            vec![(kernel.name.clone(), kernel.clone())],
            (machine.name.clone(), machine.clone()),
            threads.clone(),
            chunks.clone(),
        );
        let mode = if args.early_exit {
            if args.predict.is_some() {
                diag.note("--early-exit overrides --predict for the sweep grid");
            }
            EvalMode::EarlyExit(EarlyExit::default())
        } else {
            match args.predict {
                Some(runs) => EvalMode::Predict(runs),
                None => EvalMode::Full,
            }
        };
        let mut engine = SweepEngine::new().mode(mode);
        if let Some(w) = args.workers {
            engine = engine.workers(w);
        }
        match engine.run(&grid) {
            Ok(r) => {
                diag.detail(&format!(
                    "sweep grid: {} points in {:.1} ms ({} memo hits)",
                    r.outcomes.len(),
                    r.stats.wall_ns as f64 / 1e6,
                    r.memo_hits
                ));
                Some(r)
            }
            Err(e) => {
                eprintln!("fsdetect: sweep grid: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    if args.json {
        // Close the top-level span before snapshotting so the metrics and
        // trace cover the whole run.
        drop(main_span.take());
        let snap = obs::snapshot();
        let mut doc = JsonValue::obj().field("report", report.to_json());
        // The symbolic lint verdict rides along: same kernel, machine and
        // team as the simulated report, closed-form cost.
        if let Ok(lint) = fs_core::try_lint(&kernel, &machine, args.threads) {
            doc = doc.field("lint", lint.to_json());
        }
        if let Some(r) = &grid_result {
            doc = doc.field("sweep_grid", r.to_json());
            doc = doc.field("sweep_stats", r.stats_json(5));
        }
        doc = doc.field("metrics", metrics_json(&snap));
        print!("{}", doc.render_pretty());
        if !finalize_obs(&args, &diag, &snap, grid_result.as_ref()) {
            return ExitCode::FAILURE;
        }
        return if report.has_significant_fs() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    print!("{}", report.render());

    if let Some(r) = &grid_result {
        println!("-- sweep grid ({} points) --", r.outcomes.len());
        println!(
            "{:>8} {:>8} {:>12} {:>16} {:>8}",
            "threads", "chunk", "fs cases", "total cycles", "fs %"
        );
        for o in &r.outcomes {
            println!(
                "{:>8} {:>8} {:>12} {:>16.0} {:>7.1}%",
                o.threads,
                o.chunk,
                o.cost.fs.fs_cases,
                o.cost.total_cycles,
                o.cost.fs_fraction() * 100.0
            );
        }
        if let Some(best) = r.best() {
            println!(
                "best point: {} threads, chunk {} ({:.0} cycles)",
                best.threads, best.chunk, best.cost.total_cycles
            );
        }
        println!("memo: {} hits, {} misses", r.memo_hits, r.memo_misses);
    }

    if args.sim {
        let stats = fs_core::simulation::simulate_kernel(
            &kernel,
            &machine,
            fs_core::simulation::SimOptions::new(args.threads),
        );
        println!("-- MESI simulator (measured) --");
        print!("{stats}");
    }

    if args.advise {
        let advice = recommend_chunk(&kernel, &machine, args.threads, 1024, args.predict);
        println!("-- chunk-size advice --");
        println!("{:>8} {:>14} {:>16}", "chunk", "fs cases", "total cycles");
        for p in &advice.points {
            println!("{:>8} {:>14} {:>16.0}", p.chunk, p.fs_cases, p.total_cycles);
        }
        println!(
            "recommended chunk size: {} ({:.2}x faster than chunk 1)",
            advice.best_chunk, advice.speedup_vs_chunk1
        );
    }

    if args.baseline {
        let a = fs_core::simulation::SharingAnalysis::of_kernel(
            &kernel,
            args.threads,
            machine.line_size(),
        );
        let (p, rs, ts, fs) = a.census();
        println!("-- address-set baseline (LaRowe-style, §V related work) --");
        println!("lines: {p} private, {rs} read-shared, {ts} true-shared, {fs} false-shared");
        let bases = kernel.array_bases(machine.line_size());
        for (line, rec) in a.false_shared_lines().into_iter().take(5) {
            let addr = line * machine.line_size();
            let name = kernel
                .arrays
                .iter()
                .enumerate()
                .find(|(i, d)| addr >= bases[*i] && addr < bases[*i] + d.size_bytes().max(1))
                .map(|(_, d)| d.name.as_str())
                .unwrap_or("?");
            println!(
                "  line {line:>8} in '{name}': {} sharers, {} accesses",
                rec.sharer_count(),
                rec.accesses
            );
        }
    }

    if args.contention {
        let sc = fs_core::shared_cache_interference(&kernel, &machine, args.threads);
        let bus = fs_core::bus_interference(&kernel, &machine, args.threads);
        println!("-- contention extensions (paper §VI future work) --");
        println!(
            "shared cache: cluster footprint {:.0} KB of {} KB -> overflow {:.0}%, +{:.2} cy/iter",
            sc.cluster_footprint / 1024.0,
            sc.shared_capacity / 1024,
            sc.overflow_fraction * 100.0,
            sc.extra_cycles_per_iter.max(0.0)
        );
        println!(
            "memory bus:   demand {:.1} B/cy of {:.1} B/cy -> slowdown {:.2}x",
            bus.demanded_bytes_per_cycle, bus.available_bytes_per_cycle, bus.slowdown
        );
    }

    if args.sweep {
        let mut aopts = fs_core::AnalysisOptions::new(args.threads);
        aopts.predict_chunk_runs = args.predict;
        println!("-- hardware sensitivity sweeps --");
        for sweep in cost_model::standard_battery(&kernel, &machine, &aopts) {
            println!("{}:", sweep.parameter);
            for p in &sweep.points {
                println!(
                    "  {:>10} -> FS {:>5.1}% of {:>12.0} cycles ({} cases)",
                    p.value,
                    p.fs_fraction * 100.0,
                    p.total_cycles,
                    p.fs_cases
                );
            }
        }
    }

    if args.eliminate {
        let mut opts = fs_core::AnalysisOptions::new(args.threads);
        opts.predict_chunk_runs = args.predict;
        let mit = fs_core::eliminate_false_sharing(&kernel, &machine, args.threads, &opts);
        println!("-- mitigation search --");
        if mit.candidates.is_empty() {
            println!("no false sharing to eliminate");
        } else {
            for c in &mit.candidates {
                println!(
                    "  {:<48} {:>10.0} cycles ({:.2}x)",
                    c.description, c.cost.total_cycles, c.speedup
                );
            }
            let best = mit.best().unwrap();
            println!("best: {}", best.description);
            println!("-- transformed kernel --");
            print!("{}", fs_core::kernel_to_dsl(&best.kernel));
        }
    }

    if obs_on {
        drop(main_span.take());
        let snap = obs::snapshot();
        if !finalize_obs(&args, &diag, &snap, grid_result.as_ref()) {
            return ExitCode::FAILURE;
        }
    }

    if report.has_significant_fs() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
