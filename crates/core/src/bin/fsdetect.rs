//! `fsdetect` — analyze a kernel written in the loop DSL for false sharing.
//!
//! ```text
//! fsdetect <kernel.loop | @bundled-name> [--threads N]
//!          [--machine paper48|generic|tiny] [--predict RUNS]
//!          [--format json|sarif|human] [--json]
//!          [--advise] [--eliminate] [--sim] [--contention] [--baseline]
//!          [--sweep] [--sweep-grid THREADS:CHUNKS] [--workers N]
//!          [--sim-workers N] [--early-exit] [--const NAME=VALUE ...] [--list]
//!          [--profile] [--trace-out FILE] [--quiet] [--verbose]
//! ```
//!
//! Prints the Eq. 1 cost breakdown, the FS case count, victim arrays, and
//! (with `--advise`) a chunk-size recommendation. `--eliminate` runs the
//! cost-model-driven mitigation search (padding vs rescheduling) and prints
//! the transformed kernel. `--sim` replays the kernel through the MESI
//! coherence simulator (`--sim-workers N` with `N >= 2` requests the
//! set-sharded parallel replay — same stats, see `docs/SIM.md`);
//! `--contention` prints the shared-cache and memory-bus interference
//! estimates. `@name` loads a bundled corpus kernel (`--list` shows them).
//!
//! `--sweep-grid 2,4,8:1,4,16` evaluates the kernel over a threads × chunks
//! grid on the parallel memoized sweep engine (`--workers` sets the pool
//! size; `--early-exit` switches the per-point FS model to the adaptive
//! predictor). `--format json` (or `--json`) emits the versioned
//! `fsd_version` envelope — the same document `fslint --format json` and
//! the `fsd` daemon produce (see `docs/DAEMON.md`); `--format sarif` emits
//! the lint results as SARIF 2.1.0.
//!
//! This binary is a veneer: every analysis step runs through
//! [`fs_core::service`], the same layer the daemon serves over a socket.
//! Argument parsing, exit codes, and stderr diagnostics live here; nothing
//! else does.
//!
//! Observability (see `docs/OBSERVABILITY.md`): `--profile` prints a span
//! and counter summary to stderr, `--trace-out FILE` writes a Chrome
//! trace-event JSON loadable in `chrome://tracing`/Perfetto, and `--json`
//! carries a `metrics` section (counters, gauges, span aggregates). The
//! *result* always goes to stdout; every diagnostic — usage, warnings,
//! verbose notes, the profile — goes to stderr, so `--json` output can be
//! piped without filtering. `--verbose` adds progress notes; `--quiet`
//! suppresses everything on stderr except errors.

use fs_core::service::{self, KernelInput, Service, ServiceOptions, ServiceRequest};
use fs_core::{extras, obs};
use std::process::ExitCode;

/// Stderr diagnostics policy: errors always print; `note` prints unless
/// `--quiet`; `detail` prints only with `--verbose`.
#[derive(Clone, Copy)]
struct Diag {
    quiet: bool,
    verbose: bool,
}

impl Diag {
    fn note(&self, msg: &str) {
        if !self.quiet {
            eprintln!("fsdetect: {msg}");
        }
    }

    fn detail(&self, msg: &str) {
        if self.verbose && !self.quiet {
            eprintln!("fsdetect: {msg}");
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    path: String,
    threads: u32,
    machine: String,
    predict: Option<u64>,
    advise: bool,
    eliminate: bool,
    sim: bool,
    contention: bool,
    baseline: bool,
    sweep: bool,
    sweep_grid: Option<(Vec<u32>, Vec<u64>)>,
    workers: Option<usize>,
    sim_workers: usize,
    early_exit: bool,
    fs_path: fs_core::FsPath,
    format: Format,
    consts: Vec<(String, i64)>,
    profile: bool,
    trace_out: Option<String>,
    quiet: bool,
    verbose: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fsdetect <kernel.loop | @bundled> [--threads N] [--machine paper48|generic|tiny]\n\
         \x20              [--predict RUNS] [--format json|sarif|human] [--json] [--advise]\n\
         \x20              [--eliminate] [--sim] [--contention] [--sweep]\n\
         \x20              [--sweep-grid THREADS:CHUNKS] [--workers N] [--sim-workers N]\n\
         \x20              [--early-exit]\n\
         \x20              [--path analytic|symbolic|optimized|reference]\n\
         \x20              [--const NAME=VALUE ...] [--list]\n\
         \x20              [--profile] [--trace-out FILE] [--quiet] [--verbose]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        threads: 8,
        machine: "paper48".to_string(),
        predict: None,
        advise: false,
        eliminate: false,
        sim: false,
        contention: false,
        baseline: false,
        sweep: false,
        sweep_grid: None,
        workers: None,
        sim_workers: 0,
        early_exit: false,
        fs_path: fs_core::FsPath::Symbolic,
        format: Format::Human,
        consts: Vec::new(),
        profile: false,
        trace_out: None,
        quiet: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => args.machine = it.next().unwrap_or_else(|| usage()),
            "--predict" => {
                args.predict = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--advise" => args.advise = true,
            "--eliminate" => args.eliminate = true,
            "--sim" => args.sim = true,
            "--contention" => args.contention = true,
            "--baseline" => args.baseline = true,
            "--sweep" => args.sweep = true,
            "--sweep-grid" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.sweep_grid = Some(service::parse_grid_spec(&spec).unwrap_or_else(|| usage()));
            }
            "--workers" => {
                args.workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--sim-workers" => {
                args.sim_workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--early-exit" => args.early_exit = true,
            "--path" => {
                args.fs_path = it
                    .next()
                    .as_deref()
                    .and_then(fs_core::FsPath::parse)
                    .unwrap_or_else(|| usage())
            }
            "--json" => args.format = Format::Json,
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("sarif") => args.format = Format::Sarif,
                Some("human") | Some("text") => args.format = Format::Human,
                _ => usage(),
            },
            "--profile" => args.profile = true,
            "--trace-out" => args.trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--quiet" | "-q" => args.quiet = true,
            "--verbose" | "-v" => args.verbose = true,
            "--list" => {
                for e in fs_core::CORPUS {
                    println!("@{:<12} {}", e.name, e.blurb);
                }
                std::process::exit(0);
            }
            "--const" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let Some((name, value)) = kv.split_once('=') else {
                    usage()
                };
                let Ok(value) = value.parse::<i64>() else {
                    usage()
                };
                args.consts.push((name.to_string(), value));
            }
            "--help" | "-h" => usage(),
            other
                if args.path.is_empty() && (!other.starts_with('-') || other.starts_with('@')) =>
            {
                args.path = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

/// Drop-the-span-then-snapshot finalization shared by the JSON and text
/// paths: write the Chrome trace (if requested) and print the profile.
/// Returns false when the trace file could not be written.
fn finalize_obs(
    args: &Args,
    diag: &Diag,
    snap: &obs::Snapshot,
    grid_result: Option<&fs_core::SweepGridResult>,
) -> bool {
    if let Some(path) = &args.trace_out {
        let trace = obs::trace::chrome_trace(snap);
        match std::fs::write(path, trace) {
            Ok(()) => {
                diag.detail(&format!(
                    "trace written to {path} ({} spans, {:.1}% coverage)",
                    snap.spans.len(),
                    service::span_coverage(snap) * 100.0
                ));
            }
            Err(e) => {
                eprintln!("fsdetect: cannot write trace {path}: {e}");
                return false;
            }
        }
    }
    if args.profile {
        eprint!("{}", extras::profile_text(snap, grid_result));
    }
    true
}

fn main() -> ExitCode {
    let args = parse_args();
    let diag = Diag {
        quiet: args.quiet,
        verbose: args.verbose,
    };
    // Observability stays a no-op unless an export was requested (`--json`
    // carries the metrics section, so it counts as a request).
    let obs_on = args.profile || args.trace_out.is_some() || args.format == Format::Json;
    if obs_on {
        obs::configure(obs::ObsConfig::enabled());
    }
    // Top-level span: everything from parsing to the last model run is
    // inside it, so trace coverage of the wall interval stays >= 95%.
    let mut main_span = Some(obs::span("fsdetect.main"));

    if args.early_exit && args.predict.is_some() && args.sweep_grid.is_some() {
        diag.note("--early-exit overrides --predict for the sweep grid");
    }

    let request = ServiceRequest {
        kernels: vec![KernelInput::named(&args.path)],
        machines: vec![args.machine.clone()],
        grid: args.sweep_grid.clone(),
        options: ServiceOptions {
            threads: args.threads,
            predict: args.predict,
            early_exit: args.early_exit,
            workers: args.workers,
            sim_workers: args.sim_workers,
            analyze: true,
            lint: true,
            timing: true,
            consts: args.consts.clone(),
            path: args.fs_path,
        },
    };
    let svc = Service::new();
    let resp = svc.handle(&request);

    // Request-level failures (unknown machine, invalid sweep grid) and the
    // single kernel's own failure both abort before any output.
    for e in &resp.errors {
        eprintln!("fsdetect: {e}");
    }
    if let Some(e) = resp.results.first().and_then(|r| r.error.as_deref()) {
        eprintln!("fsdetect: {e}");
    }
    if resp.has_errors() {
        return ExitCode::FAILURE;
    }
    let result = &resp.results[0];
    let kernel = result.kernel.as_ref().expect("no error implies a kernel");
    let report = result.report.as_ref().expect("analyze requested");

    diag.detail(&format!(
        "parsed kernel '{}' ({} arrays), machine {}, {} threads",
        kernel.name,
        kernel.arrays.len(),
        args.machine,
        args.threads
    ));
    diag.detail(&format!(
        "analysis: {} FS cases, {:.1}% of modeled cycles",
        report.cost.fs.fs_cases,
        report.fs_percent()
    ));
    if let Some(r) = &resp.sweep {
        diag.detail(&format!(
            "sweep grid: {} points in {:.1} ms ({} memo hits)",
            r.outcomes.len(),
            r.stats.wall_ns as f64 / 1e6,
            r.memo_hits
        ));
    }

    let exit = if resp.has_significant_fs() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    };

    match args.format {
        Format::Json => {
            // Close the top-level span before snapshotting so the metrics
            // and trace cover the whole run.
            drop(main_span.take());
            let snap = obs::snapshot();
            let doc = resp
                .envelope()
                .field("metrics", service::metrics_json(&snap));
            print!("{}", doc.render_pretty());
            if !finalize_obs(&args, &diag, &snap, resp.sweep.as_ref()) {
                return ExitCode::FAILURE;
            }
            return exit;
        }
        Format::Sarif => {
            print!("{}", resp.sarif().render_pretty());
            return exit;
        }
        Format::Human => {}
    }

    print!("{}", report.render());
    let machine = service::machine_by_name(&args.machine).expect("machine resolved by service");
    if let Some(r) = &resp.sweep {
        print!("{}", extras::grid_section(r));
    }
    if args.sim {
        print!(
            "{}",
            extras::sim_section(kernel, &machine, args.threads, args.sim_workers)
        );
    }
    if args.advise {
        print!(
            "{}",
            extras::advice_section(kernel, &machine, args.threads, args.predict)
        );
    }
    if args.baseline {
        print!(
            "{}",
            extras::baseline_section(kernel, &machine, args.threads)
        );
    }
    if args.contention {
        print!(
            "{}",
            extras::contention_section(kernel, &machine, args.threads)
        );
    }
    if args.sweep {
        print!(
            "{}",
            extras::sweeps_section(kernel, &machine, args.threads, args.predict)
        );
    }
    if args.eliminate {
        print!(
            "{}",
            extras::eliminate_section(kernel, &machine, args.threads, args.predict)
        );
    }

    if obs_on {
        drop(main_span.take());
        let snap = obs::snapshot();
        if !finalize_obs(&args, &diag, &snap, resp.sweep.as_ref()) {
            return ExitCode::FAILURE;
        }
    }
    exit
}
