//! `fsdetect` — analyze a kernel written in the loop DSL for false sharing.
//!
//! ```text
//! fsdetect <kernel.loop | @bundled-name> [--threads N]
//!          [--machine paper48|generic|tiny] [--predict RUNS] [--json]
//!          [--advise] [--eliminate] [--sim] [--contention] [--baseline]
//!          [--sweep] [--sweep-grid THREADS:CHUNKS] [--workers N]
//!          [--early-exit] [--const NAME=VALUE ...] [--list]
//! ```
//!
//! Prints the Eq. 1 cost breakdown, the FS case count, victim arrays, and
//! (with `--advise`) a chunk-size recommendation. `--eliminate` runs the
//! cost-model-driven mitigation search (padding vs rescheduling) and prints
//! the transformed kernel. `--sim` replays the kernel through the MESI
//! coherence simulator; `--contention` prints the shared-cache and
//! memory-bus interference estimates. `@name` loads a bundled corpus
//! kernel (`--list` shows them).
//!
//! `--sweep-grid 2,4,8:1,4,16` evaluates the kernel over a threads × chunks
//! grid on the parallel memoized sweep engine (`--workers` sets the pool
//! size; `--early-exit` switches the per-point FS model to the adaptive
//! predictor). `--json` emits the analysis — and the grid, when requested —
//! as one structured JSON document on stdout.

use fs_core::{
    machines, recommend_chunk, try_analyze, AnalysisOptions, EarlyExit, EvalMode, JsonValue,
    SweepEngine, SweepGrid,
};
use std::process::ExitCode;

struct Args {
    path: String,
    threads: u32,
    machine: String,
    predict: Option<u64>,
    advise: bool,
    eliminate: bool,
    sim: bool,
    contention: bool,
    baseline: bool,
    sweep: bool,
    sweep_grid: Option<(Vec<u32>, Vec<u64>)>,
    workers: Option<usize>,
    early_exit: bool,
    json: bool,
    consts: Vec<(String, i64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: fsdetect <kernel.loop | @bundled> [--threads N] [--machine paper48|generic|tiny]\n\
         \x20              [--predict RUNS] [--json] [--advise] [--eliminate] [--sim] [--contention]\n\
         \x20              [--sweep] [--sweep-grid THREADS:CHUNKS] [--workers N] [--early-exit]\n\
         \x20              [--const NAME=VALUE ...] [--list]"
    );
    std::process::exit(2);
}

/// Parse `2,4,8:1,4,16,64` into (threads, chunks).
fn parse_grid_spec(spec: &str) -> Option<(Vec<u32>, Vec<u64>)> {
    let (t, c) = spec.split_once(':')?;
    let threads: Option<Vec<u32>> = t.split(',').map(|v| v.trim().parse().ok()).collect();
    let chunks: Option<Vec<u64>> = c.split(',').map(|v| v.trim().parse().ok()).collect();
    match (threads, chunks) {
        (Some(t), Some(c)) if !t.is_empty() && !c.is_empty() => Some((t, c)),
        _ => None,
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        threads: 8,
        machine: "paper48".to_string(),
        predict: None,
        advise: false,
        eliminate: false,
        sim: false,
        contention: false,
        baseline: false,
        sweep: false,
        sweep_grid: None,
        workers: None,
        early_exit: false,
        json: false,
        consts: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--machine" => args.machine = it.next().unwrap_or_else(|| usage()),
            "--predict" => {
                args.predict = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--advise" => args.advise = true,
            "--eliminate" => args.eliminate = true,
            "--sim" => args.sim = true,
            "--contention" => args.contention = true,
            "--baseline" => args.baseline = true,
            "--sweep" => args.sweep = true,
            "--sweep-grid" => {
                let spec = it.next().unwrap_or_else(|| usage());
                args.sweep_grid = Some(parse_grid_spec(&spec).unwrap_or_else(|| usage()));
            }
            "--workers" => {
                args.workers = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--early-exit" => args.early_exit = true,
            "--json" => args.json = true,
            "--list" => {
                for e in fs_core::CORPUS {
                    println!("@{:<12} {}", e.name, e.blurb);
                }
                std::process::exit(0);
            }
            "--const" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let Some((name, value)) = kv.split_once('=') else {
                    usage()
                };
                let Ok(value) = value.parse::<i64>() else {
                    usage()
                };
                args.consts.push((name.to_string(), value));
            }
            "--help" | "-h" => usage(),
            other
                if args.path.is_empty() && (!other.starts_with('-') || other.starts_with('@')) =>
            {
                args.path = other.to_string()
            }
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = if let Some(name) = args.path.strip_prefix('@') {
        match fs_core::corpus_entry(name) {
            Some(e) => e.source.to_string(),
            None => {
                eprintln!("fsdetect: no bundled kernel '@{name}' (try --list)");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match std::fs::read_to_string(&args.path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fsdetect: cannot read {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let consts: Vec<(&str, i64)> = args.consts.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let kernel = match fs_core::parse_kernel_with_consts(&src, &consts) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("fsdetect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let machine = match args.machine.as_str() {
        "paper48" => machines::paper48(),
        "generic" => machines::generic_x86(),
        "tiny" => machines::tiny_test(),
        other => {
            eprintln!("fsdetect: unknown machine '{other}'");
            return ExitCode::FAILURE;
        }
    };

    let mut opts = AnalysisOptions::new(args.threads);
    opts.predict_chunk_runs = args.predict;
    let report = match try_analyze(&kernel, &machine, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsdetect: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };

    let grid_result = if let Some((threads, chunks)) = &args.sweep_grid {
        let grid = SweepGrid::new(
            vec![(kernel.name.clone(), kernel.clone())],
            (machine.name.clone(), machine.clone()),
            threads.clone(),
            chunks.clone(),
        );
        let mode = if args.early_exit {
            EvalMode::EarlyExit(EarlyExit::default())
        } else {
            match args.predict {
                Some(runs) => EvalMode::Predict(runs),
                None => EvalMode::Full,
            }
        };
        let mut engine = SweepEngine::new().mode(mode);
        if let Some(w) = args.workers {
            engine = engine.workers(w);
        }
        match engine.run(&grid) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("fsdetect: sweep grid: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    if args.json {
        let mut doc = JsonValue::obj().field("report", report.to_json());
        if let Some(r) = &grid_result {
            doc = doc.field("sweep_grid", r.to_json());
        }
        print!("{}", doc.render_pretty());
        return if report.has_significant_fs() {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    print!("{}", report.render());

    if let Some(r) = &grid_result {
        println!("-- sweep grid ({} points) --", r.outcomes.len());
        println!(
            "{:>8} {:>8} {:>12} {:>16} {:>8}",
            "threads", "chunk", "fs cases", "total cycles", "fs %"
        );
        for o in &r.outcomes {
            println!(
                "{:>8} {:>8} {:>12} {:>16.0} {:>7.1}%",
                o.threads,
                o.chunk,
                o.cost.fs.fs_cases,
                o.cost.total_cycles,
                o.cost.fs_fraction() * 100.0
            );
        }
        if let Some(best) = r.best() {
            println!(
                "best point: {} threads, chunk {} ({:.0} cycles)",
                best.threads, best.chunk, best.cost.total_cycles
            );
        }
        println!("memo: {} hits, {} misses", r.memo_hits, r.memo_misses);
    }

    if args.sim {
        let stats = fs_core::simulation::simulate_kernel(
            &kernel,
            &machine,
            fs_core::simulation::SimOptions::new(args.threads),
        );
        println!("-- MESI simulator (measured) --");
        print!("{stats}");
    }

    if args.advise {
        let advice = recommend_chunk(&kernel, &machine, args.threads, 1024, args.predict);
        println!("-- chunk-size advice --");
        println!("{:>8} {:>14} {:>16}", "chunk", "fs cases", "total cycles");
        for p in &advice.points {
            println!("{:>8} {:>14} {:>16.0}", p.chunk, p.fs_cases, p.total_cycles);
        }
        println!(
            "recommended chunk size: {} ({:.2}x faster than chunk 1)",
            advice.best_chunk, advice.speedup_vs_chunk1
        );
    }

    if args.baseline {
        let a = fs_core::simulation::SharingAnalysis::of_kernel(
            &kernel,
            args.threads,
            machine.line_size(),
        );
        let (p, rs, ts, fs) = a.census();
        println!("-- address-set baseline (LaRowe-style, §V related work) --");
        println!("lines: {p} private, {rs} read-shared, {ts} true-shared, {fs} false-shared");
        let bases = kernel.array_bases(machine.line_size());
        for (line, rec) in a.false_shared_lines().into_iter().take(5) {
            let addr = line * machine.line_size();
            let name = kernel
                .arrays
                .iter()
                .enumerate()
                .find(|(i, d)| addr >= bases[*i] && addr < bases[*i] + d.size_bytes().max(1))
                .map(|(_, d)| d.name.as_str())
                .unwrap_or("?");
            println!(
                "  line {line:>8} in '{name}': {} sharers, {} accesses",
                rec.sharer_count(),
                rec.accesses
            );
        }
    }

    if args.contention {
        let sc = fs_core::shared_cache_interference(&kernel, &machine, args.threads);
        let bus = fs_core::bus_interference(&kernel, &machine, args.threads);
        println!("-- contention extensions (paper §VI future work) --");
        println!(
            "shared cache: cluster footprint {:.0} KB of {} KB -> overflow {:.0}%, +{:.2} cy/iter",
            sc.cluster_footprint / 1024.0,
            sc.shared_capacity / 1024,
            sc.overflow_fraction * 100.0,
            sc.extra_cycles_per_iter.max(0.0)
        );
        println!(
            "memory bus:   demand {:.1} B/cy of {:.1} B/cy -> slowdown {:.2}x",
            bus.demanded_bytes_per_cycle, bus.available_bytes_per_cycle, bus.slowdown
        );
    }

    if args.sweep {
        let mut aopts = fs_core::AnalysisOptions::new(args.threads);
        aopts.predict_chunk_runs = args.predict;
        println!("-- hardware sensitivity sweeps --");
        for sweep in cost_model::standard_battery(&kernel, &machine, &aopts) {
            println!("{}:", sweep.parameter);
            for p in &sweep.points {
                println!(
                    "  {:>10} -> FS {:>5.1}% of {:>12.0} cycles ({} cases)",
                    p.value,
                    p.fs_fraction * 100.0,
                    p.total_cycles,
                    p.fs_cases
                );
            }
        }
    }

    if args.eliminate {
        let mut opts = fs_core::AnalysisOptions::new(args.threads);
        opts.predict_chunk_runs = args.predict;
        let mit = fs_core::eliminate_false_sharing(&kernel, &machine, args.threads, &opts);
        println!("-- mitigation search --");
        if mit.candidates.is_empty() {
            println!("no false sharing to eliminate");
        } else {
            for c in &mit.candidates {
                println!(
                    "  {:<48} {:>10.0} cycles ({:.2}x)",
                    c.description, c.cost.total_cycles, c.speedup
                );
            }
            let best = mit.best().unwrap();
            println!("best: {}", best.description);
            println!("-- transformed kernel --");
            print!("{}", fs_core::kernel_to_dsl(&best.kernel));
        }
    }

    if report.has_significant_fs() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
