//! A hand-rolled JSON value + serializer + parser, so the default (fully
//! offline) build can emit and consume structured output with zero
//! dependencies.
//!
//! Objects are ordered vectors, not maps: serialization order is exactly
//! insertion order, which is what makes `--sweep-grid` output byte-stable
//! across runs and evaluation strategies. The parser ([`parse`]) preserves
//! source order the same way, so parse → render round-trips keep field
//! order.

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Serialized via [`fmt_f64`]; integral values print without a
    /// fractional part.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Ordered key/value pairs (insertion order is serialization order).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Append a field (builder-style; on non-objects this is a no-op).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        if let JsonValue::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&fmt_f64(*n)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The value of field `key` when `self` is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer (integral, in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && *n == n.trunc() && *n < 1.8e19 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float the way JSON expects: integral values without a
/// fractional part, non-finite values as `null` (JSON has no NaN/Inf).
pub fn fmt_f64(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

/// Error from [`parse`]: what went wrong and the byte offset it went wrong
/// at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parse one JSON document. Trailing content (other than whitespace) is an
/// error, which is what a newline-delimited protocol wants: each line must
/// be exactly one value.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after the current position (the `\u` is consumed;
    /// on entry `pos` is at the 'u'). Leaves `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = start + 3;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonParseError {
                message: "invalid number".to_string(),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_compactly() {
        let v = JsonValue::obj()
            .field("name", "heat")
            .field("ok", true)
            .field("cycles", 1234u64)
            .field("frac", 0.5)
            .field("tags", JsonValue::Arr(vec!["a".into(), "b".into()]))
            .field("none", JsonValue::Null);
        assert_eq!(
            v.render(),
            r#"{"name":"heat","ok":true,"cycles":1234,"frac":0.5,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn numbers_print_integral_when_integral() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-4.0), "-4");
        assert_eq!(fmt_f64(3.25), "3.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn field_order_is_insertion_order() {
        let a = JsonValue::obj().field("z", 1u64).field("a", 2u64);
        assert_eq!(a.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parse_round_trips_render() {
        let v = JsonValue::obj()
            .field("name", "heat")
            .field("ok", true)
            .field("cycles", 1234u64)
            .field("frac", 0.5)
            .field("tags", JsonValue::Arr(vec!["a".into(), "b".into()]))
            .field("none", JsonValue::Null)
            .field("nested", JsonValue::obj().field("z", 1u64).field("a", 2u64));
        let parsed = parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.render(), v.render(), "field order preserved");
        // Pretty output parses to the same value too.
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_accessors() {
        let v = parse(r#"{"s":"x","n":3.5,"i":7,"b":false,"a":[1,2],"o":{"k":null}}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("n").unwrap().as_u64(), None, "3.5 is not integral");
        assert_eq!(v.get("i").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("o").unwrap().get("k"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").unwrap().get("nope"), None, "get on non-object");
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair: U+1F600.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Raw UTF-8 passes through.
        let v = parse("\"héllo\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo"));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(parse("-4").unwrap(), JsonValue::Num(-4.0));
        assert_eq!(parse("3.25").unwrap(), JsonValue::Num(3.25));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(parse("2.5E-1").unwrap(), JsonValue::Num(0.25));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"\\q\"",
            "\"\\u12\"",
            "1 2",
            "{} extra",
            "nan",
            "-",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?} -> {err:?}");
        }
        // Error carries a useful offset.
        let err = parse("{\"a\": ?}").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"));
    }

    #[test]
    fn pretty_rendering_is_parseable_shape() {
        let v = JsonValue::obj()
            .field("xs", JsonValue::Arr(vec![1u64.into(), 2u64.into()]))
            .field("empty", JsonValue::obj());
        let p = v.render_pretty();
        assert!(p.contains("\"xs\": [\n"));
        assert!(p.contains("\"empty\": {}"));
        assert!(p.ends_with("}\n"));
    }
}
