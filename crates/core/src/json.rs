//! A hand-rolled JSON value + serializer, so the default (fully offline)
//! build can emit structured output with zero dependencies.
//!
//! Objects are ordered vectors, not maps: serialization order is exactly
//! insertion order, which is what makes `--sweep-grid` output byte-stable
//! across runs and evaluation strategies.

use std::fmt::Write as _;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// Serialized via [`fmt_f64`]; integral values print without a
    /// fractional part.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    /// Ordered key/value pairs (insertion order is serialization order).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Append a field (builder-style; on non-objects this is a no-op).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> JsonValue {
        if let JsonValue::Obj(fields) = &mut self {
            fields.push((key.to_string(), value.into()));
        }
        self
    }

    /// Serialize compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&fmt_f64(*n)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Format a float the way JSON expects: integral values without a
/// fractional part, non-finite values as `null` (JSON has no NaN/Inf).
pub fn fmt_f64(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::Num(n)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<u32> for JsonValue {
    fn from(n: u32) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::Num(n as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures_compactly() {
        let v = JsonValue::obj()
            .field("name", "heat")
            .field("ok", true)
            .field("cycles", 1234u64)
            .field("frac", 0.5)
            .field("tags", JsonValue::Arr(vec!["a".into(), "b".into()]))
            .field("none", JsonValue::Null);
        assert_eq!(
            v.render(),
            r#"{"name":"heat","ok":true,"cycles":1234,"frac":0.5,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn numbers_print_integral_when_integral() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(-4.0), "-4");
        assert_eq!(fmt_f64(3.25), "3.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn field_order_is_insertion_order() {
        let a = JsonValue::obj().field("z", 1u64).field("a", 2u64);
        assert_eq!(a.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn pretty_rendering_is_parseable_shape() {
        let v = JsonValue::obj()
            .field("xs", JsonValue::Arr(vec![1u64.into(), 2u64.into()]))
            .field("empty", JsonValue::obj());
        let p = v.render_pretty();
        assert!(p.contains("\"xs\": [\n"));
        assert!(p.contains("\"empty\": {}"));
        assert!(p.ends_with("}\n"));
    }
}
