//! Presentation helpers for the human-text output modes — the optional
//! sections `fsdetect` prints after the main report (`--sim`, `--advise`,
//! `--baseline`, `--contention`, `--sweep`, `--eliminate`, the sweep-grid
//! table) and the `--profile` summary.
//!
//! Kept out of the binaries so the CLIs stay thin veneers over
//! [`crate::service`]: each function takes the parsed kernel (carried on
//! [`crate::service::KernelResult`]) and returns the section as a string,
//! byte-identical to what the pre-service `fsdetect` printed.

use crate::sweep::SweepGridResult;
use fs_obs as obs;
use loop_ir::Kernel;
use machine::MachineConfig;
use std::fmt::Write as _;

/// The `-- sweep grid --` table with best point and memo tallies.
pub fn grid_section(r: &SweepGridResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- sweep grid ({} points) --", r.outcomes.len());
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>12} {:>16} {:>8}",
        "threads", "chunk", "fs cases", "total cycles", "fs %"
    );
    for o in &r.outcomes {
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>12} {:>16.0} {:>7.1}%",
            o.threads,
            o.chunk,
            o.cost.fs.fs_cases,
            o.cost.total_cycles,
            o.cost.fs_fraction() * 100.0
        );
    }
    if let Some(best) = r.best() {
        let _ = writeln!(
            out,
            "best point: {} threads, chunk {} ({:.0} cycles)",
            best.threads, best.chunk, best.cost.total_cycles
        );
    }
    let _ = writeln!(out, "memo: {} hits, {} misses", r.memo_hits, r.memo_misses);
    out
}

/// The `--sim` section: replay through the MESI coherence simulator.
/// `sim_workers >= 2` requests the set-sharded parallel replay with that
/// worker budget (identical stats; prefetch and non-decomposable
/// geometries fall back to the serial engine — see docs/SIM.md).
pub fn sim_section(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    sim_workers: usize,
) -> String {
    let mut opts = cache_sim::SimOptions::new(threads);
    if sim_workers >= 2 {
        opts = opts
            .with_path(cache_sim::SimPath::Sharded)
            .with_replay_workers(sim_workers);
    }
    let stats = cache_sim::simulate_kernel(kernel, machine, opts);
    format!("-- MESI simulator (measured) --\n{stats}")
}

/// The `--advise` section: the simulator-backed chunk-size recommendation.
pub fn advice_section(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    predict: Option<u64>,
) -> String {
    let advice = crate::advisor::recommend_chunk(kernel, machine, threads, 1024, predict);
    let mut out = String::new();
    let _ = writeln!(out, "-- chunk-size advice --");
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>16}",
        "chunk", "fs cases", "total cycles"
    );
    for p in &advice.points {
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>16.0}",
            p.chunk, p.fs_cases, p.total_cycles
        );
    }
    let _ = writeln!(
        out,
        "recommended chunk size: {} ({:.2}x faster than chunk 1)",
        advice.best_chunk, advice.speedup_vs_chunk1
    );
    out
}

/// The `--baseline` section: LaRowe-style address-set sharing census.
pub fn baseline_section(kernel: &Kernel, machine: &MachineConfig, threads: u32) -> String {
    let a = cache_sim::SharingAnalysis::of_kernel(kernel, threads, machine.line_size());
    let (p, rs, ts, fs) = a.census();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- address-set baseline (LaRowe-style, §V related work) --"
    );
    let _ = writeln!(
        out,
        "lines: {p} private, {rs} read-shared, {ts} true-shared, {fs} false-shared"
    );
    let bases = kernel.array_bases(machine.line_size());
    for (line, rec) in a.false_shared_lines().into_iter().take(5) {
        let addr = line * machine.line_size();
        let name = kernel
            .arrays
            .iter()
            .enumerate()
            .find(|(i, d)| addr >= bases[*i] && addr < bases[*i] + d.size_bytes().max(1))
            .map(|(_, d)| d.name.as_str())
            .unwrap_or("?");
        let _ = writeln!(
            out,
            "  line {line:>8} in '{name}': {} sharers, {} accesses",
            rec.sharer_count(),
            rec.accesses
        );
    }
    out
}

/// The `--contention` section: shared-cache and memory-bus interference.
pub fn contention_section(kernel: &Kernel, machine: &MachineConfig, threads: u32) -> String {
    let sc = cost_model::shared_cache_interference(kernel, machine, threads);
    let bus = cost_model::bus_interference(kernel, machine, threads);
    let mut out = String::new();
    let _ = writeln!(out, "-- contention extensions (paper §VI future work) --");
    let _ = writeln!(
        out,
        "shared cache: cluster footprint {:.0} KB of {} KB -> overflow {:.0}%, +{:.2} cy/iter",
        sc.cluster_footprint / 1024.0,
        sc.shared_capacity / 1024,
        sc.overflow_fraction * 100.0,
        sc.extra_cycles_per_iter.max(0.0)
    );
    let _ = writeln!(
        out,
        "memory bus:   demand {:.1} B/cy of {:.1} B/cy -> slowdown {:.2}x",
        bus.demanded_bytes_per_cycle, bus.available_bytes_per_cycle, bus.slowdown
    );
    out
}

/// The `--sweep` section: the hardware sensitivity battery.
pub fn sweeps_section(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    predict: Option<u64>,
) -> String {
    let mut aopts = cost_model::AnalysisOptions::new(threads);
    aopts.predict_chunk_runs = predict;
    let mut out = String::new();
    let _ = writeln!(out, "-- hardware sensitivity sweeps --");
    for sweep in cost_model::standard_battery(kernel, machine, &aopts) {
        let _ = writeln!(out, "{}:", sweep.parameter);
        for p in &sweep.points {
            let _ = writeln!(
                out,
                "  {:>10} -> FS {:>5.1}% of {:>12.0} cycles ({} cases)",
                p.value,
                p.fs_fraction * 100.0,
                p.total_cycles,
                p.fs_cases
            );
        }
    }
    out
}

/// The `--eliminate` section: mitigation search + transformed kernel.
pub fn eliminate_section(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    predict: Option<u64>,
) -> String {
    let mut opts = cost_model::AnalysisOptions::new(threads);
    opts.predict_chunk_runs = predict;
    let mit = crate::transform::eliminate_false_sharing(kernel, machine, threads, &opts);
    let mut out = String::new();
    let _ = writeln!(out, "-- mitigation search --");
    if mit.candidates.is_empty() {
        let _ = writeln!(out, "no false sharing to eliminate");
    } else {
        for c in &mit.candidates {
            let _ = writeln!(
                out,
                "  {:<48} {:>10.0} cycles ({:.2}x)",
                c.description, c.cost.total_cycles, c.speedup
            );
        }
        let best = mit.best().unwrap();
        let _ = writeln!(out, "best: {}", best.description);
        let _ = writeln!(out, "-- transformed kernel --");
        let _ = write!(out, "{}", loop_ir::pretty::kernel_to_dsl(&best.kernel));
    }
    out
}

/// The `--profile` summary (spans, counters, gauges, sweep throughput).
/// Returned as text; the CLIs print it to stderr so stdout stays
/// machine-readable.
pub fn profile_text(snap: &obs::Snapshot, grid_result: Option<&SweepGridResult>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- profile --");
    let _ = writeln!(
        out,
        "wall {:.3} ms, span coverage {:.1}%",
        snap.wall_ns() as f64 / 1e6,
        crate::service::span_coverage(snap) * 100.0
    );
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>12} {:>12}",
        "span", "count", "total ms", "max ms"
    );
    for a in snap.span_aggregate() {
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>12.3} {:>12.3}",
            a.name,
            a.count,
            a.total_ns as f64 / 1e6,
            a.max_ns as f64 / 1e6
        );
    }
    let busy = snap.track_busy_ns();
    if busy.len() > 1 {
        let _ = writeln!(out, "tracks:");
        for (t, ns) in busy {
            let _ = writeln!(
                out,
                "  {:<16} busy {:>10.3} ms",
                snap.track_name(t).unwrap_or("?"),
                ns as f64 / 1e6
            );
        }
    }
    let _ = writeln!(out, "counters:");
    for &(name, v) in &snap.counters {
        if v > 0 {
            let _ = writeln!(out, "  {name:<26} {v}");
        }
    }
    for &(name, v) in &snap.gauges {
        if v > 0 {
            let _ = writeln!(out, "  {name:<26} {v}");
        }
    }
    if snap.hists.iter().any(|h| h.count > 0) {
        let _ = writeln!(
            out,
            "{:<18} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "latency", "count", "mean ms", "p50 ms", "p95 ms", "p99 ms"
        );
        for h in snap.hists.iter().filter(|h| h.count > 0) {
            let _ = writeln!(
                out,
                "{:<18} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                h.name,
                h.count,
                h.mean_ns() as f64 / 1e6,
                h.quantile(0.50) as f64 / 1e6,
                h.quantile(0.95) as f64 / 1e6,
                h.quantile(0.99) as f64 / 1e6
            );
        }
    }
    if let Some(r) = grid_result {
        let _ = writeln!(
            out,
            "sweep: {:.1} points/sec over {} points",
            r.stats.points_per_sec(),
            r.outcomes.len()
        );
        let _ = writeln!(out, "slowest points:");
        for (i, ns) in r.stats.slowest(5) {
            let o = &r.outcomes[i];
            let _ = writeln!(
                out,
                "  {:<16} threads {:>3} chunk {:>6}  {:>10.3} ms",
                o.kernel,
                o.threads,
                o.chunk,
                ns as f64 / 1e6
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_render_their_headers() {
        let kernel = crate::corpus::corpus_kernel("histogram").unwrap();
        let m = machine::presets::paper48();
        assert!(sim_section(&kernel, &m, 4, 0).starts_with("-- MESI simulator (measured) --"));
        // The sharded request renders the same stats block (prefetch is on
        // by default here, so the dispatcher falls back to the serial
        // dense engine with identical stats).
        assert_eq!(
            sim_section(&kernel, &m, 4, 8),
            sim_section(&kernel, &m, 4, 0)
        );
        assert!(advice_section(&kernel, &m, 4, None).contains("recommended chunk size:"));
        assert!(baseline_section(&kernel, &m, 4).contains("false-shared"));
        assert!(contention_section(&kernel, &m, 4).contains("memory bus:"));
        assert!(sweeps_section(&kernel, &m, 4, Some(8)).starts_with("-- hardware sensitivity"));
        assert!(eliminate_section(&kernel, &m, 4, None).starts_with("-- mitigation search --"));
    }
}
