//! # fs-core — compile-time false-sharing detection for parallel loops
//!
//! High-level API over the reproduction of *"Compile-Time Detection of
//! False Sharing via Loop Cost Modeling"* (Tolubaeva, Yan, Chapman; IPDPS
//! workshops 2012).
//!
//! ## Quick start
//!
//! ```
//! use fs_core::{try_analyze, AnalysisOptions};
//!
//! // Describe the loop in the DSL (or build it with loop_ir::KernelBuilder).
//! let kernel = fs_core::parse_kernel(
//!     "kernel histogram {
//!        array counts[8]: f64;
//!        array data[8][4096]: f64;
//!        parallel for t in 0..8 schedule(static, 1) {
//!          for i in 0..4096 {
//!            counts[t] += data[t][i];
//!          }
//!        }
//!      }",
//! ).unwrap();
//!
//! let machine = fs_core::machines::paper48();
//! let report = try_analyze(&kernel, &machine, &AnalysisOptions::new(8)).unwrap();
//! assert!(report.cost.fs.fs_cases > 0, "adjacent counters false-share");
//! println!("{}", report.render());
//! ```
//!
//! The report quantifies the FS cases the loop will generate, the share of
//! execution time they cost (Eq. 1 of the paper), and which arrays are the
//! victims. [`recommend_chunk`] searches schedules for the smallest chunk
//! size that suppresses the false sharing.

pub mod advisor;
pub mod corpus;
pub mod error;
pub mod extras;
pub mod json;
pub mod lint;
pub mod report;
pub mod service;
pub mod simharness;
pub mod sweep;
pub mod transform;

pub use advisor::{recommend_chunk, ChunkAdvice, ChunkPoint};
pub use corpus::{corpus_entry, corpus_kernel, corpus_kernel_with_consts, CorpusEntry, CORPUS};
pub use error::AnalysisError;
pub use json::JsonValue;
pub use lint::{
    explain_rule, rule_info, sarif_document, LintReport, RuleInfo, VerifiedFix, LINT_RULES,
};
pub use report::{AnalysisReport, HotLine, VictimArray};
pub use service::{
    KernelInput, KernelResult, Service, ServiceCache, ServiceOptions, ServiceRequest,
    ServiceResponse, FSD_VERSION,
};
pub use simharness::{run_indexed, sim_workers, split_workers};
pub use sweep::{SweepEngine, SweepGridResult, SweepOutcome, SweepRunStats};
pub use transform::{eliminate_false_sharing, pad_array, Candidate, MitigationReport};

use loop_ir::Kernel;
use machine::MachineConfig;

pub use cost_model::sweep::{
    kernel_at_chunk, point_key, EarlyExit, EvalMode, MemoCache, SweepGrid, SweepPointSpec,
};
pub use cost_model::FsPath;
/// Re-exported building blocks for users who need the full substrate.
///
/// `AnalysisOptions` is the *one* options type shared by the low-level
/// [`analyze_loop`] and the high-level [`try_analyze`]: build it with
/// `AnalysisOptions::new(threads).predict(runs).build()`.
pub use cost_model::{
    analyze_loop, bus_interference, modeled_fs_overhead, predict_fs, run_fs_model,
    shared_cache_interference, AnalysisOptions, BusInterference, FsModelConfig, FsModelResult,
    LoopCost, SharedCacheInterference,
};
pub use cost_model::{lint_kernel, Diagnostic, LintResult, LintVerdict, Severity, SiteClass};
/// The observability layer (spans, counters, Chrome-trace export) — see
/// `docs/OBSERVABILITY.md`. Disabled by default; `fsdetect` enables it for
/// `--profile`/`--trace-out` and the benches enable it for counter-sourced
/// reporting.
pub use fs_obs as obs;
pub use loop_ir::dsl::parse_kernel_with_consts;
pub use loop_ir::{dsl::parse_kernel, kernels, pretty::kernel_to_dsl, KernelBuilder};

/// Machine presets (see [`machine::presets`]).
pub mod machines {
    pub use machine::presets::{generic_x86, paper48, tiny_test};
    pub use machine::MachineConfig;
}

/// Simulation entry points (the "measured" side of experiments).
pub mod simulation {
    pub use cache_sim::{
        simulate_kernel, simulate_kernel_prepared, simulated_time_cycles,
        simulated_time_cycles_prepared, Interleave, LineClass, SharingAnalysis, SimOptions,
        SimPath, SimPrepared, SimStats,
    };
}

/// Analyze a kernel: run the full Eq. 1 cost model (including the FS model)
/// and package the result with victim attribution and human-readable
/// rendering. Returns a structured [`AnalysisError`] instead of panicking
/// on invalid kernels, schedules, or machine descriptions.
///
/// Delegates to [`service::analyze`] — the service layer owns the guards
/// and execution; this name is kept for API stability.
pub fn try_analyze(
    kernel: &Kernel,
    machine: &MachineConfig,
    opts: &AnalysisOptions,
) -> Result<AnalysisReport, AnalysisError> {
    service::analyze(kernel, machine, opts)
}

/// Lint a kernel symbolically: run the closed-form false-sharing analyzer
/// (`cost_model::lint`) under the same machine/team guards as
/// [`try_analyze`], without simulating a single iteration. Suggested
/// padding fixes are verified by applying [`pad_array`] and re-linting.
///
/// The verdict carries a differential contract against the simulator (see
/// `tests/lint_differential.rs`): `FalseSharing` implies the reference FS
/// model counts at least one case at this (threads, chunk) configuration,
/// and `Clean` implies it counts none.
///
/// Delegates to [`service::lint`].
pub fn try_lint(
    kernel: &Kernel,
    machine: &MachineConfig,
    num_threads: u32,
) -> Result<lint::LintReport, AnalysisError> {
    service::lint(kernel, machine, num_threads)
}

/// Parse a kernel from DSL source and lint it in one step.
pub fn try_lint_dsl(
    source: &str,
    machine: &MachineConfig,
    num_threads: u32,
) -> Result<lint::LintReport, AnalysisError> {
    service::lint_dsl(source, machine, num_threads)
}

/// Parse a kernel from DSL source and analyze it in one step.
pub fn try_analyze_dsl(
    source: &str,
    machine: &MachineConfig,
    opts: &AnalysisOptions,
) -> Result<AnalysisReport, AnalysisError> {
    service::analyze_dsl(source, machine, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_flags_false_sharing_kernels() {
        let m = machines::paper48();
        let k = kernels::transpose(32, 32, 1);
        let r = try_analyze(&k, &m, &AnalysisOptions::new(8)).unwrap();
        assert!(r.cost.fs.fs_cases > 0);
        assert!(r.fs_percent() > 0.0);
        let padded = kernels::dotprod_partials(8, 64, true);
        let r2 = try_analyze(&padded, &m, &AnalysisOptions::new(8)).unwrap();
        assert_eq!(r2.cost.fs.fs_cases, 0);
        assert_eq!(r2.fs_percent(), 0.0);
    }

    #[test]
    fn prediction_option_wires_through() {
        let m = machines::paper48();
        let k = kernels::dft(64, 128, 1);
        let full = try_analyze(&k, &m, &AnalysisOptions::new(8)).unwrap();
        let pred = try_analyze(&k, &m, &AnalysisOptions::new(8).predict(48).build()).unwrap();
        // Predicted evaluation touches fewer iterations.
        assert!(pred.cost.fs.iterations < full.cost.fs.iterations);
        // But the FS cycle estimates stay in the same ballpark.
        let ratio = pred.cost.fs_cycles / full.cost.fs_cycles.max(1.0);
        assert!(ratio > 0.5 && ratio < 2.0, "ratio = {ratio}");
    }

    #[test]
    fn try_analyze_rejects_invalid_kernels() {
        let m = machines::paper48();
        let mut k = kernels::stencil1d(66, 1);
        k.nest.parallel.schedule = loop_ir::Schedule::Static { chunk: 0 };
        let err = try_analyze(&k, &m, &AnalysisOptions::new(2)).unwrap_err();
        assert!(matches!(err, AnalysisError::UnsupportedSchedule { .. }));
    }

    #[test]
    fn try_analyze_rejects_structurally_bad_kernels() {
        let m = machines::paper48();
        let mut k = kernels::stencil1d(66, 1);
        k.nest.body.clear();
        let err = try_analyze(&k, &m, &AnalysisOptions::new(2)).unwrap_err();
        assert!(matches!(err, AnalysisError::Validation(_)));
    }

    #[test]
    fn try_analyze_rejects_zero_threads_and_bad_machines() {
        let m = machines::paper48();
        let k = kernels::stencil1d(66, 1);
        let err = try_analyze(&k, &m, &AnalysisOptions::new(0)).unwrap_err();
        assert!(matches!(err, AnalysisError::UnsupportedSchedule { .. }));
        let mut bad = machines::paper48();
        bad.caches.line_size = 0;
        let err = try_analyze(&k, &bad, &AnalysisOptions::new(2)).unwrap_err();
        assert!(matches!(err, AnalysisError::MachineConfig { .. }));
    }

    #[test]
    fn try_analyze_accepts_64_threads_and_rejects_65() {
        let m = machines::paper48();
        let k = kernels::stencil1d(258, 1);
        assert!(try_analyze(&k, &m, &AnalysisOptions::new(64)).is_ok());
        let err = try_analyze(&k, &m, &AnalysisOptions::new(65)).unwrap_err();
        match err {
            AnalysisError::Validation(loop_ir::ValidateError::TeamTooLarge { requested, max }) => {
                assert_eq!((requested, max), (65, cost_model::MAX_MODEL_THREADS));
            }
            other => panic!("expected TeamTooLarge validation error, got {other:?}"),
        }
    }

    #[test]
    fn try_analyze_dsl_reports_parse_errors() {
        let m = machines::paper48();
        let err = try_analyze_dsl("kernel broken {", &m, &AnalysisOptions::new(2)).unwrap_err();
        assert!(matches!(err, AnalysisError::Parse(_)));
        let ok = try_analyze_dsl(
            "kernel ok {
               array a[64]: f64;
               parallel for i in 0..64 schedule(static, 1) { a[i] += 1.0; }
             }",
            &m,
            &AnalysisOptions::new(4),
        );
        assert!(ok.is_ok());
    }
}
