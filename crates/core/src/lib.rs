//! # fs-core — compile-time false-sharing detection for parallel loops
//!
//! High-level API over the reproduction of *"Compile-Time Detection of
//! False Sharing via Loop Cost Modeling"* (Tolubaeva, Yan, Chapman; IPDPS
//! workshops 2012).
//!
//! ## Quick start
//!
//! ```
//! use fs_core::{analyze, AnalysisOptions};
//!
//! // Describe the loop in the DSL (or build it with loop_ir::KernelBuilder).
//! let kernel = fs_core::parse_kernel(
//!     "kernel histogram {
//!        array counts[8]: f64;
//!        array data[8][4096]: f64;
//!        parallel for t in 0..8 schedule(static, 1) {
//!          for i in 0..4096 {
//!            counts[t] += data[t][i];
//!          }
//!        }
//!      }",
//! ).unwrap();
//!
//! let machine = fs_core::machines::paper48();
//! let report = analyze(&kernel, &machine, &AnalysisOptions::new(8));
//! assert!(report.cost.fs.fs_cases > 0, "adjacent counters false-share");
//! println!("{}", report.render());
//! ```
//!
//! The report quantifies the FS cases the loop will generate, the share of
//! execution time they cost (Eq. 1 of the paper), and which arrays are the
//! victims. [`recommend_chunk`] searches schedules for the smallest chunk
//! size that suppresses the false sharing.

pub mod advisor;
pub mod corpus;
pub mod report;
pub mod transform;

pub use advisor::{recommend_chunk, ChunkAdvice, ChunkPoint};
pub use corpus::{corpus_entry, corpus_kernel, corpus_kernel_with_consts, CorpusEntry, CORPUS};
pub use report::{AnalysisReport, VictimArray};
pub use transform::{eliminate_false_sharing, pad_array, Candidate, MitigationReport};

use loop_ir::Kernel;
use machine::MachineConfig;

/// Re-exported building blocks for users who need the full substrate.
pub use cost_model::{
    analyze_loop, bus_interference, modeled_fs_overhead, predict_fs, run_fs_model,
    shared_cache_interference, AnalyzeOptions, BusInterference, FsModelConfig, FsModelResult,
    LoopCost, SharedCacheInterference,
};
pub use loop_ir::dsl::parse_kernel_with_consts;
pub use loop_ir::{dsl::parse_kernel, kernels, pretty::kernel_to_dsl, KernelBuilder};

/// Machine presets (see [`machine::presets`]).
pub mod machines {
    pub use machine::presets::{generic_x86, paper48, tiny_test};
    pub use machine::MachineConfig;
}

/// Simulation entry points (the "measured" side of experiments).
pub mod simulation {
    pub use cache_sim::{
        simulate_kernel, simulated_time_cycles, Interleave, LineClass, SharingAnalysis,
        SimOptions, SimStats,
    };
}

/// Options for [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    pub num_threads: u32,
    /// Evaluate only this many chunk runs and extrapolate with the linear
    /// regression predictor (paper §III-E); `None` runs the full model.
    pub predict_chunk_runs: Option<u64>,
}

impl AnalysisOptions {
    pub fn new(num_threads: u32) -> Self {
        AnalysisOptions {
            num_threads,
            predict_chunk_runs: None,
        }
    }

    pub fn with_prediction(mut self, chunk_runs: u64) -> Self {
        self.predict_chunk_runs = Some(chunk_runs);
        self
    }
}

/// Analyze a kernel: run the full Eq. 1 cost model (including the FS model)
/// and package the result with victim attribution and human-readable
/// rendering.
pub fn analyze(kernel: &Kernel, machine: &MachineConfig, opts: &AnalysisOptions) -> AnalysisReport {
    loop_ir::validate(kernel).expect("kernel failed validation; call loop_ir::validate first");
    let mut a = AnalyzeOptions::new(opts.num_threads);
    a.predict_chunk_runs = opts.predict_chunk_runs;
    let cost = analyze_loop(kernel, machine, &a);
    AnalysisReport::new(kernel, machine, opts.num_threads, cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_flags_false_sharing_kernels() {
        let m = machines::paper48();
        let k = kernels::transpose(32, 32, 1);
        let r = analyze(&k, &m, &AnalysisOptions::new(8));
        assert!(r.cost.fs.fs_cases > 0);
        assert!(r.fs_percent() > 0.0);
        let padded = kernels::dotprod_partials(8, 64, true);
        let r2 = analyze(&padded, &m, &AnalysisOptions::new(8));
        assert_eq!(r2.cost.fs.fs_cases, 0);
        assert_eq!(r2.fs_percent(), 0.0);
    }

    #[test]
    fn prediction_option_wires_through() {
        let m = machines::paper48();
        let k = kernels::dft(64, 128, 1);
        let full = analyze(&k, &m, &AnalysisOptions::new(8));
        let pred = analyze(&k, &m, &AnalysisOptions::new(8).with_prediction(48));
        // Predicted evaluation touches fewer iterations.
        assert!(pred.cost.fs.iterations < full.cost.fs.iterations);
        // But the FS cycle estimates stay in the same ballpark.
        let ratio = pred.cost.fs_cycles / full.cost.fs_cycles.max(1.0);
        assert!(ratio > 0.5 && ratio < 2.0, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "validation")]
    fn analyze_rejects_invalid_kernels() {
        let m = machines::paper48();
        let mut k = kernels::stencil1d(66, 1);
        k.nest.parallel.schedule = loop_ir::Schedule::Static { chunk: 0 };
        analyze(&k, &m, &AnalysisOptions::new(2));
    }
}
