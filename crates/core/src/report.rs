//! Human-readable analysis reports with victim attribution.

use cost_model::LoopCost;
use loop_ir::Kernel;
use machine::MachineConfig;
use std::fmt::Write;

/// An array implicated in false sharing, with its share of the cases.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimArray {
    pub array: String,
    pub fs_cases: u64,
    /// Fraction of all FS cases on this array's lines.
    pub share: f64,
}

/// One of the most-conflicted cache lines, resolved to the array that owns
/// its address (None for lines outside every declared array, e.g. halo
/// padding).
#[derive(Debug, Clone, PartialEq)]
pub struct HotLine {
    /// Cache-line number in the model's address space.
    pub line: u64,
    pub fs_cases: u64,
    /// Name of the owning array, if the line starts inside one.
    pub array: Option<String>,
    /// Byte offset of the line's start from the owning array's base (0 when
    /// unowned).
    pub offset: u64,
}

/// How many of the FS model's `top_lines` the report resolves and renders.
const TOP_HOT_LINES: usize = 8;

/// The packaged result of [`crate::try_analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    pub kernel_name: String,
    pub machine_name: String,
    pub num_threads: u32,
    pub cost: LoopCost,
    pub victims: Vec<VictimArray>,
    /// The most-conflicted cache lines, resolved to their owning arrays.
    pub hot_lines: Vec<HotLine>,
    /// Estimated seconds for the loop on the target machine.
    pub est_seconds: f64,
}

impl AnalysisReport {
    pub(crate) fn new(
        kernel: &Kernel,
        machine: &MachineConfig,
        num_threads: u32,
        cost: LoopCost,
    ) -> Self {
        let victims = attribute_victims(kernel, machine, &cost);
        let hot_lines = resolve_hot_lines(kernel, machine, &cost);
        let est_seconds = cost.seconds(machine);
        AnalysisReport {
            kernel_name: kernel.name.clone(),
            machine_name: machine.name.clone(),
            num_threads,
            cost,
            victims,
            hot_lines,
            est_seconds,
        }
    }

    /// False-sharing share of the loop's total modeled cost, in percent.
    pub fn fs_percent(&self) -> f64 {
        self.cost.fs_fraction() * 100.0
    }

    /// True if the model estimates a meaningful FS impact (>= 1% of time).
    pub fn has_significant_fs(&self) -> bool {
        self.fs_percent() >= 1.0
    }

    /// Render a plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let c = &self.cost;
        let _ = writeln!(out, "== false-sharing analysis: {} ==", self.kernel_name);
        let _ = writeln!(
            out,
            "machine: {} | threads: {} | fs path: {}",
            self.machine_name, self.num_threads, c.fs_path
        );
        let _ = writeln!(
            out,
            "false-sharing cases (model): {}  (events: {}, true-sharing: {})",
            c.fs.fs_cases, c.fs.fs_events, c.fs.true_sharing_cases
        );
        let _ = writeln!(
            out,
            "evaluated {} iterations over {} lockstep steps ({} of {} chunk runs)",
            c.fs.iterations, c.fs.steps, c.fs.evaluated_chunk_runs, c.fs.total_chunk_runs
        );
        let _ = writeln!(out, "cost breakdown (cycles, per-thread critical path):");
        let iters = c.iters_per_thread;
        let _ = writeln!(
            out,
            "  machine   {:>14.0}   ({:.2}/iter)",
            c.machine.cycles_per_iter * iters,
            c.machine.cycles_per_iter
        );
        let _ = writeln!(
            out,
            "  cache     {:>14.0}   ({:.2}/iter)",
            c.cache.cycles_per_iter * iters,
            c.cache.cycles_per_iter
        );
        let _ = writeln!(
            out,
            "  tlb       {:>14.0}   ({:.4}/iter)",
            c.tlb.cycles_per_iter * iters,
            c.tlb.cycles_per_iter
        );
        let _ = writeln!(
            out,
            "  loop ovh  {:>14.0}   ({:.2}/iter)",
            c.overhead.loop_per_iter * iters,
            c.overhead.loop_per_iter
        );
        let _ = writeln!(out, "  parallel  {:>14.0}", c.overhead.parallel_total);
        let _ = writeln!(out, "  false shr {:>14.0}", c.fs_cycles);
        let _ = writeln!(
            out,
            "  TOTAL     {:>14.0}   (~{:.4} s)",
            c.total_cycles, self.est_seconds
        );
        let _ = writeln!(
            out,
            "false-sharing impact: {:.1}% of estimated execution time",
            self.fs_percent()
        );
        if self.victims.is_empty() {
            let _ = writeln!(out, "no false-sharing victims detected");
        } else {
            let _ = writeln!(out, "victim data structures:");
            for v in &self.victims {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>12} cases ({:.1}%)",
                    v.array,
                    v.fs_cases,
                    v.share * 100.0
                );
            }
        }
        if !self.hot_lines.is_empty() {
            let _ = writeln!(out, "hottest cache lines:");
            for h in &self.hot_lines {
                match &h.array {
                    Some(name) => {
                        let _ = writeln!(
                            out,
                            "  line {:<8} {:>12} cases  ({} + {} bytes)",
                            h.line, h.fs_cases, name, h.offset
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  line {:<8} {:>12} cases  (outside declared arrays)",
                            h.line, h.fs_cases
                        );
                    }
                }
            }
        }
        out
    }

    /// The report as a structured JSON document (stable field order).
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let c = &self.cost;
        JsonValue::obj()
            .field("kernel", self.kernel_name.as_str())
            .field("machine", self.machine_name.as_str())
            .field("threads", self.num_threads)
            .field("fs_path", c.fs_path.as_str())
            .field("fs_cases", c.fs.fs_cases)
            .field("fs_events", c.fs.fs_events)
            .field("true_sharing_cases", c.fs.true_sharing_cases)
            .field("evaluated_chunk_runs", c.fs.evaluated_chunk_runs)
            .field("total_chunk_runs", c.fs.total_chunk_runs)
            .field(
                "cost_cycles",
                JsonValue::obj()
                    .field("machine", c.machine.cycles_per_iter * c.iters_per_thread)
                    .field("cache", c.cache.cycles_per_iter * c.iters_per_thread)
                    .field("tlb", c.tlb.cycles_per_iter * c.iters_per_thread)
                    .field(
                        "loop_overhead",
                        c.overhead.loop_per_iter * c.iters_per_thread,
                    )
                    .field("parallel_overhead", c.overhead.parallel_total)
                    .field("false_sharing", c.fs_cycles)
                    .field("total", c.total_cycles),
            )
            .field("fs_percent", self.fs_percent())
            .field("significant_fs", self.has_significant_fs())
            .field("est_seconds", self.est_seconds)
            .field(
                "victims",
                JsonValue::Arr(
                    self.victims
                        .iter()
                        .map(|v| {
                            JsonValue::obj()
                                .field("array", v.array.as_str())
                                .field("fs_cases", v.fs_cases)
                                .field("share", v.share)
                        })
                        .collect(),
                ),
            )
            .field(
                "hot_lines",
                JsonValue::Arr(
                    self.hot_lines
                        .iter()
                        .map(|h| {
                            JsonValue::obj()
                                .field("line", h.line)
                                .field("fs_cases", h.fs_cases)
                                .field(
                                    "array",
                                    h.array
                                        .as_deref()
                                        .map(JsonValue::from)
                                        .unwrap_or(JsonValue::Null),
                                )
                                .field("offset", h.offset)
                        })
                        .collect(),
                ),
            )
    }
}

impl AnalysisReport {
    /// Render the report as a Markdown fragment (for CI summaries / docs).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let c = &self.cost;
        let _ = writeln!(out, "### False-sharing analysis: `{}`", self.kernel_name);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "*{} threads on {}* — **{:.1}%** of the modeled execution time is false sharing.",
            self.num_threads,
            self.machine_name,
            self.fs_percent()
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| term | cycles | per iteration |");
        let _ = writeln!(out, "|---|---:|---:|");
        let iters = c.iters_per_thread;
        for (name, total, per) in [
            (
                "machine",
                c.machine.cycles_per_iter * iters,
                c.machine.cycles_per_iter,
            ),
            (
                "cache",
                c.cache.cycles_per_iter * iters,
                c.cache.cycles_per_iter,
            ),
            ("tlb", c.tlb.cycles_per_iter * iters, c.tlb.cycles_per_iter),
            (
                "loop overhead",
                c.overhead.loop_per_iter * iters,
                c.overhead.loop_per_iter,
            ),
        ] {
            let _ = writeln!(out, "| {name} | {total:.0} | {per:.2} |");
        }
        let _ = writeln!(
            out,
            "| parallel overhead | {:.0} | — |",
            c.overhead.parallel_total
        );
        let _ = writeln!(out, "| **false sharing** | **{:.0}** | — |", c.fs_cycles);
        let _ = writeln!(out, "| **total** | **{:.0}** | — |", c.total_cycles);
        if !self.victims.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "Victims:");
            for v in &self.victims {
                let _ = writeln!(
                    out,
                    "- `{}` — {} cases ({:.1}%)",
                    v.array,
                    v.fs_cases,
                    v.share * 100.0
                );
            }
        }
        out
    }
}

/// Index of the array whose `[base, base + size)` range contains `addr`.
fn owning_array(kernel: &Kernel, bases: &[u64], addr: u64) -> Option<usize> {
    kernel.arrays.iter().enumerate().find_map(|(idx, decl)| {
        let lo = bases[idx];
        let hi = lo + decl.size_bytes().max(1);
        (addr >= lo && addr < hi).then_some(idx)
    })
}

/// Map the FS model's per-line case counts back to the arrays whose address
/// ranges contain those lines.
fn attribute_victims(
    kernel: &Kernel,
    machine: &MachineConfig,
    cost: &LoopCost,
) -> Vec<VictimArray> {
    let line_size = machine.line_size();
    let bases = kernel.array_bases(line_size);
    let total: u64 = cost.fs.per_line_cases.values().sum();
    if total == 0 {
        return Vec::new();
    }
    let mut per_array: Vec<u64> = vec![0; kernel.arrays.len()];
    for (&line, &cases) in &cost.fs.per_line_cases {
        if let Some(idx) = owning_array(kernel, &bases, line * line_size) {
            per_array[idx] += cases;
        }
    }
    let mut victims: Vec<VictimArray> = per_array
        .into_iter()
        .enumerate()
        .filter(|&(_, c)| c > 0)
        .map(|(i, c)| VictimArray {
            array: kernel.arrays[i].name.clone(),
            fs_cases: c,
            share: c as f64 / total as f64,
        })
        .collect();
    victims.sort_by_key(|v| std::cmp::Reverse(v.fs_cases));
    victims
}

/// Resolve the FS model's hottest lines to owning arrays and in-array byte
/// offsets, so the report can say *where inside* the victim the conflicts
/// land (e.g. which struct element of a partials array).
fn resolve_hot_lines(kernel: &Kernel, machine: &MachineConfig, cost: &LoopCost) -> Vec<HotLine> {
    let line_size = machine.line_size();
    let bases = kernel.array_bases(line_size);
    cost.fs
        .top_lines(TOP_HOT_LINES)
        .into_iter()
        .map(|(line, fs_cases)| {
            let addr = line * line_size;
            match owning_array(kernel, &bases, addr) {
                Some(idx) => HotLine {
                    line,
                    fs_cases,
                    array: Some(kernel.arrays[idx].name.clone()),
                    offset: addr - bases[idx],
                },
                None => HotLine {
                    line,
                    fs_cases,
                    array: None,
                    offset: 0,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::{machines, try_analyze, AnalysisOptions};
    use loop_ir::kernels;

    #[test]
    fn victims_point_at_the_written_array() {
        let m = machines::paper48();
        let k = kernels::linear_regression(64, 16, 1);
        let r = try_analyze(&k, &m, &AnalysisOptions::new(8)).expect("analysis succeeds");
        assert!(!r.victims.is_empty());
        assert_eq!(r.victims[0].array, "args");
        assert!(r.victims[0].share > 0.99, "share = {}", r.victims[0].share);
    }

    #[test]
    fn render_mentions_the_key_numbers() {
        let m = machines::paper48();
        let k = kernels::transpose(32, 32, 1);
        let r = try_analyze(&k, &m, &AnalysisOptions::new(4)).expect("analysis succeeds");
        let text = r.render();
        assert!(text.contains("transpose"));
        assert!(text.contains("false-sharing cases"));
        assert!(text.contains("victim data structures"));
        assert!(text.contains("B"), "transpose victim is B:\n{text}");
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn markdown_rendering_has_table_and_victims() {
        let m = machines::paper48();
        let k = kernels::linear_regression(64, 16, 1);
        let r = try_analyze(&k, &m, &AnalysisOptions::new(8)).expect("analysis succeeds");
        let md = r.render_markdown();
        assert!(md.contains("### False-sharing analysis: `linear_regression`"));
        assert!(md.contains("| term | cycles |"));
        assert!(md.contains("**false sharing**"));
        assert!(md.contains("- `args`"));
    }

    #[test]
    fn hot_lines_name_the_victim_array() {
        let m = machines::paper48();
        let k = kernels::dotprod_partials(8, 64, false);
        let r = try_analyze(&k, &m, &AnalysisOptions::new(8)).expect("analysis succeeds");
        assert!(!r.hot_lines.is_empty());
        let top = &r.hot_lines[0];
        assert_eq!(top.array.as_deref(), Some("partial"));
        assert_eq!(top.fs_cases, r.cost.fs.top_lines(1)[0].1);
        // The hottest line sits inside the partials array.
        assert!(top.offset < k.arrays.last().unwrap().size_bytes());
        let text = r.render();
        assert!(text.contains("hottest cache lines"), "{text}");
        assert!(text.contains("partial + "), "{text}");
        let json = r.to_json().render();
        assert!(json.contains("\"hot_lines\""), "{json}");
        assert!(json.contains("\"array\":\"partial\""), "{json}");
    }

    #[test]
    fn significance_threshold() {
        let m = machines::paper48();
        let fs = try_analyze(
            &kernels::dotprod_partials(8, 512, false),
            &m,
            &AnalysisOptions::new(8),
        )
        .expect("analysis succeeds");
        assert!(fs.has_significant_fs(), "{:.2}%", fs.fs_percent());
        let clean = try_analyze(
            &kernels::dotprod_partials(8, 512, true),
            &m,
            &AnalysisOptions::new(8),
        )
        .expect("analysis succeeds");
        assert!(!clean.has_significant_fs());
    }
}
