//! False-sharing *elimination*: cost-model-driven IR transformations.
//!
//! The paper's conclusion defers "FS elimination using the cost model" to
//! future work and cites two families of fixes: data-layout transformations
//! (padding/alignment, Jeremiassen & Eggers) and scheduling-parameter
//! selection (chunk size/stride, Chow & Sarkar). This module implements
//! both and lets the cost model pick the cheaper one:
//!
//! * [`pad_array`] — pad a victim array's elements to a full cache line
//!   (struct elements grow; scalar elements become single-field line-sized
//!   structs, with every reference rewritten to the field);
//! * [`eliminate_false_sharing`] — generate candidate kernels (per-victim
//!   padding, advisor-chosen chunk size), cost each with Eq. 1, and return
//!   them ranked.

use crate::advisor::recommend_chunk;
use cost_model::{analyze_loop, AnalysisOptions, LoopCost};
use loop_ir::{ArrayId, ElemLayout, FieldDef, FieldId, Kernel, Schedule};
use machine::MachineConfig;

/// A candidate transformed kernel with its modeled cost.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Human-readable description of the transformation.
    pub description: String,
    pub kernel: Kernel,
    pub cost: LoopCost,
    /// Modeled speedup over the untransformed kernel.
    pub speedup: f64,
}

/// Outcome of [`eliminate_false_sharing`].
#[derive(Debug, Clone)]
pub struct MitigationReport {
    /// Cost of the kernel as given.
    pub baseline: LoopCost,
    /// Candidates sorted best (cheapest) first. May be empty when the
    /// kernel has no detectable false sharing.
    pub candidates: Vec<Candidate>,
}

impl MitigationReport {
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }

    /// True if some transformation is modeled to help by at least 2%.
    pub fn worthwhile(&self) -> bool {
        self.best().map(|c| c.speedup > 1.02).unwrap_or(false)
    }
}

/// Pad `array`'s elements so consecutive elements never share a cache line.
///
/// * Struct elements: `size` is rounded up to a multiple of `line_size`
///   (field offsets unchanged — layout-compatible with the original code).
/// * Scalar elements: converted to a line-sized single-field struct and all
///   references rewritten to access the field.
///
/// Returns the transformed kernel and the new element size, or `None` when
/// the elements already fill whole lines.
pub fn pad_array(kernel: &Kernel, array: ArrayId, line_size: u64) -> Option<(Kernel, usize)> {
    let line = line_size as usize;
    let decl = kernel.array(array);
    let old = decl.elem.size_bytes();
    if old.is_multiple_of(line) {
        return None;
    }
    let new_size = old.div_ceil(line) * line;
    let mut out = kernel.clone();
    match &decl.elem {
        ElemLayout::Struct { fields, .. } => {
            out.arrays[array.index()].elem = ElemLayout::Struct {
                size: new_size,
                fields: fields.clone(),
            };
        }
        ElemLayout::Scalar(t) => {
            out.arrays[array.index()].elem = ElemLayout::Struct {
                size: new_size,
                fields: vec![FieldDef {
                    name: "v".to_string(),
                    offset: 0,
                    ty: *t,
                }],
            };
            out.map_refs(|r| {
                if r.array == array {
                    r.field = Some(FieldId(0));
                }
            });
        }
    }
    out.name = format!("{}_padded_{}", kernel.name, decl.name);
    Some((out, new_size))
}

/// Generate and rank FS mitigations for `kernel` (see module docs).
pub fn eliminate_false_sharing(
    kernel: &Kernel,
    machine: &MachineConfig,
    num_threads: u32,
    opts: &AnalysisOptions,
) -> MitigationReport {
    let mut aopts = opts.clone();
    aopts.num_threads = num_threads;
    let baseline = analyze_loop(kernel, machine, &aopts);

    let mut candidates: Vec<Candidate> = Vec::new();
    if baseline.fs.fs_cases > 0 {
        // Candidate family 1: pad each victim array.
        let line = machine.line_size();
        let bases = kernel.array_bases(line);
        let mut victim_ids: Vec<ArrayId> = Vec::new();
        for &l in baseline.fs.per_line_cases.keys() {
            let addr = l * line;
            for (idx, decl) in kernel.arrays.iter().enumerate() {
                if addr >= bases[idx] && addr < bases[idx] + decl.size_bytes().max(1) {
                    let id = ArrayId(idx as u32);
                    if !victim_ids.contains(&id) {
                        victim_ids.push(id);
                    }
                    break;
                }
            }
        }
        for id in victim_ids {
            if let Some((padded, new_size)) = pad_array(kernel, id, line) {
                let cost = analyze_loop(&padded, machine, &aopts);
                let speedup = baseline.total_cycles / cost.total_cycles.max(1e-9);
                candidates.push(Candidate {
                    description: format!(
                        "pad elements of '{}' from {} to {new_size} bytes",
                        kernel.array(id).name,
                        kernel.array(id).elem.size_bytes(),
                    ),
                    kernel: padded,
                    cost,
                    speedup,
                });
            }
        }

        // Candidate family 2: a better static chunk size.
        let advice = recommend_chunk(kernel, machine, num_threads, 1024, opts.predict_chunk_runs);
        if advice.best_chunk != kernel.nest.parallel.schedule.chunk() {
            let mut rescheduled = kernel.clone();
            rescheduled.nest.parallel.schedule = Schedule::Static {
                chunk: advice.best_chunk,
            };
            rescheduled.name = format!("{}_chunk{}", kernel.name, advice.best_chunk);
            let cost = analyze_loop(&rescheduled, machine, &aopts);
            let speedup = baseline.total_cycles / cost.total_cycles.max(1e-9);
            candidates.push(Candidate {
                description: format!("schedule(static, {})", advice.best_chunk),
                kernel: rescheduled,
                cost,
                speedup,
            });
        }
    }
    candidates.sort_by(|a, b| a.cost.total_cycles.total_cmp(&b.cost.total_cycles));
    MitigationReport {
        baseline,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines;
    use loop_ir::kernels;
    use loop_ir::validate::validate_bounds;

    #[test]
    fn padding_struct_arrays_rounds_size_up() {
        let k = kernels::linear_regression(32, 8, 1);
        let (args_id, _) = k.array_named("args").unwrap();
        let (padded, new_size) = pad_array(&k, args_id, 64).unwrap();
        assert_eq!(new_size, 64);
        assert_eq!(padded.array(args_id).elem.size_bytes(), 64);
        // Field offsets survive.
        let (_, f) = padded.array(args_id).elem.field_named("sxy").unwrap();
        assert_eq!(f.offset, 32);
        validate_bounds(&padded).unwrap();
    }

    #[test]
    fn padding_scalar_arrays_rewrites_refs() {
        let k = kernels::matvec(16, 8, 1);
        let (y_id, _) = k.array_named("y").unwrap();
        let (padded, _) = pad_array(&k, y_id, 64).unwrap();
        validate_bounds(&padded).unwrap();
        // Every reference to y now carries the field.
        for stmt in &padded.nest.body {
            for r in stmt.references() {
                if r.array == y_id {
                    assert!(r.field.is_some());
                }
            }
        }
        // And the padded kernel has no false sharing on y anymore.
        let m = machines::paper48();
        let r = cost_model::run_fs_model(&padded, &cost_model::FsModelConfig::for_machine(&m, 8));
        assert_eq!(r.fs_cases, 0, "matvec's only victim was y");
    }

    #[test]
    fn already_padded_arrays_return_none() {
        let k = kernels::linear_regression_padded(16, 8, 1);
        let (args_id, _) = k.array_named("args").unwrap();
        assert!(pad_array(&k, args_id, 64).is_none());
    }

    #[test]
    fn elimination_ranks_padding_for_linreg() {
        let m = machines::paper48();
        let k = kernels::linear_regression(96, 32, 1);
        let report = eliminate_false_sharing(&k, &m, 8, &AnalysisOptions::new(8));
        assert!(report.worthwhile());
        let best = report.best().unwrap();
        assert!(
            best.cost.fs_cycles < report.baseline.fs_cycles / 4.0,
            "best '{}' must cut FS: {} -> {}",
            best.description,
            report.baseline.fs_cycles,
            best.cost.fs_cycles
        );
        // Padding the 40-byte accumulators should be among the candidates.
        assert!(report
            .candidates
            .iter()
            .any(|c| c.description.contains("pad elements of 'args'")));
    }

    #[test]
    fn clean_kernels_produce_no_candidates() {
        let m = machines::paper48();
        let k = kernels::dotprod_partials(8, 128, true);
        let report = eliminate_false_sharing(&k, &m, 8, &AnalysisOptions::new(8));
        assert!(report.candidates.is_empty());
        assert!(!report.worthwhile());
    }

    #[test]
    fn transpose_gets_a_chunk_recommendation() {
        // Padding B would change the transpose's output layout contract and
        // anyway B's *rows* are the victims; the chunk candidate must win.
        let m = machines::paper48();
        let k = kernels::transpose(128, 128, 1);
        let report = eliminate_false_sharing(&k, &m, 8, &AnalysisOptions::new(8));
        assert!(report.worthwhile());
        let chunk_cand = report
            .candidates
            .iter()
            .find(|c| c.description.starts_with("schedule"))
            .expect("chunk candidate exists");
        assert!(chunk_cand.speedup > 1.0);
    }
}
