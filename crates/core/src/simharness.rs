//! Parallel harness for independent measured-side experiment points.
//!
//! Every table and figure of the evaluation is a grid of *independent*
//! simulator replays (kernel × threads × chunk × interleave). Each point is
//! a pure function of its index, so [`run_indexed`] evaluates them across
//! the [`fs_runtime::pool::ThreadPool`] workers with the same determinism
//! contract as [`crate::sweep::SweepEngine`]: workers claim indices from an
//! atomic counter and write disjoint result slots, so the output vector is
//! in canonical index order and byte-identical to a serial run regardless
//! of worker count or scheduling.

use fs_runtime::pool::ThreadPool;
use fs_runtime::shared::SharedSlice;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluate `eval(0..n)` and return the results in index order, using up to
/// `workers` pool threads. `workers <= 1` (or a trivial grid) runs inline
/// with no pool. Each point is wrapped in a `sim.point` span and counted in
/// `sim.points_evaluated`; the `sim.workers` gauge records the worker count
/// actually used.
pub fn run_indexed<T, F>(n: usize, workers: usize, eval: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let eval_point = |i: usize| {
        let _span = fs_obs::span("sim.point");
        fs_obs::counters::SIM_POINTS.inc();
        eval(i)
    };
    if workers <= 1 || n <= 1 {
        fs_obs::gauges::SIM_WORKERS.set(1);
        return (0..n).map(eval_point).collect();
    }
    let workers = workers.min(n);
    fs_obs::gauges::SIM_WORKERS.set(workers as u64);
    let pool = ThreadPool::new(workers);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let shared = SharedSlice::new(&mut slots);
        let next = AtomicUsize::new(0);
        pool.run_scoped(|_worker| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let result = eval_point(i);
            // SAFETY: the atomic counter hands index i to exactly one
            // worker, and the pool joins before `slots` is read.
            unsafe { *shared.get_mut(i) = Some(result) };
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index evaluated"))
        .collect()
}

/// Split one worker budget between the two levels of measured-side
/// parallelism — point-level fan-out ([`run_indexed`]) and per-point
/// sharded replay (`SimOptions::replay_workers`) — so they compose without
/// oversubscribing [`sim_workers`]: the grid gets `min(points, budget)`
/// workers, and whatever the fan-out cannot use goes to each point's
/// replay. The product `point_workers * replay_workers` never exceeds
/// `max(budget, 1)`.
///
/// Callers must pass the returned replay share down explicitly (through
/// `SimOptions`) rather than re-reading `FS_SIM_WORKERS` per point — the
/// env var describes the *total* budget, not each level's.
pub fn split_workers(points: usize, budget: usize) -> (usize, usize) {
    let budget = budget.max(1);
    let point_workers = budget.min(points.max(1));
    let replay_workers = (budget / point_workers).max(1);
    (point_workers, replay_workers)
}

/// Worker count for the measured-side harness: the `FS_SIM_WORKERS`
/// environment variable when set (0 or unparsable → serial), otherwise the
/// machine's available parallelism.
pub fn sim_workers() -> usize {
    match std::env::var("FS_SIM_WORKERS") {
        Ok(v) => v.trim().parse().unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_are_in_order() {
        let out = run_indexed(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_pooled_agree() {
        let serial = run_indexed(9, 1, |i| (i, i as u64 * 3));
        let pooled = run_indexed(9, 3, |i| (i, i as u64 * 3));
        assert_eq!(serial, pooled);
    }

    #[test]
    fn empty_and_single_grids() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn split_workers_never_oversubscribes() {
        for points in 0..20 {
            for budget in 0..20 {
                let (pw, rw) = split_workers(points, budget);
                assert!(pw >= 1 && rw >= 1);
                assert!(
                    pw * rw <= budget.max(1),
                    "points={points} budget={budget} -> {pw}x{rw}"
                );
            }
        }
        // Wide grids take the whole budget at the point level...
        assert_eq!(split_workers(91, 8), (8, 1));
        // ...narrow grids hand the slack to each point's sharded replay.
        assert_eq!(split_workers(2, 8), (2, 4));
        assert_eq!(split_workers(1, 8), (1, 8));
        assert_eq!(split_workers(3, 8), (3, 2));
    }

    #[test]
    fn workers_env_override_parses() {
        // Not set in the test environment: fall back to available
        // parallelism (>= 1). The env-var branch is covered by parsing
        // logic, not by mutating process env (tests run concurrently).
        assert!(sim_workers() >= 1);
    }
}
