//! The analysis *service* layer: one request/response API shared by the
//! `fsdetect` and `fslint` CLIs and the `fsd` daemon.
//!
//! Everything the CLIs used to do inline — input resolution, machine
//! lookup, parsing, per-kernel analysis and lint, sweep-grid execution,
//! envelope assembly — lives here behind [`Service::handle`], so the
//! binaries are thin argument-parsing veneers and the daemon serves the
//! *same* code path over a socket. A [`ServiceResponse`] renders to the
//! versioned JSON envelope (`"fsd_version": 1`) regardless of which front
//! end asked, which is what makes the daemon's answers byte-identical to
//! in-process calls (see `tests/daemon.rs`).
//!
//! Cost-model results are memoized in a [`ServiceCache`]: a
//! [`fs_runtime::Sharded`] set of [`MemoCache`] shards routed by content
//! key, shared by every sweep worker and — in the daemon — every client
//! connection, across requests. Single-kernel analysis goes through the
//! same cache as grid points, so a warm daemon answers repeat requests
//! from memory (`svc.cache_hits` counts them).

use crate::error::{check_machine, AnalysisError};
use crate::json::JsonValue;
use crate::lint::LintReport;
use crate::report::AnalysisReport;
use crate::sweep::{SweepEngine, SweepGridResult};
use cost_model::sweep::{
    compute_point, point_key, prepared_key, EarlyExit, EvalMode, MemoCache, MemoStats, SweepGrid,
};
use cost_model::{AnalysisOptions, FsPath, LoopCost, PreparedKernel};
use fs_obs as obs;
use fs_runtime::Sharded;
use loop_ir::Kernel;
use machine::MachineConfig;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Core entry points (the bodies behind crate::try_analyze / try_lint)
// ---------------------------------------------------------------------------

/// Machine/team guards shared by every entry point.
fn check_team(machine: &MachineConfig, threads: u32) -> Result<(), AnalysisError> {
    check_machine(machine)?;
    if threads == 0 {
        return Err(AnalysisError::UnsupportedSchedule {
            reason: "team size (num_threads) must be >= 1".to_string(),
        });
    }
    if threads > cost_model::MAX_MODEL_THREADS {
        return Err(AnalysisError::Validation(
            loop_ir::ValidateError::TeamTooLarge {
                requested: threads,
                max: cost_model::MAX_MODEL_THREADS,
            },
        ));
    }
    Ok(())
}

/// Analyze a kernel: full Eq. 1 cost model with victim attribution.
/// The body behind [`crate::try_analyze`].
pub fn analyze(
    kernel: &Kernel,
    machine: &MachineConfig,
    opts: &AnalysisOptions,
) -> Result<AnalysisReport, AnalysisError> {
    check_team(machine, opts.num_threads)?;
    loop_ir::validate(kernel)?;
    let cost = cost_model::analyze_loop(kernel, machine, opts);
    Ok(AnalysisReport::new(kernel, machine, opts.num_threads, cost))
}

/// Lint a kernel symbolically under the same guards as [`analyze`].
/// The body behind [`crate::try_lint`].
pub fn lint(
    kernel: &Kernel,
    machine: &MachineConfig,
    num_threads: u32,
) -> Result<LintReport, AnalysisError> {
    check_team(machine, num_threads)?;
    loop_ir::validate(kernel)?;
    let line = machine.line_size();
    // FS005 compares one chunk's footprint against the machine's largest
    // private level: overflowing it means even L2 cannot hold the chunk.
    let capacity = machine
        .caches
        .private_levels()
        .map(|l| l.num_lines(line))
        .max();
    let result = cost_model::lint::lint_kernel_with_capacity(kernel, line, num_threads, capacity);
    Ok(LintReport::new(kernel, result, capacity))
}

/// Parse DSL source, then [`analyze`].
pub fn analyze_dsl(
    source: &str,
    machine: &MachineConfig,
    opts: &AnalysisOptions,
) -> Result<AnalysisReport, AnalysisError> {
    let kernel = loop_ir::dsl::parse_kernel(source)?;
    analyze(&kernel, machine, opts)
}

/// Parse DSL source, then [`lint`].
pub fn lint_dsl(
    source: &str,
    machine: &MachineConfig,
    num_threads: u32,
) -> Result<LintReport, AnalysisError> {
    let kernel = loop_ir::dsl::parse_kernel(source)?;
    lint(&kernel, machine, num_threads)
}

// ---------------------------------------------------------------------------
// Shared helpers: machines, input resolution, grid specs
// ---------------------------------------------------------------------------

/// The machine preset behind a `--machine` name (`paper48`, `generic`,
/// `tiny`), or `None` for anything else.
pub fn machine_by_name(name: &str) -> Option<MachineConfig> {
    match name {
        "paper48" => Some(machine::presets::paper48()),
        "generic" => Some(machine::presets::generic_x86()),
        "tiny" => Some(machine::presets::tiny_test()),
        _ => None,
    }
}

/// Resolve an input path to DSL source: `@name` loads a bundled corpus
/// kernel, anything else is read from the filesystem. The error strings are
/// the exact diagnostics the CLIs print (minus the binary-name prefix).
pub fn resolve_input(path: &str) -> Result<String, String> {
    if let Some(name) = path.strip_prefix('@') {
        crate::corpus::corpus_entry(name)
            .map(|e| e.source.to_string())
            .ok_or_else(|| format!("no bundled kernel '@{name}' (try --list)"))
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

/// Parse `2,4,8:1,4,16,64` into `(threads, chunks)` — the `--sweep-grid`
/// axis spec shared by the CLI and daemon flags.
pub fn parse_grid_spec(spec: &str) -> Option<(Vec<u32>, Vec<u64>)> {
    let (t, c) = spec.split_once(':')?;
    let threads: Option<Vec<u32>> = t.split(',').map(|v| v.trim().parse().ok()).collect();
    let chunks: Option<Vec<u64>> = c.split(',').map(|v| v.trim().parse().ok()).collect();
    match (threads, chunks) {
        (Some(t), Some(c)) if !t.is_empty() && !c.is_empty() => Some((t, c)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// ServiceCache — the sharded cross-request memo
// ---------------------------------------------------------------------------

/// A [`MemoCache`] sharded across [`fs_runtime::Sharded`] mutexes, routed
/// by content-key hash, so concurrent sweep workers and daemon connections
/// only contend when they touch the *same* kernel×machine×point.
///
/// An optional total byte budget is split evenly across shards; each shard
/// evicts LRU-first independently (see [`MemoCache`]), so the aggregate
/// stays within the budget while hits remain O(1).
pub struct ServiceCache {
    shards: Sharded<MemoCache>,
}

impl ServiceCache {
    /// `shards` independently locked shards (clamped to >= 1), bounded by
    /// `budget` total resident bytes (`None` = unbounded).
    pub fn new(shards: usize, budget: Option<u64>) -> Self {
        let n = shards.max(1);
        let per_shard = budget.map(|b| (b / n as u64).max(1));
        ServiceCache {
            shards: Sharded::new(n, |_| MemoCache::with_budget(per_shard)),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.num_shards()
    }

    /// Change the total byte budget; over-budget shards evict immediately,
    /// and `svc.cache_bytes` reflects the post-eviction residency (evictions
    /// only ever happen inside a budget-enforcing mutation — insert, prepare,
    /// or this — so publishing here keeps the gauge accurate between
    /// requests on a budget-pressured daemon).
    pub fn set_budget(&self, budget: Option<u64>) {
        let per_shard = budget.map(|b| (b / self.shards.num_shards() as u64).max(1));
        self.shards.for_each(|m| m.set_budget(per_shard));
        self.update_gauge();
    }

    /// Look up a point result by its [`point_key`], counting a hit or miss
    /// on the owning shard.
    pub fn lookup_point(&self, key: &str) -> Option<LoopCost> {
        self.shards.shard_for(key).lookup_point(key)
    }

    /// Store a computed point result under its [`point_key`].
    pub fn insert_point(&self, key: String, cost: LoopCost) {
        self.shards.shard_for(key.as_str()).insert_point(key, cost);
        self.update_gauge();
    }

    /// The prepared (schedule-independent) inputs for `kernel` on
    /// `machine`, cached on the shard owning its [`prepared_key`]. The
    /// resolved FS path is part of the key (as for points), so toggling the
    /// service's path between requests never aliases cached state.
    pub fn prepared_for(
        &self,
        kernel: &Kernel,
        machine: &MachineConfig,
        path: FsPath,
    ) -> PreparedKernel {
        let key = prepared_key(kernel, machine, path);
        let p = self
            .shards
            .shard_for(key.as_str())
            .prepared_for_keyed(key, kernel, machine);
        self.update_gauge();
        p
    }

    /// Aggregate statistics over every shard. Per-shard peaks sum to a
    /// conservative upper bound on the aggregate peak (see
    /// [`MemoStats::merge`]).
    pub fn stats(&self) -> MemoStats {
        self.shards.fold(MemoStats::default(), |mut acc, m| {
            acc.merge(&m.stats());
            acc
        })
    }

    /// Drop every cached entry (lifetime counters survive).
    pub fn clear(&self) {
        self.shards.for_each(|m| m.clear());
        self.update_gauge();
    }

    /// Publish current resident bytes to the `svc.cache_bytes` gauge.
    fn update_gauge(&self) {
        if obs::counters_enabled() {
            obs::gauges::SVC_CACHE_BYTES.set(self.stats().bytes);
        }
    }
}

// ---------------------------------------------------------------------------
// Request / response types
// ---------------------------------------------------------------------------

/// One kernel to analyze: a display name (file path, `@corpus` name, or any
/// client-chosen label) plus optional inline DSL source. Without `source`,
/// the service resolves `name` via [`resolve_input`].
#[derive(Debug, Clone)]
pub struct KernelInput {
    pub name: String,
    pub source: Option<String>,
}

impl KernelInput {
    /// An input the service resolves by name (`@corpus` or file path).
    pub fn named(name: impl Into<String>) -> Self {
        KernelInput {
            name: name.into(),
            source: None,
        }
    }

    /// An input with inline DSL source (what daemon clients usually send).
    pub fn inline(name: impl Into<String>, source: impl Into<String>) -> Self {
        KernelInput {
            name: name.into(),
            source: Some(source.into()),
        }
    }
}

/// Per-request knobs (everything the CLI flags used to thread around).
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Team size for per-kernel analysis and lint.
    pub threads: u32,
    /// §III-E prediction sample size (`None` = full model).
    pub predict: Option<u64>,
    /// Adaptive early-exit prediction for grid points (overrides `predict`
    /// for the grid).
    pub early_exit: bool,
    /// Sweep worker-thread count (`None` = one per core).
    pub workers: Option<usize>,
    /// Per-replay worker budget for simulator-backed sections (fsdetect
    /// `--sim`). `0` or `1` keeps the serial dense replay; `>= 2` requests
    /// the set-sharded parallel replay (`SimPath::Sharded`) with that many
    /// shard workers. Prefetch configs and non-decomposable cache
    /// geometries still fall back to the serial engine with identical
    /// stats (see `docs/SIM.md`, "Sharded replay").
    pub sim_workers: usize,
    /// Include the Eq. 1 analysis report per kernel.
    pub analyze: bool,
    /// Include the symbolic lint report per kernel.
    pub lint: bool,
    /// Include nondeterministic timing (`sweep_stats`) in the envelope.
    pub timing: bool,
    /// `NAME=VALUE` bindings applied when parsing every kernel.
    pub consts: Vec<(String, i64)>,
    /// FS-model path for every analysis and grid point. The service
    /// defaults to [`FsPath::Symbolic`]: in-fragment kernels get exact
    /// closed-form counts in O(1) per point, and out-of-fragment kernels
    /// fall back to the dense path with identical counts (see
    /// `fs.symbolic_fallbacks`). [`FsPath::Analytic`] additionally attaches
    /// the reuse-distance capacity prediction (see `fs.analytic_fallbacks`).
    pub path: FsPath,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            threads: 8,
            predict: None,
            early_exit: false,
            workers: None,
            sim_workers: 0,
            analyze: true,
            lint: true,
            timing: false,
            consts: Vec::new(),
            path: FsPath::Symbolic,
        }
    }
}

/// One analysis request: kernels × machines, an optional sweep grid, and
/// options. This is the *only* argument shape the service accepts — the
/// CLIs build it from flags, the daemon from a JSON line.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    pub kernels: Vec<KernelInput>,
    /// Machine preset names (see [`machine_by_name`]). The first is the
    /// primary machine for per-kernel reports; a sweep grid runs over all.
    pub machines: Vec<String>,
    /// `(threads axis, chunks axis)` for a sweep grid over every kernel ×
    /// machine.
    pub grid: Option<(Vec<u32>, Vec<u64>)>,
    pub options: ServiceOptions,
}

impl Default for ServiceRequest {
    fn default() -> Self {
        ServiceRequest {
            kernels: Vec::new(),
            machines: vec!["paper48".to_string()],
            grid: None,
            options: ServiceOptions::default(),
        }
    }
}

/// The outcome for one requested kernel. `kernel` carries the parsed IR so
/// veneers can drive extra passes (advisor, simulator) without re-parsing.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// The input's display name, echoed back.
    pub file: String,
    pub kernel: Option<Kernel>,
    pub report: Option<AnalysisReport>,
    pub lint: Option<LintReport>,
    /// Resolution / parse / analysis failure for this input (the others
    /// still run).
    pub error: Option<String>,
}

impl KernelResult {
    /// The entry in the envelope's `reports` array (stable field order).
    pub fn to_json(&self) -> JsonValue {
        let mut o = JsonValue::obj().field("file", self.file.as_str());
        if let Some(k) = &self.kernel {
            o = o.field("kernel", k.name.as_str());
        }
        if let Some(r) = &self.report {
            o = o.field("report", r.to_json());
        }
        if let Some(l) = &self.lint {
            o = o.field("lint", l.to_json());
        }
        if let Some(e) = &self.error {
            o = o.field("error", e.as_str());
        }
        o
    }
}

/// Process-wide request id source: every [`Service::handle_with`] call gets
/// the next id, and the daemon draws control-command ids (ping, stats, …)
/// from the same sequence so its access log stays totally ordered.
static NEXT_REQUEST_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Claim the next monotonically increasing request id.
pub fn allocate_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Wall-clock breakdown of one request, measured independently of the obs
/// configuration. Attached to the envelope only under the `timing:true`
/// request flag (it is nondeterministic, like `sweep_stats`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestTiming {
    /// End-to-end `handle_with` wall time.
    pub total_ns: u64,
    /// Input resolution + DSL parsing, summed over kernels.
    pub resolve_ns: u64,
    /// Cost-model analysis (`analyze_cached`), summed over kernels.
    pub analyze_ns: u64,
    /// Symbolic lint, summed over kernels.
    pub lint_ns: u64,
    /// The sweep-grid run, when one was requested.
    pub grid_ns: u64,
    /// Service-cache hits this request (single-kernel lookups plus the
    /// grid's memo-delta).
    pub cache_hits: u64,
    /// Service-cache misses this request.
    pub cache_misses: u64,
}

impl RequestTiming {
    /// The envelope's `timing` object (stable field order).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .field("total_ms", self.total_ns as f64 / 1e6)
            .field("resolve_ms", self.resolve_ns as f64 / 1e6)
            .field("analyze_ms", self.analyze_ns as f64 / 1e6)
            .field("lint_ms", self.lint_ns as f64 / 1e6)
            .field("grid_ms", self.grid_ns as f64 / 1e6)
            .field("cache_hits", self.cache_hits)
            .field("cache_misses", self.cache_misses)
    }
}

/// Everything one request produced. Renders to the versioned envelope via
/// [`Self::envelope`]; front ends add presentation (exit codes, stderr
/// diagnostics, metrics) on top.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// Primary machine name, echoed back.
    pub machine: String,
    pub threads: u32,
    pub results: Vec<KernelResult>,
    pub sweep: Option<SweepGridResult>,
    /// Request-level failures (unknown machine, invalid grid). Per-kernel
    /// failures live in [`KernelResult::error`].
    pub errors: Vec<String>,
    /// Any lint reported findings.
    pub findings: bool,
    /// Whether the envelope includes nondeterministic `sweep_stats`,
    /// `request_id`, and `timing`.
    pub include_timing: bool,
    /// This request's id from [`allocate_request_id`].
    pub request_id: u64,
    /// Per-phase wall breakdown (always measured; rendered only under
    /// `timing:true`).
    pub timing: RequestTiming,
}

impl ServiceResponse {
    /// Request-level or per-kernel errors?
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty() || self.results.iter().any(|r| r.error.is_some())
    }

    /// Any kernel's report crossed the significance threshold?
    pub fn has_significant_fs(&self) -> bool {
        self.results.iter().any(|r| {
            r.report
                .as_ref()
                .is_some_and(|rep| rep.has_significant_fs())
        })
    }

    /// Every error string, request-level first, then per-kernel in input
    /// order (the envelope's `errors` array).
    pub fn all_errors(&self) -> Vec<&str> {
        self.errors
            .iter()
            .map(|e| e.as_str())
            .chain(self.results.iter().filter_map(|r| r.error.as_deref()))
            .collect()
    }

    /// The versioned response envelope — the one JSON document every front
    /// end emits. Deterministic for deterministic requests: `sweep_stats`
    /// (wall-clock timing) is included only when the request asked for
    /// timing, and `metrics` is appended by front ends that snapshot
    /// observability themselves.
    pub fn envelope(&self) -> JsonValue {
        self.envelope_inner(true)
    }

    /// The envelope without the `reports` array — the `done` event of a
    /// streaming response, where per-kernel entries already went out.
    pub fn envelope_tail(&self) -> JsonValue {
        self.envelope_inner(false)
    }

    fn envelope_inner(&self, include_reports: bool) -> JsonValue {
        let mut doc = JsonValue::obj()
            .field("fsd_version", FSD_VERSION)
            .field("machine", self.machine.as_str())
            .field("threads", self.threads as u64);
        if self.include_timing {
            doc = doc.field("request_id", self.request_id);
        }
        if include_reports {
            doc = doc.field(
                "reports",
                JsonValue::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            );
        }
        if let Some(r) = &self.sweep {
            doc = doc.field("sweep_grid", r.to_json());
            if self.include_timing {
                doc = doc.field("sweep_stats", r.stats_json(5));
            }
        }
        if self.include_timing {
            doc = doc.field("timing", self.timing.to_json());
        }
        doc.field("findings", self.findings).field(
            "errors",
            JsonValue::Arr(
                self.all_errors()
                    .into_iter()
                    .map(|e| JsonValue::Str(e.to_string()))
                    .collect(),
            ),
        )
    }

    /// The response as a SARIF 2.1.0 document (lint results only).
    pub fn sarif(&self) -> JsonValue {
        crate::lint::sarif_document(
            self.results
                .iter()
                .filter_map(|r| {
                    r.lint
                        .as_ref()
                        .map(|l| (r.file.clone(), l.sarif_results(&r.file)))
                })
                .collect(),
        )
    }
}

/// The envelope schema version (`"fsd_version"`).
pub const FSD_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// The Service
// ---------------------------------------------------------------------------

/// A stateful analysis service: a shared [`ServiceCache`] plus the request
/// execution logic. Cheap to construct per CLI invocation; long-lived in
/// the daemon, where the cache is the whole point.
pub struct Service {
    cache: Arc<ServiceCache>,
}

impl Default for Service {
    fn default() -> Self {
        Self::new()
    }
}

impl Service {
    /// Unbounded cache, one shard per available core.
    pub fn new() -> Self {
        Self::with_budget(None)
    }

    /// Cache bounded to `budget` total resident bytes (`None` = unbounded).
    pub fn with_budget(budget: Option<u64>) -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Service {
            cache: Arc::new(ServiceCache::new(shards, budget)),
        }
    }

    /// The shared cache (hand to [`SweepEngine::with_cache`] or inspect).
    pub fn cache(&self) -> &Arc<ServiceCache> {
        &self.cache
    }

    /// Execute one request. See [`Self::handle_with`].
    pub fn handle(&self, req: &ServiceRequest) -> ServiceResponse {
        self.handle_with(req, None)
    }

    /// Execute one request, invoking `on_result` after each kernel
    /// completes (the daemon's incremental streaming hook). Per-kernel
    /// failures are recorded and the remaining kernels still run;
    /// request-level failures (unknown machine, bad grid) land in
    /// [`ServiceResponse::errors`].
    pub fn handle_with(
        &self,
        req: &ServiceRequest,
        mut on_result: Option<&mut dyn FnMut(&KernelResult)>,
    ) -> ServiceResponse {
        let _span = obs::span("svc.request");
        obs::counters::SVC_REQUESTS.inc();
        let request_id = allocate_request_id();
        let t_request = std::time::Instant::now();
        let mut timing = RequestTiming::default();
        let opts = &req.options;
        let mut errors = Vec::new();

        let mut machines: Vec<(String, MachineConfig)> = Vec::new();
        for name in &req.machines {
            match machine_by_name(name) {
                Some(m) => machines.push((name.clone(), m)),
                None => {
                    errors.push(format!("unknown machine '{name}'"));
                    obs::counters::SVC_ERRORS.inc();
                }
            }
        }
        let machine_name = req
            .machines
            .first()
            .cloned()
            .unwrap_or_else(|| "paper48".to_string());
        if machines.is_empty() {
            if errors.is_empty() {
                errors.push("request names no machine".to_string());
                obs::counters::SVC_ERRORS.inc();
            }
            timing.total_ns = t_request.elapsed().as_nanos() as u64;
            obs::hists::SVC_REQUEST_NS.record_ns(timing.total_ns);
            return ServiceResponse {
                machine: machine_name,
                threads: opts.threads,
                results: Vec::new(),
                sweep: None,
                errors,
                findings: false,
                include_timing: opts.timing,
                request_id,
                timing,
            };
        }
        let primary = &machines[0].1;
        let consts: Vec<(&str, i64)> = opts.consts.iter().map(|(n, v)| (n.as_str(), *v)).collect();

        let mut results: Vec<KernelResult> = Vec::with_capacity(req.kernels.len());
        for input in &req.kernels {
            let mut kr = KernelResult {
                file: input.name.clone(),
                kernel: None,
                report: None,
                lint: None,
                error: None,
            };
            let t_resolve = std::time::Instant::now();
            let src = match &input.source {
                Some(s) => Ok(s.clone()),
                None => resolve_input(&input.name),
            };
            let parsed = src.and_then(|src| {
                loop_ir::dsl::parse_kernel_with_consts(&src, &consts)
                    .map_err(|e| e.with_source_name(&input.name).to_string())
            });
            timing.resolve_ns += t_resolve.elapsed().as_nanos() as u64;
            match parsed {
                Err(e) => kr.error = Some(e),
                Ok(kernel) => {
                    if opts.analyze {
                        let t = std::time::Instant::now();
                        let res = self.analyze_cached(
                            &kernel,
                            primary,
                            opts.threads,
                            opts.predict,
                            opts.path,
                            &mut timing,
                        );
                        timing.analyze_ns += t.elapsed().as_nanos() as u64;
                        match res {
                            Ok(r) => kr.report = Some(r),
                            Err(e) => kr.error = Some(format!("{}: {e}", input.name)),
                        }
                    }
                    if opts.lint && kr.error.is_none() {
                        let t = std::time::Instant::now();
                        let res = lint(&kernel, primary, opts.threads);
                        timing.lint_ns += t.elapsed().as_nanos() as u64;
                        match res {
                            Ok(l) => kr.lint = Some(l),
                            Err(e) => kr.error = Some(format!("{}: {e}", input.name)),
                        }
                    }
                    kr.kernel = Some(kernel);
                }
            }
            if kr.error.is_some() {
                obs::counters::SVC_ERRORS.inc();
            }
            if let Some(cb) = on_result.as_deref_mut() {
                cb(&kr);
            }
            results.push(kr);
        }

        let sweep = match &req.grid {
            Some((gthreads, gchunks)) => {
                let kernels: Vec<(String, Kernel)> = results
                    .iter()
                    .filter(|r| r.error.is_none())
                    .filter_map(|r| r.kernel.clone().map(|k| (k.name.clone(), k)))
                    .collect();
                if kernels.is_empty() {
                    None
                } else {
                    let grid = SweepGrid {
                        kernels,
                        machines: machines.clone(),
                        threads: gthreads.clone(),
                        chunks: gchunks.clone(),
                    };
                    let mode = if opts.early_exit {
                        EvalMode::EarlyExit(EarlyExit::default())
                    } else {
                        match opts.predict {
                            Some(runs) => EvalMode::Predict(runs),
                            None => EvalMode::Full,
                        }
                    };
                    let mut engine = SweepEngine::with_cache(Arc::clone(&self.cache))
                        .mode(mode)
                        .path(opts.path);
                    if let Some(w) = opts.workers {
                        engine = engine.workers(w);
                    }
                    let t_grid = std::time::Instant::now();
                    let run = engine.run(&grid);
                    timing.grid_ns += t_grid.elapsed().as_nanos() as u64;
                    match run {
                        Ok(r) => {
                            obs::counters::SVC_CACHE_HITS.add(r.memo_hits);
                            obs::counters::SVC_CACHE_MISSES.add(r.memo_misses);
                            timing.cache_hits += r.memo_hits;
                            timing.cache_misses += r.memo_misses;
                            Some(r)
                        }
                        Err(e) => {
                            errors.push(format!("sweep grid: {e}"));
                            obs::counters::SVC_ERRORS.inc();
                            None
                        }
                    }
                }
            }
            None => None,
        };

        self.cache.update_gauge();
        let findings = results
            .iter()
            .any(|r| r.lint.as_ref().is_some_and(|l| l.has_findings()));
        timing.total_ns = t_request.elapsed().as_nanos() as u64;
        obs::hists::SVC_REQUEST_NS.record_ns(timing.total_ns);
        ServiceResponse {
            machine: machine_name,
            threads: opts.threads,
            results,
            sweep,
            errors,
            findings,
            include_timing: opts.timing,
            request_id,
            timing,
        }
    }

    /// Single-kernel analysis through the shared point memo — the same
    /// cache (and keys) the sweep engine fills, so a repeat request on a
    /// warm service is a lookup, not a model run.
    fn analyze_cached(
        &self,
        kernel: &Kernel,
        machine: &MachineConfig,
        threads: u32,
        predict: Option<u64>,
        path: FsPath,
        timing: &mut RequestTiming,
    ) -> Result<AnalysisReport, AnalysisError> {
        check_team(machine, threads)?;
        loop_ir::validate(kernel)?;
        let mode = match predict {
            Some(runs) => EvalMode::Predict(runs),
            None => EvalMode::Full,
        };
        let key = point_key(kernel, machine, threads, &mode, path);
        let cost = match self.cache.lookup_point(&key) {
            Some(c) => {
                obs::counters::SVC_CACHE_HITS.inc();
                timing.cache_hits += 1;
                c
            }
            None => {
                obs::counters::SVC_CACHE_MISSES.inc();
                timing.cache_misses += 1;
                let prep = self.cache.prepared_for(kernel, machine, path);
                let c = compute_point(kernel, machine, threads, mode, path, &prep);
                self.cache.insert_point(key, c.clone());
                c
            }
        };
        Ok(AnalysisReport::new(kernel, machine, threads, cost))
    }
}

// ---------------------------------------------------------------------------
// Wire protocol: JSON request parsing (the daemon's input format)
// ---------------------------------------------------------------------------

/// Daemon commands. `Analyze` and `Lint` carry a [`ServiceRequest`]; the
/// rest are control messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Full analysis (report + lint per kernel, optional grid).
    Analyze,
    /// Lint only (no cost-model run).
    Lint,
    /// Liveness check.
    Ping,
    /// Cache / counter statistics.
    Stats,
    /// Full observability registry (counters, gauges, histograms) as JSON —
    /// the protocol twin of the HTTP `/metrics` endpoint.
    Metrics,
    /// Ask the daemon to exit.
    Shutdown,
}

/// One parsed protocol message.
#[derive(Debug, Clone)]
pub struct ParsedRequest {
    pub command: Command,
    /// Stream per-kernel `result` events before the final envelope.
    pub stream: bool,
    pub request: ServiceRequest,
}

/// Parse one protocol message (one JSON object per line):
///
/// ```json
/// {"cmd": "analyze",
///  "kernels": [{"name": "@histogram"},
///              {"name": "k.loop", "source": "kernel k { ... }"}],
///  "machines": ["paper48"], "threads": 8,
///  "grid": {"threads": [2,4,8], "chunks": [1,4,16]},
///  "consts": {"N": 64}, "predict": 32, "early_exit": false,
///  "workers": 4, "sim_workers": 8, "timing": false, "stream": false}
/// ```
///
/// `cmd` defaults to `analyze`; `machine` (singular, a string) is accepted
/// as shorthand for a one-entry `machines`. `path` selects the FS-model
/// path (`"symbolic"` — the default — `"analytic"`, `"optimized"`, or
/// `"reference"`). `sim_workers` sets the per-replay worker budget for
/// simulator-backed veneers (`>= 2` requests the set-sharded replay).
/// Unknown commands and malformed fields are errors — the daemon reports
/// them without dying.
pub fn parse_request(v: &JsonValue) -> Result<ParsedRequest, String> {
    let cmd = match v.get("cmd") {
        None => "analyze",
        Some(c) => c.as_str().ok_or("'cmd' must be a string")?,
    };
    let command = match cmd {
        "analyze" => Command::Analyze,
        "lint" => Command::Lint,
        "ping" => Command::Ping,
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "shutdown" => Command::Shutdown,
        other => return Err(format!("unknown command '{other}'")),
    };
    let stream = match v.get("stream") {
        None => false,
        Some(s) => s.as_bool().ok_or("'stream' must be a boolean")?,
    };
    let mut req = ServiceRequest::default();
    if matches!(
        command,
        Command::Ping | Command::Stats | Command::Metrics | Command::Shutdown
    ) {
        return Ok(ParsedRequest {
            command,
            stream,
            request: req,
        });
    }

    let kernels = v
        .get("kernels")
        .and_then(|k| k.as_arr())
        .ok_or("request needs a 'kernels' array")?;
    if kernels.is_empty() {
        return Err("request has no kernels".to_string());
    }
    for k in kernels {
        let input = match k {
            JsonValue::Str(name) => KernelInput::named(name.clone()),
            JsonValue::Obj(_) => {
                let name = k
                    .get("name")
                    .and_then(|n| n.as_str())
                    .ok_or("kernel entry needs a 'name' string")?;
                match k.get("source") {
                    None => KernelInput::named(name),
                    Some(s) => KernelInput::inline(
                        name,
                        s.as_str().ok_or("kernel 'source' must be a string")?,
                    ),
                }
            }
            _ => return Err("kernel entries must be names or objects".to_string()),
        };
        req.kernels.push(input);
    }

    if let Some(m) = v.get("machine") {
        req.machines = vec![m.as_str().ok_or("'machine' must be a string")?.to_string()];
    }
    if let Some(ms) = v.get("machines") {
        let arr = ms.as_arr().ok_or("'machines' must be an array")?;
        req.machines = arr
            .iter()
            .map(|m| m.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()
            .ok_or("'machines' entries must be strings")?;
        if req.machines.is_empty() {
            return Err("'machines' is empty".to_string());
        }
    }

    let opts = &mut req.options;
    if let Some(t) = v.get("threads") {
        let t = t
            .as_u64()
            .ok_or("'threads' must be a non-negative integer")?;
        opts.threads = u32::try_from(t).map_err(|_| "'threads' is out of range")?;
    }
    if let Some(p) = v.get("predict") {
        opts.predict = Some(
            p.as_u64()
                .ok_or("'predict' must be a non-negative integer")?,
        );
    }
    if let Some(e) = v.get("early_exit") {
        opts.early_exit = e.as_bool().ok_or("'early_exit' must be a boolean")?;
    }
    if let Some(w) = v.get("workers") {
        let w = w
            .as_u64()
            .ok_or("'workers' must be a non-negative integer")?;
        opts.workers = Some(w.max(1) as usize);
    }
    if let Some(w) = v.get("sim_workers") {
        let w = w
            .as_u64()
            .ok_or("'sim_workers' must be a non-negative integer")?;
        opts.sim_workers = usize::try_from(w).map_err(|_| "'sim_workers' is out of range")?;
    }
    if let Some(t) = v.get("timing") {
        opts.timing = t.as_bool().ok_or("'timing' must be a boolean")?;
    }
    if let Some(p) = v.get("path") {
        let s = p.as_str().ok_or("'path' must be a string")?;
        opts.path = FsPath::parse(s).ok_or_else(|| {
            format!("unknown path '{s}' (analytic | symbolic | optimized | reference)")
        })?;
    }
    if let Some(c) = v.get("consts") {
        let JsonValue::Obj(fields) = c else {
            return Err("'consts' must be an object".to_string());
        };
        for (name, val) in fields {
            let n = val
                .as_f64()
                .filter(|n| n.trunc() == *n)
                .ok_or_else(|| format!("const '{name}' must be an integer"))?;
            opts.consts.push((name.clone(), n as i64));
        }
    }
    if let Some(g) = v.get("grid") {
        let threads = g
            .get("threads")
            .and_then(|t| t.as_arr())
            .ok_or("'grid' needs a 'threads' array")?
            .iter()
            .map(|t| t.as_u64().and_then(|t| u32::try_from(t).ok()))
            .collect::<Option<Vec<u32>>>()
            .ok_or("'grid.threads' entries must be integers")?;
        let chunks = g
            .get("chunks")
            .and_then(|c| c.as_arr())
            .ok_or("'grid' needs a 'chunks' array")?
            .iter()
            .map(|c| c.as_u64())
            .collect::<Option<Vec<u64>>>()
            .ok_or("'grid.chunks' entries must be integers")?;
        if threads.is_empty() || chunks.is_empty() {
            return Err("'grid' axes must be non-empty".to_string());
        }
        req.grid = Some((threads, chunks));
    }
    if command == Command::Lint {
        opts.analyze = false;
    }
    Ok(ParsedRequest {
        command,
        stream,
        request: req,
    })
}

// ---------------------------------------------------------------------------
// Metrics rendering (the `metrics` envelope section + `--profile`)
// ---------------------------------------------------------------------------

/// The `metrics` section front ends append to the envelope: every counter
/// and gauge by name, span aggregates, and the trace coverage figure.
pub fn metrics_json(snap: &obs::Snapshot) -> JsonValue {
    let mut counters = JsonValue::obj();
    for &(name, v) in &snap.counters {
        counters = counters.field(name, v);
    }
    let mut gauges = JsonValue::obj();
    for &(name, v) in &snap.gauges {
        gauges = gauges.field(name, v);
    }
    let mut hists = JsonValue::obj();
    for h in &snap.hists {
        hists = hists.field(h.name, hist_json(h));
    }
    let spans = snap
        .span_aggregate()
        .into_iter()
        .map(|a| {
            JsonValue::obj()
                .field("name", a.name)
                .field("count", a.count)
                .field("total_ms", a.total_ns as f64 / 1e6)
                .field("max_ms", a.max_ns as f64 / 1e6)
        })
        .collect();
    JsonValue::obj()
        .field("counters", counters)
        .field("gauges", gauges)
        .field("hists", hists)
        .field("spans", JsonValue::Arr(spans))
        .field("wall_ms", snap.wall_ns() as f64 / 1e6)
        .field("span_coverage", span_coverage(snap))
}

/// One histogram as JSON: totals plus quantile estimates in milliseconds.
pub fn hist_json(h: &obs::HistogramSnapshot) -> JsonValue {
    JsonValue::obj()
        .field("count", h.count)
        .field("mean_ms", h.mean_ns() as f64 / 1e6)
        .field("p50_ms", h.quantile(0.50) as f64 / 1e6)
        .field("p95_ms", h.quantile(0.95) as f64 / 1e6)
        .field("p99_ms", h.quantile(0.99) as f64 / 1e6)
}

/// Fraction of the snapshot's wall interval inside at least one span.
pub fn span_coverage(snap: &obs::Snapshot) -> f64 {
    let wall = snap.wall_ns();
    if wall == 0 {
        0.0
    } else {
        snap.covered_ns() as f64 / wall as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn histogram_request() -> ServiceRequest {
        ServiceRequest {
            kernels: vec![KernelInput::named("@histogram")],
            ..ServiceRequest::default()
        }
    }

    #[test]
    fn handle_produces_versioned_envelope() {
        let svc = Service::new();
        let resp = svc.handle(&histogram_request());
        assert!(!resp.has_errors());
        let doc = resp.envelope();
        assert_eq!(doc.get("fsd_version").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(doc.get("machine").and_then(|v| v.as_str()), Some("paper48"));
        let reports = doc.get("reports").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].get("file").and_then(|v| v.as_str()),
            Some("@histogram")
        );
        assert!(reports[0].get("report").is_some());
        assert!(reports[0].get("lint").is_some());
        // Envelope render parses back (NDJSON-safe).
        assert!(json::parse(&doc.render()).is_ok());
    }

    #[test]
    fn repeat_requests_hit_the_shared_cache() {
        let svc = Service::new();
        let req = histogram_request();
        svc.handle(&req);
        let s0 = svc.cache().stats();
        assert_eq!(s0.hits, 0);
        assert!(s0.misses > 0);
        svc.handle(&req);
        let s1 = svc.cache().stats();
        assert!(s1.hits > 0, "second request must hit the point memo");
        assert_eq!(s1.misses, s0.misses, "no new misses on a warm cache");
    }

    #[test]
    fn analyze_and_grid_share_one_cache() {
        // A grid containing the analyze point means the grid run hits the
        // entry the single-kernel path already inserted.
        let svc = Service::new();
        let mut req = histogram_request();
        svc.handle(&req);
        req.grid = Some((vec![8], vec![1]));
        let resp = svc.handle(&req);
        let sweep = resp.sweep.as_ref().unwrap();
        // @histogram's schedule is (static, 1), threads default 8 — the
        // same point identity the first request cached.
        assert!(sweep.memo_hits > 0, "grid reuses the analyze point");
    }

    #[test]
    fn path_toggle_never_serves_stale_cache() {
        let svc = Service::new();
        let mut req = histogram_request();
        let a = svc.handle(&req);
        let s0 = svc.cache().stats();
        req.options.path = FsPath::Reference;
        let b = svc.handle(&req);
        let s1 = svc.cache().stats();
        assert_eq!(s1.hits, s0.hits, "different path must miss the memo");
        assert!(s1.misses > s0.misses);
        // Counts agree (the equivalence property) but each report names the
        // path it was dispatched on.
        let ra = a.results[0].report.as_ref().unwrap();
        let rb = b.results[0].report.as_ref().unwrap();
        assert_eq!(ra.cost.fs.fs_cases, rb.cost.fs.fs_cases);
        assert_eq!(ra.cost.fs_path, FsPath::Symbolic);
        assert_eq!(rb.cost.fs_path, FsPath::Reference);
        assert_eq!(
            ra.to_json().get("fs_path").and_then(|v| v.as_str()),
            Some("symbolic")
        );
    }

    #[test]
    fn parse_request_accepts_and_validates_path() {
        let v = json::parse(r#"{"kernels":["@histogram"],"path":"reference"}"#).unwrap();
        let p = parse_request(&v).unwrap();
        assert_eq!(p.request.options.path, FsPath::Reference);
        let v = json::parse(r#"{"kernels":["@histogram"]}"#).unwrap();
        let p = parse_request(&v).unwrap();
        assert_eq!(p.request.options.path, FsPath::Symbolic, "daemon default");
        let v = json::parse(r#"{"kernels":["@histogram"],"path":"quantum"}"#).unwrap();
        assert!(parse_request(&v).is_err());
    }

    #[test]
    fn unknown_machine_is_a_request_error() {
        let svc = Service::new();
        let mut req = histogram_request();
        req.machines = vec!["vax".to_string()];
        let resp = svc.handle(&req);
        assert!(resp.has_errors());
        assert!(resp.errors[0].contains("unknown machine 'vax'"));
        assert!(resp.results.is_empty());
        let doc = resp.envelope();
        let errs = doc.get("errors").and_then(|e| e.as_arr()).unwrap();
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn per_kernel_errors_do_not_stop_the_batch() {
        let svc = Service::new();
        let req = ServiceRequest {
            kernels: vec![
                KernelInput::named("@nope"),
                KernelInput::inline("bad.loop", "kernel broken {"),
                KernelInput::named("@stencil"),
            ],
            ..ServiceRequest::default()
        };
        let resp = svc.handle(&req);
        assert!(resp.has_errors());
        assert!(resp.results[0]
            .error
            .as_deref()
            .unwrap()
            .contains("no bundled kernel '@nope'"));
        assert!(resp.results[1]
            .error
            .as_deref()
            .unwrap()
            .contains("parse error"));
        assert!(resp.results[2].report.is_some(), "good kernel still ran");
        assert_eq!(resp.all_errors().len(), 2);
    }

    #[test]
    fn streaming_callback_sees_every_kernel_in_order() {
        let svc = Service::new();
        let req = ServiceRequest {
            kernels: vec![
                KernelInput::named("@histogram"),
                KernelInput::named("@stencil"),
            ],
            ..ServiceRequest::default()
        };
        let mut seen = Vec::new();
        let mut cb = |r: &KernelResult| seen.push(r.file.clone());
        let resp = svc.handle_with(&req, Some(&mut cb));
        assert_eq!(seen, vec!["@histogram", "@stencil"]);
        assert_eq!(resp.results.len(), 2);
    }

    #[test]
    fn lint_only_requests_skip_the_cost_model() {
        let svc = Service::new();
        let mut req = histogram_request();
        req.options.analyze = false;
        let resp = svc.handle(&req);
        assert!(resp.results[0].report.is_none());
        assert!(resp.results[0].lint.is_some());
        assert_eq!(svc.cache().stats().misses, 0, "no cost-model points ran");
    }

    #[test]
    fn parse_request_round_trips_the_protocol() {
        let v = json::parse(
            r#"{"cmd":"analyze","kernels":[{"name":"@histogram"},"@stencil"],
                "machine":"tiny","threads":4,"grid":{"threads":[2,4],"chunks":[1,8]},
                "consts":{"N":64},"predict":16,"stream":true,"timing":true}"#,
        )
        .unwrap();
        let p = parse_request(&v).unwrap();
        assert_eq!(p.command, Command::Analyze);
        assert!(p.stream);
        assert_eq!(p.request.kernels.len(), 2);
        assert_eq!(p.request.kernels[1].name, "@stencil");
        assert_eq!(p.request.machines, vec!["tiny"]);
        assert_eq!(p.request.options.threads, 4);
        assert_eq!(p.request.options.predict, Some(16));
        assert_eq!(p.request.options.consts, vec![("N".to_string(), 64)]);
        assert!(p.request.options.timing);
        assert_eq!(p.request.grid, Some((vec![2, 4], vec![1, 8])));
    }

    #[test]
    fn parse_request_rejects_malformed_messages() {
        for bad in [
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"analyze"}"#,
            r#"{"cmd":"analyze","kernels":[]}"#,
            r#"{"cmd":"analyze","kernels":[7]}"#,
            r#"{"cmd":"analyze","kernels":["@x"],"threads":"eight"}"#,
            r#"{"cmd":"analyze","kernels":["@x"],"grid":{"threads":[2]}}"#,
            r#"{"cmd":"analyze","kernels":["@x"],"consts":{"N":1.5}}"#,
        ] {
            let v = json::parse(bad).unwrap();
            assert!(parse_request(&v).is_err(), "should reject: {bad}");
        }
        // Control messages need no kernels.
        for ok in [r#"{"cmd":"ping"}"#, r#"{"cmd":"stats"}"#] {
            let v = json::parse(ok).unwrap();
            assert!(parse_request(&v).is_ok());
        }
    }

    #[test]
    fn lint_command_disables_analysis() {
        let v = json::parse(r#"{"cmd":"lint","kernels":["@histogram"]}"#).unwrap();
        let p = parse_request(&v).unwrap();
        assert_eq!(p.command, Command::Lint);
        assert!(!p.request.options.analyze);
        assert!(p.request.options.lint);
    }

    #[test]
    fn service_cache_budget_bounds_resident_bytes() {
        let svc = Service::with_budget(Some(4096));
        let req = ServiceRequest {
            kernels: vec![
                KernelInput::named("@histogram"),
                KernelInput::named("@stencil"),
                KernelInput::named("@transpose"),
            ],
            ..ServiceRequest::default()
        };
        svc.handle(&req);
        let stats = svc.cache().stats();
        assert!(stats.bytes <= 4096, "resident {} > budget", stats.bytes);
        assert!(stats.evictions > 0 || stats.entries <= 6);
    }

    #[test]
    fn envelope_is_deterministic_without_timing() {
        let svc = Service::new();
        let mut req = histogram_request();
        req.grid = Some((vec![2, 4], vec![1, 4]));
        // First request warms the cache; after that, identical requests
        // produce byte-identical envelopes (the memo hit/miss deltas in
        // `sweep_grid` stabilize once no point needs computing).
        svc.handle(&req);
        let a = svc.handle(&req).envelope().render();
        let b = svc.handle(&req).envelope().render();
        assert_eq!(a, b, "warm envelopes are byte-identical");
        assert!(!a.contains("sweep_stats"));
        req.options.timing = true;
        assert!(svc
            .handle(&req)
            .envelope()
            .render()
            .contains("\"sweep_stats\""));
    }
}
