//! The bundled DSL kernel corpus (`kernels/*.loop` at the repository root):
//! ready-made sources for the CLI, examples, and tests.

use loop_ir::dsl::{parse_kernel, parse_kernel_with_consts, ParseError};
use loop_ir::Kernel;

/// A bundled kernel source.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// File stem (e.g. `"linreg"`).
    pub name: &'static str,
    /// The DSL source text.
    pub source: &'static str,
    /// One-line description of why the kernel is interesting.
    pub blurb: &'static str,
}

/// All bundled kernels.
pub const CORPUS: &[CorpusEntry] = &[
    CorpusEntry {
        name: "linreg",
        source: include_str!("../../../kernels/linreg.loop"),
        blurb: "Phoenix linear regression (paper Fig. 1): packed accumulator structs",
    },
    CorpusEntry {
        name: "heat",
        source: include_str!("../../../kernels/heat.loop"),
        blurb: "2-D heat diffusion, inner loop work-shared: write-only FS on the output row",
    },
    CorpusEntry {
        name: "dft",
        source: include_str!("../../../kernels/dft.loop"),
        blurb: "direct DFT: RMW false sharing on the output bins",
    },
    CorpusEntry {
        name: "stencil",
        source: include_str!("../../../kernels/stencil.loop"),
        blurb: "1-D moving average: boundary-only false sharing",
    },
    CorpusEntry {
        name: "histogram",
        source: include_str!("../../../kernels/histogram.loop"),
        blurb: "per-thread counters on one line: the classic FS bug",
    },
    CorpusEntry {
        name: "matmul",
        source: include_str!("../../../kernels/matmul.loop"),
        blurb: "matrix multiply, middle loop work-shared",
    },
];

/// Look up a corpus entry by name.
pub fn corpus_entry(name: &str) -> Option<&'static CorpusEntry> {
    CORPUS.iter().find(|e| e.name == name)
}

/// Parse a corpus kernel by name.
pub fn corpus_kernel(name: &str) -> Result<Kernel, ParseError> {
    let entry = corpus_entry(name).ok_or(ParseError {
        message: format!(
            "no bundled kernel named '{name}' (available: {})",
            CORPUS.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
        ),
        line: 0,
        col: 0,
    })?;
    parse_kernel(entry.source)
}

/// Parse a corpus kernel with `const` overrides (to rescale it).
pub fn corpus_kernel_with_consts(name: &str, consts: &[(&str, i64)]) -> Result<Kernel, ParseError> {
    let entry = corpus_entry(name).ok_or(ParseError {
        message: format!("no bundled kernel named '{name}'"),
        line: 0,
        col: 0,
    })?;
    parse_kernel_with_consts(entry.source, consts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::validate::validate_bounds;

    #[test]
    fn every_corpus_kernel_parses_and_validates() {
        for e in CORPUS {
            let k = corpus_kernel(e.name).unwrap_or_else(|err| panic!("{}: {err}", e.name));
            validate_bounds(&k).unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert!(!e.blurb.is_empty());
        }
    }

    #[test]
    fn corpus_kernels_false_share_as_advertised() {
        let m = crate::machines::paper48();
        for name in ["linreg", "heat", "dft", "histogram", "matmul"] {
            let k = corpus_kernel(name).unwrap();
            let r = crate::try_analyze(&k, &m, &crate::AnalysisOptions::new(8).predict(32).build())
                .expect("corpus kernels analyze cleanly");
            assert!(r.cost.fs.fs_cases > 0, "{name} should false-share");
        }
    }

    #[test]
    fn const_overrides_rescale_corpus_kernels() {
        let k = corpus_kernel_with_consts("heat", &[("N", 10), ("M", 34)]).unwrap();
        assert_eq!(k.nest.parallel_trip_count(), Some(32));
        assert_eq!(k.arrays[0].dims, vec![10, 34]);
    }

    #[test]
    fn unknown_names_error_helpfully() {
        let err = corpus_kernel("nope").unwrap_err();
        assert!(err.message.contains("available"));
        assert!(err.message.contains("linreg"));
    }
}
