//! A vendored, minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real proptest cannot
//! be fetched; this shim implements exactly the surface the repository's
//! property tests use, with deterministic xorshift sampling and **no
//! shrinking**. Every test runs the configured number of cases with a seed
//! derived from the test's name, so failures reproduce across runs.
//!
//! Supported surface:
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] ... }`
//! * argument strategies: integer ranges (`0u64..500`, `-2i64..=2`),
//!   `any::<bool>()`, tuples, `prop::collection::vec(strategy, size)`,
//!   `prop::sample::select(vec![...])`, and `.prop_map(f)`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`

use std::marker::PhantomData;

/// Deterministic xorshift64* generator seeded from the test name.
pub mod test_runner {
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from an FNV-1a hash of `name` so each test gets a distinct
        /// but stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform-ish value in `[0, n)` (modulo bias is irrelevant here).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

use test_runner::TestRng;

/// Run configuration: only the case count matters to the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error type threaded out of a test case body by the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — discard the case and draw another.
    Reject(String),
    /// `prop_assert*!` failed — fail the test.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A source of values for one test argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let width = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // 53-bit mantissa fraction in [0, 1); scale into the range.
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + frac * (hi - lo)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                (lo + frac * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy over all values of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Size specification for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub enum SizeRange {
    Fixed(usize),
    Between(usize, usize),
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Fixed(n)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange::Between(r.start, r.end.max(r.start + 1))
    }
}

impl From<std::ops::Range<i32>> for SizeRange {
    fn from(r: std::ops::Range<i32>) -> Self {
        SizeRange::Between(r.start.max(0) as usize, r.end.max(r.start + 1) as usize)
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        match *self {
            SizeRange::Fixed(n) => n,
            SizeRange::Between(lo, hi) => lo + rng.below((hi - lo).max(1) as u64) as usize,
        }
    }
}

/// The `prop::` namespace the prelude exposes.
pub mod prop {
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::{SizeRange, Strategy};

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vectors of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        use crate::test_runner::TestRng;
        use crate::Strategy;

        pub struct Select<T>(Vec<T>);

        /// Uniformly select one of the given values.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select() needs at least one item");
            Select(items)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?} != {:?}`",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).saturating_add(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\n\
                                 (vendored shim: deterministic seed, no shrinking)",
                                accepted + 1,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases.min(1),
                    "proptest {}: every generated case was rejected by prop_assume!",
                    stringify!($name)
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..500 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn vec_select_map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let s = prop::collection::vec((0u32..4, -2i64..3), 1..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.sample(&mut rng);
            assert!((1..6).contains(&n));
        }
        let sel = prop::sample::select(vec![8usize, 24, 40]);
        for _ in 0..50 {
            assert!([8, 24, 40].contains(&sel.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(a in 0u64..100, flip in any::<bool>()) {
            prop_assume!(a != 13);
            prop_assert!(a < 100, "a = {}", a);
            prop_assert_eq!(a + u64::from(flip) >= a, true);
        }
    }
}
