//! The parallel model's overhead terms: `Parallel_Overhead_c` and
//! `Loop_Overhead_c` (paper §II-B3).

use loop_ir::Kernel;
use machine::MachineConfig;

/// Overhead estimate for one execution of the kernel by one team.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadCost {
    /// Total parallel overhead, cycles (startup + scheduling + barriers),
    /// on the critical path of one thread.
    pub parallel_total: f64,
    /// Loop bookkeeping cycles per innermost iteration.
    pub loop_per_iter: f64,
    /// Number of parallel-region instances (one per iteration of the loops
    /// outside the parallel level).
    pub region_instances: u64,
    /// Chunks dispatched to one thread per region instance.
    pub chunks_per_thread: f64,
}

/// Estimate the runtime overheads of `kernel` on `machine` with a team of
/// `num_threads`.
pub fn overhead_cost(kernel: &Kernel, machine: &MachineConfig, num_threads: u32) -> OverheadCost {
    let nest = &kernel.nest;
    let o = &machine.overheads;
    let t = num_threads.max(1) as u64;

    // Loops outside the parallel level re-enter the worksharing region.
    let region_instances = nest.outer_iters().unwrap_or(1).max(1);
    let trip_p = nest.parallel_trip_count().unwrap_or(0);
    let chunk = nest.parallel.schedule.chunk().max(1);
    let num_chunks = trip_p.div_ceil(chunk);
    let chunks_per_thread = (num_chunks as f64 / t as f64).ceil();

    // Startup is paid once (thread team reuse across region instances is
    // the common OpenMP implementation); each region instance pays per-chunk
    // scheduling plus the closing barrier.
    let parallel_total = o.parallel_startup as f64
        + region_instances as f64
            * (chunks_per_thread * o.per_chunk_schedule as f64 + o.barrier_per_thread as f64);

    // Index increment + bound check at every level enclosing the body: the
    // innermost pays per iteration; outer levels amortize.
    let loop_per_iter = o.loop_overhead_per_iter * nest.depth() as f64;

    OverheadCost {
        parallel_total,
        loop_per_iter,
        region_instances,
        chunks_per_thread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::kernels;
    use machine::presets;

    #[test]
    fn inner_parallel_pays_barrier_per_outer_iteration() {
        let m = presets::paper48();
        let heat = overhead_cost(&kernels::heat_diffusion(66, 66, 1), &m, 8);
        assert_eq!(heat.region_instances, 64);
        let linreg = overhead_cost(&kernels::linear_regression(64, 64, 1), &m, 8);
        assert_eq!(linreg.region_instances, 1);
        assert!(heat.parallel_total > linreg.parallel_total);
    }

    #[test]
    fn smaller_chunks_mean_more_scheduling() {
        let m = presets::paper48();
        let c1 = overhead_cost(&kernels::stencil1d(4098, 1), &m, 8);
        let c64 = overhead_cost(&kernels::stencil1d(4098, 64), &m, 8);
        assert!(c1.chunks_per_thread > c64.chunks_per_thread);
        assert!(c1.parallel_total > c64.parallel_total);
    }

    #[test]
    fn loop_overhead_scales_with_depth() {
        let m = presets::paper48();
        let d1 = overhead_cost(&kernels::stencil1d(130, 1), &m, 4);
        let d2 = overhead_cost(&kernels::heat_diffusion(18, 18, 1), &m, 4);
        assert!(d2.loop_per_iter > d1.loop_per_iter);
    }

    #[test]
    fn more_threads_fewer_chunks_each() {
        let m = presets::paper48();
        let t2 = overhead_cost(&kernels::stencil1d(4098, 1), &m, 2);
        let t32 = overhead_cost(&kernels::stencil1d(4098, 1), &m, 32);
        assert!(t2.chunks_per_thread > t32.chunks_per_thread);
    }
}
