//! The cache model (`Cache_c`) and TLB model (`TLB_c`): footprint-based
//! per-iteration miss cost estimation, in the style of Open64's LNO cache
//! model (paper §II-B2).
//!
//! References of the innermost body are partitioned into *reference groups*
//! (uniformly generated references within a cache line of each other —
//! `a[i]` and `a[i+1]` share a footprint). For each group the model
//! computes, per innermost iteration of one thread:
//!
//! * a **miss rate** — how many new cache lines the group's walk touches,
//!   derived from its byte stride under the thread's (chunked) iteration
//!   pattern, and
//! * a **service latency** — which cache level the misses hit in, by
//!   comparing the data footprint between temporal reuses against the cache
//!   sizes ("when the total amount of footprints is gathered, the model
//!   compares whether the footprint size is larger than the cache size").
//!
//! The TLB is the same calculation at page granularity, since "the TLB is
//! modeled as another level of cache".

use loop_ir::{ArrayRef, Kernel, VarId};
use machine::MachineConfig;

/// One reference group and the quantities derived for it.
#[derive(Debug, Clone)]
pub struct RefGroup {
    /// Representative reference.
    pub repr: ArrayRef,
    /// Number of references merged into the group.
    pub members: usize,
    /// Whether any member writes.
    pub has_write: bool,
    /// Whether any member reads.
    pub has_read: bool,
    /// Byte stride per innermost-loop iteration (sequential view).
    pub stride_bytes: i64,
    /// New cache lines touched per thread iteration under the schedule.
    pub miss_rate: f64,
    /// Bytes this group walks during one instance of the innermost loop,
    /// per thread.
    pub footprint_bytes: f64,
    /// Latency (cycles) of the level that services this group's misses.
    pub service_latency: u32,
}

/// Result of the cache model.
#[derive(Debug, Clone)]
pub struct CacheCost {
    pub groups: Vec<RefGroup>,
    /// `Cache_c` per innermost iteration per thread, in cycles.
    pub cycles_per_iter: f64,
    /// Total footprint of one innermost-loop instance, per thread (bytes).
    pub inner_footprint_bytes: f64,
}

/// Result of the TLB model.
#[derive(Debug, Clone, Copy)]
pub struct TlbCost {
    /// `TLB_c` per innermost iteration per thread, in cycles.
    pub cycles_per_iter: f64,
    /// New pages touched per iteration.
    pub page_miss_rate: f64,
}

/// Byte stride of a reference w.r.t. loop variable `v` (how far the address
/// moves when `v` increases by its step).
fn byte_stride(kernel: &Kernel, r: &ArrayRef, v: VarId, step: i64) -> i64 {
    let decl = kernel.array(r.array);
    let elem = decl.elem.size_bytes() as i64;
    let mut mult: i64 = 1;
    let mut stride: i64 = 0;
    for k in (0..r.indices.len()).rev() {
        stride += r.indices[k].coeff(v) * mult;
        mult *= decl.dims[k] as i64;
    }
    stride * elem * step
}

/// Number of cache lines spanned by the kernel's line-aligned array layout
/// ([`Kernel::array_bases`]): every in-bounds reference falls in a line
/// `< line_footprint(...)`. The FS model sizes its dense line tables from
/// this; out-of-footprint lines (halo reads past an array end, wrapped
/// negative addresses) take its hash-map fallback.
pub fn line_footprint(kernel: &Kernel, line_size: u64) -> u64 {
    let line_size = line_size.max(1);
    let bases = kernel.array_bases(line_size);
    match (bases.last(), kernel.arrays.last()) {
        (Some(&base), Some(decl)) => (base + decl.size_bytes().max(1)).div_ceil(line_size),
        _ => 0,
    }
}

/// Partition the body's references into reference groups:
/// `(representative, member count, has_write, has_read)`.
pub fn reference_groups(kernel: &Kernel) -> Vec<(ArrayRef, usize, bool, bool)> {
    let mut groups: Vec<(ArrayRef, usize, bool, bool)> = Vec::new();
    for stmt in &kernel.nest.body {
        for r in stmt.references() {
            if let Some(g) = groups
                .iter_mut()
                .find(|(repr, _, _, _)| repr.same_reference_group(&r))
            {
                g.1 += 1;
                g.2 |= r.access.is_write();
                g.3 |= !r.access.is_write();
            } else {
                let w = r.access.is_write();
                groups.push((r, 1, w, !w));
            }
        }
    }
    groups
}

/// Per-iteration new-granule (line/page) rate of a group under the thread's
/// schedule.
///
/// With the parallel loop at the innermost level and `schedule(static, C)`
/// on a team of `T`, one thread executes `C` consecutive iterations and then
/// jumps `T*C` iterations ahead. Two regimes bound the rate:
///
/// * chunks land on distinct granules (`T*C*s >= G`): per chunk the thread
///   opens `ceil(C*s/G)` granules, i.e. `ceil(C*s/G).min(C)/C` per
///   iteration;
/// * chunks of one thread revisit the same granule (`T*C*s < G`): the
///   thread advances `T*s` bytes per own-iteration on average, i.e.
///   `T*s/G` granules per iteration.
///
/// The true rate is the minimum of the two. With the parallel loop further
/// out, the innermost loop is an ordinary sequential walk: `min(|s|,G)/G`.
fn group_miss_rate(
    stride: i64,
    granule: u64,
    innermost_is_parallel: bool,
    chunk: u64,
    num_threads: u32,
) -> f64 {
    let s = stride.unsigned_abs();
    if s == 0 {
        return 0.0;
    }
    if innermost_is_parallel {
        let c = chunk.max(1);
        let per_chunk = ((c * s).div_ceil(granule)).clamp(1, c) as f64 / c as f64;
        let dilated = ((num_threads.max(1) as u64 * s) as f64 / granule as f64).min(1.0);
        per_chunk.min(dilated.max(s as f64 / granule as f64))
    } else {
        (s.min(granule)) as f64 / granule as f64
    }
}

/// Run the cache model: `Cache_c` per innermost iteration of one thread.
pub fn cache_cost(kernel: &Kernel, machine: &MachineConfig, num_threads: u32) -> CacheCost {
    let nest = &kernel.nest;
    let line = machine.line_size();
    let innermost_level = nest.depth() - 1;
    let innermost_is_parallel = nest.parallel.level == innermost_level;
    let chunk = nest.parallel.schedule.chunk();
    let in_var = nest.innermost().var;
    let in_step = nest.innermost().step;

    // Per-thread innermost trip count: the parallel loop's share if it is
    // innermost, the full trip otherwise.
    let inner_trip = nest.innermost().const_trip_count().unwrap_or(1).max(1);
    let per_thread_trip = if innermost_is_parallel {
        (inner_trip as f64 / num_threads.max(1) as f64).max(1.0)
    } else {
        inner_trip as f64
    };

    let raw_groups = reference_groups(kernel);

    // Footprints per group for one instance of the innermost loop.
    let mut groups: Vec<RefGroup> = raw_groups
        .into_iter()
        .map(|(repr, members, has_write, has_read)| {
            let stride = byte_stride(kernel, &repr, in_var, in_step);
            let rate = group_miss_rate(stride, line, innermost_is_parallel, chunk, num_threads);
            // Bytes walked by this thread in one inner-loop instance: every
            // touched line counts fully.
            let footprint = if stride == 0 {
                line as f64
            } else {
                // With chunked-parallel innermost loops each thread still
                // sweeps the whole range's lines when T*stride spans less
                // than a line apart per neighbour; `rate` captures that.
                (per_thread_trip * rate).max(1.0) * line as f64
            };
            RefGroup {
                repr,
                members,
                has_write,
                has_read,
                stride_bytes: stride,
                miss_rate: rate,
                footprint_bytes: footprint,
                service_latency: 0, // filled below
            }
        })
        .collect();

    let inner_footprint: f64 = groups.iter().map(|g| g.footprint_bytes).sum();

    // Temporal reuse across the outer loops: if any loop level outside the
    // innermost leaves a group's address unchanged (zero stride), or if
    // another group of the same array differs only by a small constant in an
    // outer-varying dimension (e.g. `A[i-1][j]` after `A[i+1][j]`), the
    // group's misses are re-fetches of recently used data. The reuse
    // footprint decides the serving level; groups with no temporal reuse
    // stream from memory.
    let outer_vars: Vec<VarId> = nest
        .loops
        .iter()
        .take(nest.depth() - 1)
        .map(|l| l.var)
        .collect();
    #[allow(clippy::type_complexity)]
    let group_keys: Vec<(u32, Vec<Vec<(VarId, i64)>>)> = groups
        .iter()
        .map(|g| {
            (
                g.repr.array.0,
                g.repr.indices.iter().map(|e| e.terms().to_vec()).collect(),
            )
        })
        .collect();

    for i in 0..groups.len() {
        let zero_outer_stride = outer_vars
            .iter()
            .all(|&v| byte_stride(kernel, &groups[i].repr, v, 1) == 0)
            && !outer_vars.is_empty();
        let sibling_reuse = group_keys
            .iter()
            .enumerate()
            .any(|(j, k)| j != i && *k == group_keys[i]);
        let has_reuse = zero_outer_stride || sibling_reuse;
        let reuse_footprint = if zero_outer_stride {
            // Reused every outer iteration: one inner instance's data.
            inner_footprint
        } else {
            // Sibling groups typically span a couple of outer iterations
            // (stencil rows): twice the inner footprint.
            2.0 * inner_footprint
        };
        groups[i].service_latency = if !has_reuse {
            machine.caches.memory_latency
        } else {
            // Smallest level (private or shared) holding the reuse window.
            machine
                .caches
                .levels
                .iter()
                .skip(1) // misses from L1 are served by L2 at best
                .find(|l| l.size_bytes as f64 >= reuse_footprint)
                .map(|l| l.hit_latency)
                .unwrap_or(machine.caches.memory_latency)
        };
    }

    // Stall cycles per miss, not raw latency:
    // * groups that are *read* (or RMW) walk constant affine strides, which
    //   the hardware stride prefetcher covers — their misses cost only the
    //   L1-visible residual;
    // * *write-only* groups retire through the store buffer, stalling for
    //   only `store_miss_factor` of the round trip.
    let l1_lat = machine.caches.l1().hit_latency as f64;
    let cycles_per_iter = groups
        .iter()
        .map(|g| {
            let stall = if g.has_read {
                (g.service_latency as f64).min(l1_lat)
            } else {
                g.service_latency as f64 * machine.coherence.store_miss_factor
            };
            g.miss_rate * stall
        })
        .sum();

    CacheCost {
        groups,
        cycles_per_iter,
        inner_footprint_bytes: inner_footprint,
    }
}

/// Run the TLB model: `TLB_c` per innermost iteration of one thread.
pub fn tlb_cost(kernel: &Kernel, machine: &MachineConfig, num_threads: u32) -> TlbCost {
    let nest = &kernel.nest;
    let page = machine.tlb.page_size;
    let in_var = nest.innermost().var;
    let in_step = nest.innermost().step;
    let innermost_is_parallel = nest.parallel.level == nest.depth() - 1;
    let chunk = nest.parallel.schedule.chunk();

    let mut rate = 0.0;
    for (repr, _, _, _) in reference_groups(kernel) {
        let stride = byte_stride(kernel, &repr, in_var, in_step);
        rate += group_miss_rate(stride, page, innermost_is_parallel, chunk, num_threads);
    }
    TlbCost {
        cycles_per_iter: rate * machine.tlb.miss_penalty as f64,
        page_miss_rate: rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::kernels;
    use machine::presets;

    #[test]
    fn stencil_reads_merge_into_one_group() {
        let k = kernels::stencil1d(130, 1);
        let groups = reference_groups(&k);
        // A[i-1], A[i], A[i+1] merge; B[i] separate.
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1, 3);
        assert!(!groups[0].2 && groups[0].3, "A group is read-only");
        assert!(groups[1].2 && !groups[1].3, "B group is write-only");
    }

    #[test]
    fn heat_groups_by_row() {
        let k = kernels::heat_diffusion(34, 34, 1);
        let groups = reference_groups(&k);
        // A row i-1; A row i (4 refs: j-1, j+1, and A[i][j] twice); A row
        // i+1; B.
        assert_eq!(groups.len(), 4);
        let row_i = groups
            .iter()
            .find(|(_, m, _, _)| *m == 4)
            .expect("row i group has 4 members");
        assert!(!row_i.2);
    }

    #[test]
    fn byte_strides_row_major() {
        let k = kernels::heat_diffusion(34, 34, 1);
        let groups = reference_groups(&k);
        // stride over j (innermost) = 8 bytes for every group.
        for (repr, _, _, _) in &groups {
            assert_eq!(byte_stride(&k, repr, k.nest.loops[1].var, 1), 8);
        }
        // stride over i = row width = 34 * 8.
        assert_eq!(
            byte_stride(&k, &groups[0].0, k.nest.loops[0].var, 1),
            34 * 8
        );
    }

    #[test]
    fn miss_rate_chunking() {
        // Innermost-parallel, stride 8B, line 64: chunk 1 -> a new line
        // every iteration; chunk 64 -> 8 lines per 64 iterations.
        assert_eq!(group_miss_rate(8, 64, true, 1, 8), 1.0);
        assert_eq!(group_miss_rate(8, 64, true, 64, 8), 0.125);
        // Sequential innermost: dense stride costs 1/8 line per iteration.
        assert_eq!(group_miss_rate(8, 64, false, 1, 8), 0.125);
        // Invariant references never miss.
        assert_eq!(group_miss_rate(0, 64, true, 1, 8), 0.0);
        // Strides beyond a line: one line per iteration either way.
        assert_eq!(group_miss_rate(256, 64, false, 1, 8), 1.0);
        assert_eq!(group_miss_rate(256, 64, true, 1, 8), 1.0);
        // Page granularity: neighbouring threads' chunks fall on the same
        // page, so the per-thread page rate is T*s/G, not 1.
        assert_eq!(group_miss_rate(8, 4096, true, 1, 8), 64.0 / 4096.0);
    }

    #[test]
    fn chunking_reduces_cache_cost() {
        let m = presets::paper48();
        let fs = cache_cost(&kernels::heat_diffusion(514, 514, 1), &m, 8);
        let nofs = cache_cost(&kernels::heat_diffusion(514, 514, 64), &m, 8);
        assert!(
            fs.cycles_per_iter > 4.0 * nofs.cycles_per_iter,
            "chunk1: {} vs chunk64: {}",
            fs.cycles_per_iter,
            nofs.cycles_per_iter
        );
    }

    #[test]
    fn heat_rows_are_served_by_a_cache_level_not_memory() {
        let m = presets::paper48();
        let c = cache_cost(&kernels::heat_diffusion(514, 514, 1), &m, 8);
        // The three A-row groups reuse each other across outer iterations.
        let a_groups: Vec<&RefGroup> = c.groups.iter().filter(|g| g.repr.array.0 == 0).collect();
        assert_eq!(a_groups.len(), 3);
        for g in a_groups {
            assert!(
                g.service_latency < m.caches.memory_latency,
                "A rows should hit in cache, got {}",
                g.service_latency
            );
        }
        // B is write-only streaming: memory.
        let b = c.groups.iter().find(|g| g.repr.array.0 == 1).unwrap();
        assert_eq!(b.service_latency, m.caches.memory_latency);
    }

    #[test]
    fn dft_bins_reused_across_outer_loop() {
        let m = presets::paper48();
        let c = cache_cost(&kernels::dft(512, 4096, 1), &m, 8);
        // Xre/Xim subscripts don't move with the outer loop -> reuse.
        for g in c.groups.iter().filter(|g| g.repr.array.0 != 0) {
            assert!(g.service_latency < m.caches.memory_latency);
        }
        // x[n] is innermost-invariant: zero miss rate.
        let x = c.groups.iter().find(|g| g.repr.array.0 == 0).unwrap();
        assert_eq!(x.miss_rate, 0.0);
    }

    #[test]
    fn tlb_cost_small_for_dense_walks() {
        let m = presets::paper48();
        // Two groups (A reads, B writes), each advancing T*s = 64 bytes per
        // thread-iteration: 2 * 64/4096 pages per iteration.
        let t = tlb_cost(&kernels::stencil1d(4098, 1), &m, 8);
        assert!((t.page_miss_rate - 2.0 * 64.0 / 4096.0).abs() < 1e-9);
        let t2 = tlb_cost(&kernels::transpose(512, 512, 1), &m, 8);
        // B[j][i]: stride over j = 512*8 = one page per iteration.
        assert!(t2.page_miss_rate >= 1.0, "rate = {}", t2.page_miss_rate);
    }
}
