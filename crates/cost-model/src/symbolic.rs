//! The [`crate::fs::FsPath::Symbolic`] evaluation path: closed-form
//! false-sharing counts inside the decidable affine fragment.
//!
//! The walking paths spend `O(steps × threads × accesses)` per model run.
//! This path observes that inside the fragment the model is *translation
//! periodic*: every access address is affine in the loop variables
//! ([`loop_ir::CompiledPlan`]), and under a static round-robin schedule the
//! team's joint iteration advances one "changing" variable uniformly — the
//! parallel variable when the parallel loop is outermost (per chunk *round*)
//! or the single non-trivial sequential outer loop (per loop *instance*).
//! Each period therefore shifts every array's address stream by a constant
//! byte delta `δ_r`. Choosing the period `p` as the lcm over arrays of
//! `M / gcd(|δ_r|, M)` with `M = line_size × num_sets` (the ByteAffine
//! stride/GCD argument `fslint` uses for its boundary-overlap verdicts)
//! makes every per-period line shift `Δ_r = δ_r·p / line_size` an integer
//! number of lines *and* a multiple of the set count — so shifting every
//! resident line of the machine state by `Δ_r` commutes with set selection,
//! byte masks, LRU order and writer masks.
//!
//! The engine simulates window by window with the exact `RefMachine`
//! semantics and, at each window boundary, compares the machine state with
//! a shifted snapshot from one or two windows back. One verified pair
//! proves (by induction, since the per-access transition function commutes
//! with the shift) that every later window emits the *same* count deltas on
//! shifted lines; one more simulated window records those deltas, and the
//! remaining `k` windows are applied in closed form: `O(1)` scalar updates
//! per window plus the per-line/series output the dense path would emit
//! anyway. The LRU/writer state is then translated by `k·Δ` and the ragged
//! tail (short chunks, truncation) is simulated exactly.
//!
//! Kernels whose caches never reach a shifted steady state (footprints
//! smaller than the stack, non-uniform schedules, multiple changing outer
//! loops) are completed by bounded direct simulation instead; anything that
//! would exceed `DIRECT_WORK_LIMIT` returns `None` and the dispatcher
//! falls back to [`crate::fs::FsPath::Optimized`], exactly as `fslint`
//! falls back to Unknown outside its fragment.

use crate::fs::{set_geometry, FsModelConfig, FsModelResult, LineInfo, RefMachine};
use crate::lint::gcd;
use cache_sim::lru::LruCache;
use loop_ir::schedule::ChunkSchedule;
use loop_ir::{AccessPlan, CompiledPlan, Kernel, StreamCursor};
use std::collections::HashMap;

/// Ceiling on `steps × threads × accesses` the symbolic path will simulate
/// directly (warm-up, recording and tails included) before giving up and
/// falling back to the dense path.
const DIRECT_WORK_LIMIT: u64 = 1 << 23;

/// Below this much total work, plain simulation is cheaper than snapshot
/// bookkeeping; skip the periodicity machinery entirely.
const SMALL_DIRECT_WORK: u64 = 1 << 16;

/// Longest period window (in lockstep steps) worth verifying.
const MAX_WINDOW_STEPS: u64 = 1 << 16;

/// Ceiling on extrapolated series entries (`k × runs_per_window`): beyond
/// this the output itself is the bottleneck and no path is viable.
const MAX_SERIES_ENTRIES: u64 = 1 << 24;

/// Closed-form evaluation of the FS model. Returns `None` when the kernel
/// is outside the decidable fragment (non-constant bounds) or the run would
/// exceed the direct-work budget without a verified period.
pub(crate) fn run_symbolic(
    kernel: &Kernel,
    cfg: &FsModelConfig,
    plan: &AccessPlan,
    bases: &[u64],
) -> Option<FsModelResult> {
    let _span = fs_obs::span("fs.symbolic");
    let num_threads = cfg.num_threads.max(1) as usize;
    let nest = &kernel.nest;

    // Fragment gate: every loop bound compile-time constant, and a
    // well-defined static schedule. This is the same decidability line
    // `lint::ByteAffine` draws.
    let mut trips = Vec::with_capacity(nest.loops.len());
    for l in &nest.loops {
        trips.push(l.const_trip_count()?);
    }
    let sched = ChunkSchedule::for_loop(
        nest.parallel_loop(),
        nest.parallel.schedule.chunk(),
        num_threads as u64,
    )?;

    // Bookkeeping identical to the walking paths.
    let outer_iters = nest.outer_iters().unwrap_or(1).max(1);
    let runs_per_instance = sched.num_chunk_runs().max(1);
    let inner_clamped = nest.inner_iters_per_parallel_iter().unwrap_or(1).max(1);
    let steps_per_run = (sched.chunk * inner_clamped).max(1);
    let max_steps = cfg.max_chunk_runs.map(|r| r * steps_per_run);

    let par_level = nest.parallel.level;
    let inner_prod: u64 = trips[par_level + 1..]
        .iter()
        .try_fold(1u64, |a, &t| a.checked_mul(t))?;
    let outer_prod: u64 = trips[..par_level]
        .iter()
        .try_fold(1u64, |a, &t| a.checked_mul(t))?;

    let iters_t: Vec<u64> = (0..num_threads as u64)
        .map(|t| iters_of_thread_closed(&sched, t))
        .collect();
    let total_steps_t: Vec<u64> = iters_t
        .iter()
        .map(|&it| outer_prod.saturating_mul(it).saturating_mul(inner_prod))
        .collect();
    let end_steps = total_steps_t.iter().copied().max().unwrap_or(0);
    let target = match max_steps {
        Some(ms) => end_steps.min(ms),
        None => end_steps,
    };

    let mut result = FsModelResult::empty(num_threads);
    result.total_chunk_runs = outer_iters * runs_per_instance;
    if target == 0 {
        result.finish_series(steps_per_run);
        return Some(result);
    }

    let per_step_work = (num_threads as u64) * (plan.accesses.len() as u64).max(1);
    let direct_work = target.saturating_mul(per_step_work);

    let cplan = plan.compile(kernel.vars.len(), bases);
    let driver = Driver {
        sched,
        par_level,
        levels: nest
            .loops
            .iter()
            .zip(trips.iter())
            .map(|(l, &tr)| Level {
                var: l.var.index(),
                lower: l.lower.as_const().expect("gated const"),
                step: l.step,
                trip: tr,
            })
            .collect(),
        inner_prod,
        iters_t,
        total_steps_t,
    };
    let mut sim = Sim {
        driver: &driver,
        cplan: &cplan,
        acc_size: plan.accesses.iter().map(|a| a.size as u64).collect(),
        acc_write: plan.accesses.iter().map(|a| a.is_write).collect(),
        machine: RefMachine::new(cfg),
        cursors: (0..num_threads)
            .map(|_| StreamCursor::new(&cplan))
            .collect(),
        env: vec![0i64; kernel.vars.len()],
        spr: steps_per_run,
        cur: 0,
    };

    let mut done = false;
    if direct_work > SMALL_DIRECT_WORK {
        if let Some(xp) = plan_extrapolation(
            kernel,
            cfg,
            plan,
            bases,
            &cplan,
            &sched,
            &trips,
            outer_prod,
            inner_prod,
            steps_per_run,
            end_steps,
        ) {
            done = run_windowed(&mut sim, &xp, &mut result, target, per_step_work);
        }
    }
    if !done {
        let remaining = (target - sim.cur).saturating_mul(per_step_work);
        if remaining > DIRECT_WORK_LIMIT {
            return None;
        }
        sim.run_to(target, &mut result);
    }
    fs_obs::counters::FS_LRU_EVICTIONS.add(sim.machine.evictions);
    result.finish_series(steps_per_run);
    Some(result)
}

/// Closed-form `ChunkSchedule::iters_of_thread` (the library version scans
/// every chunk): full chunks owned round-robin, minus the short tail of the
/// last chunk when this thread owns it.
pub(crate) fn iters_of_thread_closed(s: &ChunkSchedule, t: u64) -> u64 {
    let c = s.num_chunks();
    if t >= c {
        return 0;
    }
    let owned = (c - 1 - t) / s.num_threads + 1;
    let mut iters = owned * s.chunk;
    if (c - 1) % s.num_threads == t {
        let rem = s.trip_count % s.chunk;
        if rem != 0 {
            iters -= s.chunk - rem;
        }
    }
    debug_assert_eq!(iters, s.iters_of_thread(t));
    iters
}

struct Level {
    var: usize,
    lower: i64,
    step: i64,
    trip: u64,
}

/// Random access into the lockstep iteration space: reconstructs the
/// environment thread `t` has at its `s`-th lockstep step by mixed-radix
/// decomposition — the walker's order (outer combos, then owned parallel
/// iterations, then inner combos) without walking.
struct Driver {
    sched: ChunkSchedule,
    par_level: usize,
    levels: Vec<Level>,
    inner_prod: u64,
    iters_t: Vec<u64>,
    total_steps_t: Vec<u64>,
}

impl Driver {
    fn env_at(&self, t: usize, s: u64, env: &mut [i64]) {
        debug_assert!(s < self.total_steps_t[t]);
        let inner_idx = s % self.inner_prod;
        let q = s / self.inner_prod;
        let it = self.iters_t[t];
        let par_k = q % it;
        let mut outer_idx = q / it;
        for l in (0..self.par_level).rev() {
            let lv = &self.levels[l];
            env[lv.var] = lv.lower + (outer_idx % lv.trip) as i64 * lv.step;
            outer_idx /= lv.trip;
        }
        let pos = self
            .sched
            .nth_iter_of_thread(t as u64, par_k)
            .expect("par_k < iters_of_thread");
        env[self.levels[self.par_level].var] = self.sched.iter_value(pos);
        let mut ii = inner_idx;
        for l in (self.par_level + 1..self.levels.len()).rev() {
            let lv = &self.levels[l];
            env[lv.var] = lv.lower + (ii % lv.trip) as i64 * lv.step;
            ii /= lv.trip;
        }
    }
}

/// Exact simulation state: the reference machine driven in lockstep order
/// by [`Driver`] environments and strength-reduced address streams.
struct Sim<'a> {
    driver: &'a Driver,
    cplan: &'a CompiledPlan,
    acc_size: Vec<u64>,
    acc_write: Vec<bool>,
    machine: RefMachine,
    cursors: Vec<StreamCursor>,
    env: Vec<i64>,
    spr: u64,
    /// Next global lockstep step to simulate.
    cur: u64,
}

impl Sim<'_> {
    /// Simulate lockstep steps `[cur, until)`, accumulating into `res`.
    /// `res.steps` is relative to `res` (zero for a recording window), so
    /// callers must keep window starts aligned to `spr`.
    fn run_to(&mut self, until: u64, res: &mut FsModelResult) {
        let Sim {
            driver,
            cplan,
            acc_size,
            acc_write,
            machine,
            cursors,
            env,
            spr,
            cur,
        } = self;
        let spr = *spr;
        while *cur < until {
            let s = *cur;
            let mut active = 0u64;
            for (t, (cursor, &total)) in cursors.iter_mut().zip(&driver.total_steps_t).enumerate() {
                if s < total {
                    driver.env_at(t, s, env);
                    let addrs = cursor.advance(cplan, env);
                    for (i, &raw) in addrs.iter().enumerate() {
                        machine.access(t, raw as u64, acc_size[i], acc_write[i], res);
                    }
                    active += 1;
                }
            }
            *cur += 1;
            res.steps += 1;
            res.iterations += active;
            if res.steps.is_multiple_of(spr) {
                let run = res.steps / spr;
                res.series.push((run, res.fs_cases));
                res.events_series.push((run, res.fs_events));
            }
        }
    }
}

/// The per-array byte/line regions of the kernel's aligned layout. Every
/// region includes the line-aligned padding plus one halo line, mirroring
/// [`loop_ir::Kernel::array_bases`]; regions must be disjoint so a line
/// shift is attributable to exactly one array.
struct Regions {
    start_byte: Vec<u64>,
    end_byte: Vec<u64>,
    start_line: Vec<u64>,
    end_line: Vec<u64>,
}

impl Regions {
    fn build(kernel: &Kernel, bases: &[u64], line_size: u64) -> Option<Regions> {
        if line_size == 0 || bases.len() < kernel.arrays.len() {
            return None;
        }
        let n = kernel.arrays.len();
        let mut r = Regions {
            start_byte: Vec::with_capacity(n),
            end_byte: Vec::with_capacity(n),
            start_line: Vec::with_capacity(n),
            end_line: Vec::with_capacity(n),
        };
        let mut prev_end = 0u64;
        for (i, a) in kernel.arrays.iter().enumerate() {
            let start = bases[i];
            if !start.is_multiple_of(line_size) || start < prev_end {
                return None;
            }
            let sz = a.size_bytes().max(1);
            let end = start
                .checked_add(sz.div_ceil(line_size).checked_mul(line_size)?)?
                .checked_add(line_size)?;
            r.start_byte.push(start);
            r.end_byte.push(end);
            r.start_line.push(start / line_size);
            r.end_line.push(end / line_size);
            prev_end = end;
        }
        Some(r)
    }

    fn len(&self) -> usize {
        self.start_line.len()
    }

    fn region_of(&self, line: u64) -> Option<usize> {
        let idx = self.start_line.partition_point(|&s| s <= line);
        if idx == 0 {
            return None;
        }
        let r = idx - 1;
        (line < self.end_line[r]).then_some(r)
    }
}

/// A verified-extrapolation plan: the period in steps, the per-region line
/// shift one period induces, and the step bound of the uniform region the
/// shift argument is valid in.
struct ExtPlan {
    period_steps: u64,
    uniform_end: u64,
    /// Per-region resident-line shift per period (multiple of the set
    /// count, so set selection commutes).
    line_shift: Vec<i64>,
    regions: Regions,
}

fn lcm(a: u64, b: u64) -> Option<u64> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    let l = (a as u128 / gcd(a, b) as u128) * b as u128;
    u64::try_from(l).ok()
}

/// Derive the translation period for `kernel`, or `None` when the shift
/// argument doesn't apply (non-uniform schedule, several changing outer
/// loops, accesses escaping their array's region, or an impractically long
/// period).
#[allow(clippy::too_many_arguments)]
fn plan_extrapolation(
    kernel: &Kernel,
    cfg: &FsModelConfig,
    plan: &AccessPlan,
    bases: &[u64],
    cplan: &CompiledPlan,
    sched: &ChunkSchedule,
    trips: &[u64],
    outer_prod: u64,
    inner_prod: u64,
    steps_per_run: u64,
    end_steps: u64,
) -> Option<ExtPlan> {
    let nest = &kernel.nest;
    let ls = cfg.line_size;
    let regions = Regions::build(kernel, bases, ls)?;
    let t = sched.num_threads;
    let par_level = nest.parallel.level;

    // Static interval check: every access address stays inside its array's
    // padded region at every iteration, so resident lines are attributable
    // to exactly one region and shifts never cross regions.
    let mut var_range = vec![(0i64, 0i64); kernel.vars.len()];
    for (l, lp) in nest.loops.iter().enumerate() {
        let lo = lp.lower.as_const()?;
        if trips[l] == 0 {
            return None;
        }
        let hi = lo + (trips[l] as i64 - 1) * lp.step;
        var_range[lp.var.index()] = (lo, hi);
    }
    for (a, acc) in plan.accesses.iter().enumerate() {
        let r = acc.array.index();
        if r >= regions.len() {
            return None;
        }
        let mut lo = cplan.const_of(a) as i128;
        let mut hi = lo;
        for (v, &(vmin, vmax)) in var_range.iter().enumerate() {
            let c = cplan.coeff(a, v) as i128;
            if c > 0 {
                lo += c * vmin as i128;
                hi += c * vmax as i128;
            } else if c < 0 {
                lo += c * vmax as i128;
                hi += c * vmin as i128;
            }
        }
        if lo < regions.start_byte[r] as i128 || hi >= regions.end_byte[r] as i128 {
            return None;
        }
    }

    // The changing variable: the parallel variable (per chunk round) when
    // no sequential outer loop iterates, else the single non-trivial outer
    // loop (per parallel-loop instance) under a uniform schedule.
    let (chg_var, delta_val, unit_steps, uniform_end);
    if outer_prod == 1 {
        let par = &nest.loops[par_level];
        let full_rounds = sched.trip_count / (t * sched.chunk);
        chg_var = par.var.index();
        delta_val = (t * sched.chunk) as i64 * par.step;
        unit_steps = steps_per_run;
        uniform_end = full_rounds.checked_mul(steps_per_run)?;
    } else {
        let mut changing = None;
        for (l, &trip) in trips.iter().enumerate().take(par_level) {
            if trip > 1 {
                if changing.is_some() {
                    return None;
                }
                changing = Some(l);
            }
        }
        let l = changing?;
        // Uniform instances: full chunks, equally many per thread, so
        // every thread is active at every step and instances align.
        if !sched.trip_count.is_multiple_of(sched.chunk) || !sched.num_chunks().is_multiple_of(t) {
            return None;
        }
        chg_var = nest.loops[l].var.index();
        delta_val = nest.loops[l].step;
        unit_steps = (sched.num_chunks() / t)
            .checked_mul(sched.chunk)?
            .checked_mul(inner_prod)?;
        uniform_end = end_steps;
    }
    if unit_steps == 0 || uniform_end == 0 {
        return None;
    }

    // Per-array uniform byte delta on the changing variable.
    let mut delta_r: Vec<Option<i64>> = vec![None; regions.len()];
    for (a, acc) in plan.accesses.iter().enumerate() {
        let c = cplan.coeff(a, chg_var);
        let slot = &mut delta_r[acc.array.index()];
        match *slot {
            None => *slot = Some(c),
            Some(p) if p == c => {}
            Some(_) => return None,
        }
    }

    // Period: lcm over arrays of M / gcd(|δ_r|, M), M = line_size × sets —
    // after p units every per-array shift is a whole number of lines and a
    // multiple of the set count.
    let num_sets = set_geometry(cfg.stack_lines, cfg.stack_sets).0 as u64;
    let m = ls.checked_mul(num_sets)?;
    let mut p = 1u64;
    let mut byte_delta = vec![0i64; regions.len()];
    for (r, d) in delta_r.iter().enumerate() {
        let Some(c) = *d else { continue };
        let dd = i64::try_from(c as i128 * delta_val as i128).ok()?;
        byte_delta[r] = dd;
        if dd != 0 {
            p = lcm(p, m / gcd(dd.unsigned_abs(), m))?;
        }
    }
    let period_steps = p.checked_mul(unit_steps)?;
    if period_steps > MAX_WINDOW_STEPS {
        return None;
    }
    let mut line_shift = vec![0i64; regions.len()];
    for (r, &dd) in byte_delta.iter().enumerate() {
        let total = dd as i128 * p as i128;
        debug_assert_eq!(total % ls as i128, 0);
        line_shift[r] = i64::try_from(total / ls as i128).ok()?;
    }
    Some(ExtPlan {
        period_steps,
        uniform_end,
        line_shift,
        regions,
    })
}

/// A window-boundary snapshot of the machine: writer indexes plus every
/// set's residents in MRU order.
struct Snapshot {
    writers: HashMap<u64, u64>,
    phys: HashMap<u64, u64>,
    /// `states[thread][set]` = (line, info) MRU→LRU.
    states: Vec<Vec<Vec<(u64, LineInfo)>>>,
}

fn snapshot(m: &RefMachine) -> Snapshot {
    Snapshot {
        writers: m.writers.clone(),
        phys: m.phys_writers.clone(),
        states: m
            .states
            .iter()
            .map(|st| {
                st.sets
                    .iter()
                    .map(|s| s.iter_mru().map(|(&k, &v)| (k, v)).collect())
                    .collect()
            })
            .collect(),
    }
}

fn shifted_line(line: u64, regions: &Regions, shift: &[i64], mult: i64) -> Option<u64> {
    let r = regions.region_of(line)?;
    let nl = (line as i128 + shift[r] as i128 * mult as i128) as i64 as u64;
    (nl >= regions.start_line[r] && nl < regions.end_line[r]).then_some(nl)
}

fn map_matches(
    old: &HashMap<u64, u64>,
    new: &HashMap<u64, u64>,
    regions: &Regions,
    shift: &[i64],
    mult: i64,
) -> bool {
    old.len() == new.len()
        && old.iter().all(|(&l, &v)| {
            shifted_line(l, regions, shift, mult).is_some_and(|nl| new.get(&nl) == Some(&v))
        })
}

/// Does the machine state equal `snap` translated forward by `mult`
/// windows? Key maps, per-set residency, MRU order, byte masks and writer
/// masks must all match under the shift.
fn state_matches(
    snap: &Snapshot,
    m: &RefMachine,
    regions: &Regions,
    shift: &[i64],
    mult: i64,
) -> bool {
    if !map_matches(&snap.writers, &m.writers, regions, shift, mult)
        || !map_matches(&snap.phys, &m.phys_writers, regions, shift, mult)
    {
        return false;
    }
    snap.states.iter().zip(m.states.iter()).all(|(ss, ms)| {
        ss.iter().zip(ms.sets.iter()).all(|(sv, mset)| {
            sv.len() == mset.len()
                && sv
                    .iter()
                    .zip(mset.iter_mru())
                    .all(|(&(l, info), (&ml, &minfo))| {
                        shifted_line(l, regions, shift, mult) == Some(ml) && info == minfo
                    })
        })
    })
}

/// Translate the whole machine state forward by `shift` lines per region
/// (validated before any mutation; false = leave the machine untouched).
fn translate_state(m: &mut RefMachine, regions: &Regions, shift: &[i64]) -> bool {
    if shift.iter().all(|&d| d == 0) {
        return true;
    }
    let remap = |map: &HashMap<u64, u64>| -> Option<HashMap<u64, u64>> {
        let mut out = HashMap::with_capacity(map.len());
        for (&l, &v) in map {
            out.insert(shifted_line(l, regions, shift, 1)?, v);
        }
        Some(out)
    };
    let Some(writers) = remap(&m.writers) else {
        return false;
    };
    let Some(phys) = remap(&m.phys_writers) else {
        return false;
    };
    let mut new_states: Vec<Vec<LruCache<u64, LineInfo>>> = Vec::with_capacity(m.states.len());
    for st in &m.states {
        let mut sets = Vec::with_capacity(st.sets.len());
        for set in &st.sets {
            let mut fresh = LruCache::new(set.capacity());
            // Rebuild LRU-first so MRU order is preserved.
            let entries: Vec<(u64, LineInfo)> = set.iter_mru().map(|(&k, &v)| (k, v)).collect();
            for (l, v) in entries.into_iter().rev() {
                let Some(nl) = shifted_line(l, regions, shift, 1) else {
                    return false;
                };
                fresh.insert(nl, v);
            }
            sets.push(fresh);
        }
        new_states.push(sets);
    }
    m.writers = writers;
    m.phys_writers = phys;
    for (st, sets) in m.states.iter_mut().zip(new_states) {
        st.sets = sets;
    }
    true
}

/// Merge a recorded window's deltas into the main result (series entries
/// re-based onto the main cumulative counts).
fn merge_window(main: &mut FsModelResult, win: &FsModelResult, spr: u64) {
    debug_assert!(main.steps.is_multiple_of(spr));
    let r0 = main.steps / spr;
    for &(r, f) in &win.series {
        main.series.push((r0 + r, main.fs_cases + f));
    }
    for &(r, e) in &win.events_series {
        main.events_series.push((r0 + r, main.fs_events + e));
    }
    main.fs_cases += win.fs_cases;
    main.true_sharing_cases += win.true_sharing_cases;
    main.fs_events += win.fs_events;
    main.fs_read_events += win.fs_read_events;
    main.fs_write_events += win.fs_write_events;
    main.ts_events += win.ts_events;
    for (dst, &c) in main.per_thread_cases.iter_mut().zip(&win.per_thread_cases) {
        *dst += c;
    }
    for (&l, &c) in &win.per_line_cases {
        *main.per_line_cases.entry(l).or_insert(0) += c;
    }
    main.steps += win.steps;
    main.iterations += win.iterations;
}

/// Window-by-window simulation: warm up until the machine state verifies as
/// a shifted copy of an earlier boundary, record one window's deltas, apply
/// the remaining in-fragment windows in closed form, translate the state,
/// and simulate the ragged tail. Returns false (with `sim`/`res` advanced
/// consistently) when no period verified within budget — the caller then
/// finishes directly or falls back.
fn run_windowed(
    sim: &mut Sim<'_>,
    xp: &ExtPlan,
    res: &mut FsModelResult,
    target: u64,
    per_step_work: u64,
) -> bool {
    let e_cap = xp.uniform_end.min(target);
    let period = xp.period_steps;
    let warmup_step_limit = (DIRECT_WORK_LIMIT / per_step_work.max(1)).max(period);
    // Boundary snapshots, oldest first (at most 2: periods of P and 2P are
    // both caught; longer super-periods fall back to direct simulation).
    let mut ring: Vec<Snapshot> = Vec::with_capacity(2);
    ring.push(snapshot(&sim.machine));

    loop {
        if sim.cur + period > e_cap || sim.cur >= warmup_step_limit {
            return false;
        }
        sim.run_to(sim.cur + period, res);
        // Compare this boundary against the previous one(s), newest first.
        let mut found: Option<u64> = None;
        for (ago, snap) in ring.iter().rev().enumerate() {
            let j = (ago + 1) as u64;
            if state_matches(snap, &sim.machine, &xp.regions, &xp.line_shift, j as i64) {
                found = Some(j);
                break;
            }
        }
        let Some(j) = found else {
            ring.push(snapshot(&sim.machine));
            if ring.len() > 2 {
                ring.remove(0);
            }
            continue;
        };
        let jp = j * period;
        // Room for the recording window plus at least one closed-form one.
        if sim.cur + 2 * jp > e_cap {
            return false;
        }
        let shift: Vec<i64> = xp.line_shift.iter().map(|&d| d * j as i64).collect();

        // Record one verified window's deltas.
        let evict0 = sim.machine.evictions;
        let mut win = FsModelResult::empty(res.per_thread_cases.len());
        sim.run_to(sim.cur + jp, &mut win);
        let win_evict = sim.machine.evictions - evict0;
        let p_runs = jp / sim.spr;
        debug_assert!(jp.is_multiple_of(sim.spr));

        let k = (e_cap - sim.cur) / jp;
        debug_assert!(k >= 1);
        if k.saturating_mul(p_runs.max(1)) > MAX_SERIES_ENTRIES {
            merge_window(res, &win, sim.spr);
            return false;
        }
        // Translate the machine past the k windows before touching counts,
        // so a (defensive) failure leaves everything consistent.
        let total_shift: Vec<i64> = shift
            .iter()
            .map(|&d| i64::try_from(d as i128 * k as i128).unwrap_or(i64::MAX))
            .collect();
        merge_window(res, &win, sim.spr);
        if !translate_state(&mut sim.machine, &xp.regions, &total_shift) {
            return false;
        }

        // Apply the k closed-form windows: series, per-line (shifted),
        // scalars, state clock.
        let r0 = res.steps / sim.spr;
        let (base_fs, base_ev) = (res.fs_cases, res.fs_events);
        for copy in 0..k {
            for &(r, f) in &win.series {
                res.series
                    .push((r0 + copy * p_runs + r, base_fs + copy * win.fs_cases + f));
            }
            for &(r, e) in &win.events_series {
                res.events_series
                    .push((r0 + copy * p_runs + r, base_ev + copy * win.fs_events + e));
            }
        }
        for (&l, &c) in &win.per_line_cases {
            match xp.regions.region_of(l) {
                Some(r) if shift[r] != 0 => {
                    for copy in 1..=k {
                        let nl = (l as i128 + shift[r] as i128 * copy as i128) as i64 as u64;
                        *res.per_line_cases.entry(nl).or_insert(0) += c;
                    }
                }
                _ => {
                    *res.per_line_cases.entry(l).or_insert(0) += c * k;
                }
            }
        }
        res.fs_cases += k * win.fs_cases;
        res.true_sharing_cases += k * win.true_sharing_cases;
        res.fs_events += k * win.fs_events;
        res.fs_read_events += k * win.fs_read_events;
        res.fs_write_events += k * win.fs_write_events;
        res.ts_events += k * win.ts_events;
        for (dst, &c) in res.per_thread_cases.iter_mut().zip(&win.per_thread_cases) {
            *dst += k * c;
        }
        res.steps += k * win.steps;
        res.iterations += k * win.iterations;
        sim.machine.evictions += k * win_evict;
        sim.cur += k * jp;

        // Exact ragged tail (short chunks / truncation).
        sim.run_to(target, res);
        return true;
    }
}
