//! Grid sweeps over `{kernels × machines × threads × chunks}` with
//! memoization of schedule-independent cost terms and a predictor-driven
//! early-exit mode.
//!
//! The advisor, the sensitivity battery, and the bench tables all evaluate
//! the same kernel under many schedules; profiling shows most of that time
//! re-deriving work that does not depend on the schedule at all. Three
//! levels of reuse are implemented here:
//!
//! 1. **Prepared kernels** ([`crate::total::PreparedKernel`]): `Machine_c`
//!    and the FS model's step-1 reference extraction (access plan + array
//!    bases) are computed once per kernel×machine and shared by every
//!    (threads, chunk) point. (`Cache_c`/`TLB_c`/overheads *look* schedule
//!    independent but are not — their miss rates depend on chunk size and
//!    team size — so they are deliberately not hoisted.)
//! 2. **Point memoization** ([`MemoCache`]): full [`LoopCost`] results are
//!    keyed by a content fingerprint of (kernel, machine, threads, eval
//!    mode), so identical grid points — e.g. the advisor re-visiting a
//!    chunk the sensitivity battery already priced — are free.
//! 3. **Early exit** ([`EarlyExit`]): instead of simulating every chunk
//!    run, sample a small prefix, fit the §III-E linear predictor, and stop
//!    growing the sample once consecutive predictions agree to a relative
//!    tolerance.

use crate::fs::{FsModelConfig, FsPath};
use crate::predict::predict_fs_prepared;
use crate::total::{analyze_loop_prepared, AnalysisOptions, LoopCost, PreparedKernel};
use loop_ir::{Kernel, Schedule};
use machine::MachineConfig;
use std::collections::{HashMap, VecDeque};

/// One point of a sweep grid, by index into the grid's axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPointSpec {
    pub kernel: usize,
    pub machine: usize,
    pub threads: u32,
    pub chunk: u64,
}

/// The cartesian sweep `{kernels × machines × threads × chunks}`.
///
/// Axis order is significant: [`SweepGrid::points`] enumerates
/// kernel-major, then machine, then threads, then chunk — the deterministic
/// output order every evaluation strategy (sequential or parallel) must
/// reproduce.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Named kernels (the name is carried into results verbatim).
    pub kernels: Vec<(String, Kernel)>,
    /// Named machine descriptions.
    pub machines: Vec<(String, MachineConfig)>,
    pub threads: Vec<u32>,
    pub chunks: Vec<u64>,
}

impl SweepGrid {
    /// Grid over one machine, taking kernel names from the kernels.
    pub fn new(
        kernels: Vec<(String, Kernel)>,
        machine: (String, MachineConfig),
        threads: Vec<u32>,
        chunks: Vec<u64>,
    ) -> Self {
        SweepGrid {
            kernels,
            machines: vec![machine],
            threads,
            chunks,
        }
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.kernels.len() * self.machines.len() * self.threads.len() * self.chunks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All points in the canonical kernel → machine → threads → chunk order.
    pub fn points(&self) -> Vec<SweepPointSpec> {
        let mut out = Vec::with_capacity(self.len());
        for k in 0..self.kernels.len() {
            for m in 0..self.machines.len() {
                for &t in &self.threads {
                    for &c in &self.chunks {
                        out.push(SweepPointSpec {
                            kernel: k,
                            machine: m,
                            threads: t,
                            chunk: c,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Early-exit policy for one grid point: grow the predictor's sample until
/// two consecutive predictions of the total FS case count agree to
/// `rel_tol`, then stop simulating (paper §III-E applied adaptively).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyExit {
    /// First sample size, in chunk runs.
    pub min_runs: u64,
    /// Give up growing past this many chunk runs (the final sample is used
    /// as-is).
    pub max_runs: u64,
    /// Relative tolerance for two consecutive predictions to count as
    /// converged.
    pub rel_tol: f64,
}

impl Default for EarlyExit {
    fn default() -> Self {
        EarlyExit {
            min_runs: 8,
            max_runs: 128,
            rel_tol: 0.02,
        }
    }
}

impl EarlyExit {
    /// Pick the number of chunk runs to simulate for `kernel` under `cfg`:
    /// the smallest sample (doubling upward) whose prediction has
    /// converged, or `None` when the loop is so short the full evaluation
    /// is at least as cheap (callers fall back to the full model).
    ///
    /// When the parallel region sits under a sequential outer loop, the
    /// cumulative FS series is piecewise — each outer instance restarts
    /// with cold remote cache states — so convergence of consecutive
    /// predictions within one instance is not evidence of steady state.
    /// The starting sample is therefore widened to span at least two outer
    /// instances (the same guidance [`crate::predict::predict_fs`]
    /// documents), and only then grown until two consecutive predictions
    /// agree to `rel_tol`.
    pub fn resolve_runs(
        &self,
        kernel: &Kernel,
        cfg: &FsModelConfig,
        prep: &PreparedKernel,
    ) -> Option<u64> {
        // Cheap probe: learn x_max (total chunk runs) from a minimal sample.
        let probe =
            predict_fs_prepared(kernel, cfg, self.min_runs.max(2), &prep.plan, &prep.bases)?;
        let total = probe.total_chunk_runs;
        let outer = kernel.nest.outer_iters().unwrap_or(1).max(1);
        let per_instance = (total / outer).max(1);
        let mut runs = if outer > 1 {
            self.min_runs.max(2).max(2 * per_instance)
        } else {
            self.min_runs.max(2)
        };
        // The doubling cap must not truncate the instance-spanning start.
        let max_runs = self.max_runs.max(runs);
        if runs >= total {
            // Sample would cover the whole loop: predicting buys nothing.
            return None;
        }
        let mut prev: Option<f64> = None;
        loop {
            let p = predict_fs_prepared(kernel, cfg, runs, &prep.plan, &prep.bases)?;
            if p.chunk_runs_evaluated >= p.total_chunk_runs {
                return None;
            }
            if let Some(prev) = prev {
                let denom = prev.abs().max(1.0);
                if (p.predicted_cases - prev).abs() / denom <= self.rel_tol {
                    return Some(runs);
                }
            }
            if runs >= max_runs {
                return Some(runs);
            }
            prev = Some(p.predicted_cases);
            runs = (runs * 2).min(max_runs);
        }
    }
}

/// How each grid point's FS term is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EvalMode {
    /// Full four-step model over every chunk run.
    #[default]
    Full,
    /// Fixed-size §III-E prediction sample.
    Predict(u64),
    /// Adaptive prediction sample (see [`EarlyExit`]).
    EarlyExit(EarlyExit),
}

/// Content fingerprint: `Debug` output is stable for a given value within
/// one build, which is all the memo needs (keys never cross processes).
fn fingerprint<T: std::fmt::Debug>(v: &T) -> String {
    format!("{v:?}")
}

/// The kernel with its schedule normalized to `static, 1` — the part of the
/// kernel the schedule-independent terms may depend on.
fn schedule_normalized(kernel: &Kernel) -> Kernel {
    let mut k = kernel.clone();
    k.nest.parallel.schedule = Schedule::Static { chunk: 1 };
    k
}

/// Lifetime statistics of one [`MemoCache`] (or an aggregate over shards).
/// `hits`/`misses`/`evictions`/`peak_bytes` describe the cache's whole
/// lifetime; `bytes` and `entries` describe its current contents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Approximate resident bytes currently held.
    pub bytes: u64,
    /// High-water mark of `bytes` over the cache's lifetime.
    pub peak_bytes: u64,
    /// Entries currently held (points + prepared kernels).
    pub entries: u64,
}

impl MemoStats {
    /// Accumulate another cache's stats (shard aggregation). Per-shard
    /// peaks sum to an upper bound on the aggregate peak, which is the
    /// conservative figure a byte budget cares about.
    pub fn merge(&mut self, other: &MemoStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.bytes += other.bytes;
        self.peak_bytes += other.peak_bytes;
        self.entries += other.entries;
    }
}

/// Approximate resident bytes of a cached point result: the struct itself
/// plus the heap the FS model result owns (per-line attribution, series,
/// per-thread counts) and the cache-cost reference groups.
fn cost_bytes(c: &LoopCost) -> u64 {
    let fs = &c.fs;
    (std::mem::size_of::<LoopCost>()
        + fs.per_thread_cases.len() * std::mem::size_of::<u64>()
        + fs.per_line_cases.len() * 48 // HashMap entry: key + value + bucket overhead
        + (fs.series.len() + fs.events_series.len()) * std::mem::size_of::<(u64, u64)>()
        + c.cache.groups.len() * std::mem::size_of::<crate::footprint::RefGroup>()) as u64
}

/// Approximate resident bytes of a prepared kernel: access plan + bases.
fn prepared_bytes(p: &PreparedKernel) -> u64 {
    let plan: usize = p
        .plan
        .accesses
        .iter()
        .map(|a| std::mem::size_of_val(a) + (a.indices.len() + a.dims.len()) * 32)
        .sum();
    (std::mem::size_of::<PreparedKernel>() + plan + p.bases.len() * std::mem::size_of::<u64>())
        as u64
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryKind {
    Prepared,
    Point,
}

struct Entry<T> {
    value: T,
    bytes: u64,
    /// Recency stamp: the cache clock at the entry's last touch. Used to
    /// recognize stale recency-queue records.
    stamp: u64,
}

/// Memoization cache for sweep evaluation. Two maps:
///
/// * prepared-kernel entries keyed by (schedule-normalized kernel, machine)
///   — shared across every (threads, chunk) point of a kernel;
/// * full [`LoopCost`] entries keyed by the complete point identity.
///
/// Keys are content fingerprints, so mutating a kernel (padding an array,
/// changing the body) naturally misses the cache rather than returning
/// stale costs.
///
/// An optional byte budget bounds resident size for long-lived caches (the
/// daemon's cross-run cache): every entry is charged its approximate heap
/// size, and inserting past the budget evicts least-recently-used entries
/// first. Recency is tracked lazily — touches append `(stamp, key)` records
/// to a queue, and eviction skips records whose stamp no longer matches the
/// entry — so hits stay O(1) with no linked-list bookkeeping.
#[derive(Default)]
pub struct MemoCache {
    prepared: HashMap<String, Entry<PreparedKernel>>,
    points: HashMap<String, Entry<LoopCost>>,
    /// Lazy LRU queue of `(stamp, kind, key)` touch records, oldest first.
    recency: VecDeque<(u64, EntryKind, String)>,
    clock: u64,
    budget: Option<u64>,
    bytes: u64,
    peak_bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl MemoCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache that evicts LRU entries to stay under `bytes` resident
    /// bytes (`None` = unbounded, the default).
    pub fn with_budget(budget: Option<u64>) -> Self {
        MemoCache {
            budget,
            ..Self::default()
        }
    }

    /// The configured byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Change the byte budget, evicting immediately if the cache is over
    /// the new limit.
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
        self.enforce_budget();
    }

    /// Cached point results + prepared kernels currently held.
    pub fn len(&self) -> usize {
        self.points.len() + self.prepared.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// LRU evictions over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Approximate resident bytes currently held.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// High-water mark of [`Self::bytes`] over the cache's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Lifetime + occupancy statistics in one copyable struct.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            bytes: self.bytes,
            peak_bytes: self.peak_bytes,
            entries: self.len() as u64,
        }
    }

    /// Drop every cached entry (counters survive; they describe the
    /// cache's lifetime, not its contents).
    pub fn clear(&mut self) {
        self.prepared.clear();
        self.points.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    /// Next recency stamp.
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Record a touch of `key` so eviction sees it as recently used.
    fn touch(&mut self, kind: EntryKind, key: &str, stamp: u64) {
        self.recency.push_back((stamp, kind, key.to_string()));
        // Stale records (touches superseded by later ones) accumulate in
        // the queue; compact once they dominate so it stays O(entries).
        if self.recency.len() > 4 * self.len().max(16) {
            self.compact_recency();
        }
    }

    fn compact_recency(&mut self) {
        let mut live: Vec<(u64, EntryKind, String)> = self
            .prepared
            .iter()
            .map(|(k, e)| (e.stamp, EntryKind::Prepared, k.clone()))
            .chain(
                self.points
                    .iter()
                    .map(|(k, e)| (e.stamp, EntryKind::Point, k.clone())),
            )
            .collect();
        live.sort_by_key(|e| e.0);
        self.recency = live.into();
    }

    /// Evict least-recently-used entries until the cache fits its budget.
    fn enforce_budget(&mut self) {
        let Some(budget) = self.budget else {
            return;
        };
        while self.bytes > budget {
            let Some((stamp, kind, key)) = self.recency.pop_front() else {
                break;
            };
            let freed = match kind {
                EntryKind::Prepared => match self.prepared.get(&key) {
                    Some(e) if e.stamp == stamp => {
                        let b = e.bytes;
                        self.prepared.remove(&key);
                        Some(b)
                    }
                    _ => None, // stale record: entry gone or touched since
                },
                EntryKind::Point => match self.points.get(&key) {
                    Some(e) if e.stamp == stamp => {
                        let b = e.bytes;
                        self.points.remove(&key);
                        Some(b)
                    }
                    _ => None,
                },
            };
            if let Some(b) = freed {
                self.bytes -= b;
                self.evictions += 1;
                fs_obs::counters::SWEEP_MEMO_EVICTIONS.inc();
            }
        }
    }

    fn account_insert(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.bytes);
        self.enforce_budget();
    }

    /// Look up a point result by its [`point_key`], counting a hit or miss.
    pub fn lookup_point(&mut self, key: &str) -> Option<LoopCost> {
        let stamp = self.tick();
        match self.points.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                let c = e.value.clone();
                self.touch(EntryKind::Point, key, stamp);
                self.hits += 1;
                fs_obs::counters::SWEEP_MEMO_HITS.inc();
                Some(c)
            }
            None => {
                self.misses += 1;
                fs_obs::counters::SWEEP_MEMO_MISSES.inc();
                None
            }
        }
    }

    /// Store a computed point result under its [`point_key`].
    pub fn insert_point(&mut self, key: String, cost: LoopCost) {
        let stamp = self.tick();
        let bytes = cost_bytes(&cost) + key.len() as u64;
        self.touch(EntryKind::Point, &key, stamp);
        if let Some(old) = self.points.insert(
            key,
            Entry {
                value: cost,
                bytes,
                stamp,
            },
        ) {
            self.bytes -= old.bytes;
        }
        self.account_insert(bytes);
    }

    /// The prepared (schedule-independent) inputs for `kernel` on
    /// `machine`, computed on first request and shared by every chunk and
    /// team-size variant of the kernel afterwards.
    pub fn prepared_for(
        &mut self,
        kernel: &Kernel,
        machine: &MachineConfig,
        path: FsPath,
    ) -> PreparedKernel {
        let key = prepared_key(kernel, machine, path);
        self.prepared_for_keyed(key, kernel, machine)
    }

    /// [`Self::prepared_for`] with the [`prepared_key`] already computed —
    /// sharded caches route by the key and must not fingerprint twice.
    pub fn prepared_for_keyed(
        &mut self,
        key: String,
        kernel: &Kernel,
        machine: &MachineConfig,
    ) -> PreparedKernel {
        let stamp = self.tick();
        if let Some(e) = self.prepared.get_mut(&key) {
            e.stamp = stamp;
            let p = e.value.clone();
            self.touch(EntryKind::Prepared, &key, stamp);
            return p;
        }
        let p = PreparedKernel::new(kernel, machine);
        let bytes = prepared_bytes(&p) + key.len() as u64;
        self.touch(EntryKind::Prepared, &key, stamp);
        self.prepared.insert(
            key,
            Entry {
                value: p.clone(),
                bytes,
                stamp,
            },
        );
        self.account_insert(bytes);
        p
    }
}

/// The content fingerprint identifying a (kernel, machine) pair's prepared
/// inputs — schedule-normalized, so every (threads, chunk) point of a
/// kernel shares one entry. Public so sharded caches can route by it.
///
/// The prepared inputs themselves (access plan, array bases, `Machine_c`)
/// do not depend on the FS-model path, but the resolved path is part of the
/// key anyway so point and prepared identity stay uniform: toggling the
/// path between runs can never alias *any* cached state.
pub fn prepared_key(kernel: &Kernel, machine: &MachineConfig, path: FsPath) -> String {
    format!(
        "{}|{}|p{}",
        fingerprint(&schedule_normalized(kernel)),
        fingerprint(machine),
        path
    )
}

/// The content fingerprint identifying one grid point's full result. The
/// resolved FS-model path is part of the identity — a symbolic and a dense
/// evaluation of the same point are distinct entries, so switching the
/// service's path never serves a result computed on another path.
pub fn point_key(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    mode: &EvalMode,
    path: FsPath,
) -> String {
    format!(
        "{}|{}|t{}|{}|p{}",
        fingerprint(kernel),
        fingerprint(machine),
        threads,
        fingerprint(mode),
        path
    )
}

/// Evaluate one grid point from its prepared inputs. Pure: no cache access,
/// so parallel workers call this outside any lock.
pub fn compute_point(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    mode: EvalMode,
    path: FsPath,
    prep: &PreparedKernel,
) -> LoopCost {
    let t = threads.max(1);
    let mut opts = AnalysisOptions::new(t);
    opts.fs_path = Some(path);
    opts.predict_chunk_runs = match mode {
        EvalMode::Full => None,
        EvalMode::Predict(runs) => Some(runs),
        EvalMode::EarlyExit(ee) => {
            let mut cfg = FsModelConfig::for_machine(machine, t);
            cfg.path = path;
            ee.resolve_runs(kernel, &cfg, prep)
        }
    };
    analyze_loop_prepared(kernel, machine, &opts, prep)
}

/// Evaluate one grid point, consulting and filling `memo`.
///
/// `kernel` must already carry the point's schedule (chunk size); `threads`
/// and `mode` complete the point identity. Results are exact clones of what
/// an unmemoized [`crate::total::analyze_loop`] call would return — the
/// memo only skips redundant recomputation, never changes values.
pub fn evaluate_point(
    kernel: &Kernel,
    machine: &MachineConfig,
    threads: u32,
    mode: EvalMode,
    path: FsPath,
    memo: &mut MemoCache,
) -> LoopCost {
    let key = point_key(kernel, machine, threads, &mode, path);
    if let Some(c) = memo.lookup_point(&key) {
        return c;
    }
    let prep = memo.prepared_for(kernel, machine, path);
    let cost = compute_point(kernel, machine, threads, mode, path, &prep);
    memo.insert_point(key, cost.clone());
    cost
}

/// Apply a grid point's chunk to its kernel (the kernel clone every sweep
/// strategy must perform identically).
pub fn kernel_at_chunk(kernel: &Kernel, chunk: u64) -> Kernel {
    let mut k = kernel.clone();
    k.nest.parallel.schedule = Schedule::Static { chunk };
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total::analyze_loop;
    use loop_ir::kernels;
    use machine::presets;

    fn grid() -> SweepGrid {
        SweepGrid::new(
            vec![
                ("transpose".into(), kernels::transpose(32, 32, 1)),
                ("stencil".into(), kernels::stencil1d(66, 1)),
            ],
            ("paper48".into(), presets::paper48()),
            vec![2, 4],
            vec![1, 8],
        )
    }

    #[test]
    fn points_enumerate_kernel_major_in_order() {
        let g = grid();
        let pts = g.points();
        assert_eq!(pts.len(), g.len());
        assert_eq!(pts.len(), 2 * 2 * 2);
        assert_eq!(
            pts[0],
            SweepPointSpec {
                kernel: 0,
                machine: 0,
                threads: 2,
                chunk: 1
            }
        );
        assert_eq!(pts[1].chunk, 8);
        assert_eq!(pts[2].threads, 4);
        assert_eq!(pts[4].kernel, 1);
    }

    #[test]
    fn memoized_evaluation_matches_direct_analyze_loop() {
        let g = grid();
        let mut memo = MemoCache::new();
        for p in g.points() {
            let k = kernel_at_chunk(&g.kernels[p.kernel].1, p.chunk);
            let m = &g.machines[p.machine].1;
            let via_memo = evaluate_point(
                &k,
                m,
                p.threads,
                EvalMode::Full,
                FsPath::default(),
                &mut memo,
            );
            let direct = analyze_loop(&k, m, &AnalysisOptions::new(p.threads));
            assert_eq!(via_memo.total_cycles, direct.total_cycles);
            assert_eq!(via_memo.fs.fs_cases, direct.fs.fs_cases);
            assert_eq!(via_memo.fs_cycles, direct.fs_cycles);
        }
    }

    #[test]
    fn repeated_points_hit_the_cache() {
        let mut memo = MemoCache::new();
        let k = kernel_at_chunk(&kernels::transpose(32, 32, 1), 4);
        let m = presets::paper48();
        let a = evaluate_point(&k, &m, 4, EvalMode::Full, FsPath::default(), &mut memo);
        assert_eq!(memo.hits(), 0);
        assert_eq!(memo.misses(), 1);
        let b = evaluate_point(&k, &m, 4, EvalMode::Full, FsPath::default(), &mut memo);
        assert_eq!(memo.hits(), 1);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn fs_path_participates_in_point_identity() {
        let mut memo = MemoCache::new();
        let k = kernel_at_chunk(&kernels::transpose(32, 32, 1), 1);
        let m = presets::paper48();
        let dense = evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::Optimized, &mut memo);
        let symbolic = evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::Symbolic, &mut memo);
        assert_eq!(memo.hits(), 0, "different path must never share an entry");
        assert_eq!(dense.fs.fs_cases, symbolic.fs.fs_cases);
        assert_eq!(dense.fs_path, FsPath::Optimized);
        assert_eq!(symbolic.fs_path, FsPath::Symbolic);
        // Same path again is a hit.
        evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::Symbolic, &mut memo);
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn kernel_mutation_invalidates_by_content() {
        let mut memo = MemoCache::new();
        let m = presets::paper48();
        let k1 = kernel_at_chunk(&kernels::transpose(32, 32, 1), 1);
        let c1 = evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        // Same name, different body size: must NOT reuse k1's entry.
        let k2 = kernel_at_chunk(&kernels::transpose(64, 64, 1), 1);
        let c2 = evaluate_point(&k2, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        assert_eq!(memo.hits(), 0, "different content must miss");
        assert_ne!(c1.fs.fs_cases, c2.fs.fs_cases);
        // And a different machine also misses.
        let tiny = presets::tiny_test();
        let c3 = evaluate_point(&k1, &tiny, 8, EvalMode::Full, FsPath::default(), &mut memo);
        assert_eq!(memo.hits(), 0);
        assert_ne!(c1.total_cycles, c3.total_cycles);
        // clear() really empties the cache.
        assert!(!memo.is_empty());
        memo.clear();
        assert!(memo.is_empty());
        evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        assert_eq!(memo.hits(), 0, "cleared cache cannot hit");
    }

    #[test]
    fn chunk_variants_share_one_prepared_kernel() {
        let mut memo = MemoCache::new();
        let m = presets::paper48();
        let base = kernels::transpose(32, 32, 1);
        for chunk in [1u64, 2, 4, 8] {
            let k = kernel_at_chunk(&base, chunk);
            evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        }
        // 4 point entries + exactly 1 prepared entry.
        assert_eq!(memo.len(), 5);
    }

    #[test]
    fn byte_budget_evicts_lru_entries() {
        let m = presets::paper48();
        let base = kernels::transpose(32, 32, 1);
        // Learn the real footprint of a few points, then set a budget that
        // holds roughly half of them.
        let mut probe = MemoCache::new();
        for chunk in [1u64, 2, 4, 8] {
            let k = kernel_at_chunk(&base, chunk);
            evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::default(), &mut probe);
        }
        let full_bytes = probe.bytes();
        assert!(full_bytes > 0);
        assert_eq!(probe.peak_bytes(), full_bytes);
        assert_eq!(probe.evictions(), 0);
        assert_eq!(probe.stats().entries, 5);

        let mut memo = MemoCache::with_budget(Some(full_bytes / 2));
        for chunk in [1u64, 2, 4, 8] {
            let k = kernel_at_chunk(&base, chunk);
            evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        }
        assert!(memo.evictions() > 0, "budget forced evictions");
        assert!(memo.bytes() <= full_bytes / 2, "stayed under budget");
        assert!(memo.len() < 5, "some entries were dropped");
        // Evicted points recompute correctly (values never change).
        let k1 = kernel_at_chunk(&base, 1);
        let again = evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        let reference = evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut probe);
        assert_eq!(again.total_cycles, reference.total_cycles);
    }

    #[test]
    fn lru_keeps_recently_touched_entries() {
        let m = presets::paper48();
        let base = kernels::transpose(32, 32, 1);
        let mut memo = MemoCache::new();
        let k1 = kernel_at_chunk(&base, 1);
        let k2 = kernel_at_chunk(&base, 2);
        evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        evaluate_point(&k2, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        // Touch k1's point so k2's becomes the LRU entry, then shrink the
        // budget enough to force at least one eviction.
        evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        let hits_before = memo.hits();
        memo.set_budget(Some(memo.bytes().saturating_sub(1)));
        assert!(memo.evictions() > 0);
        // k1 must still be resident.
        evaluate_point(&k1, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        assert_eq!(memo.hits(), hits_before + 1, "recently used entry kept");
    }

    #[test]
    fn clear_resets_bytes_but_keeps_lifetime_counters() {
        let m = presets::paper48();
        let k = kernel_at_chunk(&kernels::transpose(32, 32, 1), 1);
        let mut memo = MemoCache::with_budget(Some(64));
        evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        let ev = memo.evictions();
        assert!(ev > 0, "tiny budget evicts immediately");
        memo.clear();
        assert_eq!(memo.bytes(), 0);
        assert_eq!(memo.evictions(), ev, "lifetime counters survive clear");
        assert!(memo.peak_bytes() > 0);
    }

    #[test]
    fn early_exit_stays_close_to_full_model() {
        let k = kernels::dft(128, 256, 1);
        let m = presets::paper48();
        let mut memo = MemoCache::new();
        let full = evaluate_point(&k, &m, 8, EvalMode::Full, FsPath::default(), &mut memo);
        let ee = evaluate_point(
            &k,
            &m,
            8,
            EvalMode::EarlyExit(EarlyExit::default()),
            FsPath::default(),
            &mut memo,
        );
        let err = (ee.fs_cycles - full.fs_cycles).abs() / full.fs_cycles.max(1.0);
        assert!(
            err < 0.10,
            "early-exit {} vs full {}",
            ee.fs_cycles,
            full.fs_cycles
        );
        // And it really did evaluate fewer chunk runs.
        assert!(ee.fs.evaluated_chunk_runs < full.fs.evaluated_chunk_runs);
    }

    #[test]
    fn early_exit_falls_back_on_short_loops() {
        // stencil1d(66) at 8 threads: few chunk runs; resolve_runs must
        // decline so the full model runs.
        let k = kernels::stencil1d(66, 1);
        let m = presets::paper48();
        let prep = PreparedKernel::new(&k, &m);
        let cfg = FsModelConfig::for_machine(&m, 8);
        assert_eq!(EarlyExit::default().resolve_runs(&k, &cfg, &prep), None);
    }
}
