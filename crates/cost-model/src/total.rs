//! Equation 1: the total loop cost with the false-sharing term, and the
//! FS-overhead percentage used throughout the evaluation.
//!
//! ```text
//! Total_c = False_Sharing_c + Machine_c + Cache_c + TLB_c
//!         + Parallel_Overhead_c + Loop_Overhead_c            (Eq. 1)
//! ```
//!
//! All terms are expressed on the critical path of one thread (the team
//! executes concurrently, so per-iteration costs multiply by the *per
//! thread* iteration count and the FS cycle cost is the per-thread share of
//! the detected events).

use crate::footprint::{cache_cost, tlb_cost, CacheCost, TlbCost};
use crate::fs::{run_fs_model_prepared, FsModelConfig, FsModelResult, FsPath};
use crate::overhead::{overhead_cost, OverheadCost};
use crate::processor::{machine_cost, MachineCost};
use loop_ir::{AccessPlan, Kernel};
use machine::MachineConfig;

/// Full cost analysis of one parallel loop on one machine/team.
#[derive(Debug, Clone)]
pub struct LoopCost {
    pub machine: MachineCost,
    pub cache: CacheCost,
    pub tlb: TlbCost,
    pub overhead: OverheadCost,
    pub fs: FsModelResult,
    /// The FS-model path this analysis was dispatched on (the resolved
    /// [`AnalysisOptions::fs_path`] / [`FsModelConfig::path`]). A symbolic
    /// dispatch that fell outside the decidable fragment still reports
    /// `Symbolic` here — the fallback is visible in the
    /// `fs.symbolic_fallbacks` observability counter, and the counts are
    /// identical either way.
    pub fs_path: FsPath,
    /// Innermost iterations on the critical path (per thread).
    pub iters_per_thread: f64,
    /// `False_Sharing_c`: FS cycles on one thread's critical path.
    pub fs_cycles: f64,
    /// `Total_c` in cycles (Eq. 1).
    pub total_cycles: f64,
}

impl LoopCost {
    /// Fraction of the total cost attributed to false sharing.
    pub fn fs_fraction(&self) -> f64 {
        if self.total_cycles <= 0.0 {
            0.0
        } else {
            self.fs_cycles / self.total_cycles
        }
    }

    /// Estimated wall-clock seconds on `machine`.
    pub fn seconds(&self, machine: &MachineConfig) -> f64 {
        machine.cycles_to_seconds(self.total_cycles)
    }
}

/// Options for [`analyze_loop`] and the high-level `fs_core` analysis
/// entry points — the one options type shared across the workspace.
///
/// Construct with the builder:
///
/// ```
/// use cost_model::AnalysisOptions;
/// let opts = AnalysisOptions::new(8).predict(32).build();
/// assert_eq!(opts.num_threads, 8);
/// assert_eq!(opts.predict_chunk_runs, Some(32));
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    pub num_threads: u32,
    /// Use the linear-regression predictor with this many chunk runs
    /// instead of the full FS evaluation (paper §III-E).
    pub predict_chunk_runs: Option<u64>,
    /// Override the default FS-model configuration.
    pub fs_config: Option<FsModelConfig>,
    /// Force a specific FS-model path, overriding both the default and any
    /// [`Self::fs_config`] override. `None` keeps the config's path.
    pub fs_path: Option<FsPath>,
    /// Byte budget of the sweep memo cache (`None` = unbounded). Only
    /// consulted by callers that own a [`crate::sweep::MemoCache`]; it does
    /// not participate in point identity, so changing it never invalidates
    /// cached results.
    pub memo_budget_bytes: Option<u64>,
}

impl AnalysisOptions {
    pub fn new(num_threads: u32) -> Self {
        AnalysisOptions {
            num_threads,
            predict_chunk_runs: None,
            fs_config: None,
            fs_path: None,
            memo_budget_bytes: None,
        }
    }

    /// Evaluate only `chunk_runs` chunk runs and extrapolate with the
    /// linear-regression predictor.
    pub fn predict(mut self, chunk_runs: u64) -> Self {
        self.predict_chunk_runs = Some(chunk_runs);
        self
    }

    /// Alias of [`Self::predict`], kept for callers of the pre-unification
    /// `fs_core::AnalysisOptions` API.
    pub fn with_prediction(self, chunk_runs: u64) -> Self {
        self.predict(chunk_runs)
    }

    /// Override the FS-model configuration (line size, stack geometry, …).
    pub fn fs_config(mut self, cfg: FsModelConfig) -> Self {
        self.fs_config = Some(cfg);
        self
    }

    /// Dispatch the FS model on `path` (symbolic / optimized / reference),
    /// overriding the config default.
    pub fn path(mut self, path: FsPath) -> Self {
        self.fs_path = Some(path);
        self
    }

    /// The FS-model path these options resolve to: the explicit
    /// [`Self::fs_path`] override if set, else the [`Self::fs_config`]
    /// override's path, else the workspace default. This is the value that
    /// participates in sweep/service point identity.
    pub fn resolved_fs_path(&self) -> FsPath {
        self.fs_path
            .unwrap_or_else(|| self.fs_config.as_ref().map(|c| c.path).unwrap_or_default())
    }

    /// Cap the sweep memo cache at `bytes` resident bytes (LRU eviction).
    pub fn memo_budget(mut self, bytes: u64) -> Self {
        self.memo_budget_bytes = Some(bytes);
        self
    }

    /// Finish the builder. A no-op — every intermediate value is already a
    /// complete options struct — provided so builder chains read naturally.
    pub fn build(self) -> Self {
        self
    }
}

/// Schedule-independent inputs of one (kernel, machine) pair: the
/// `Machine_c` term (per-iteration op latencies — unaffected by chunk size
/// or team size) and the FS model's step-1 reference extraction (access
/// plan + aligned array bases). A chunk/thread sweep computes these once
/// and reuses them for every grid point.
#[derive(Debug, Clone)]
pub struct PreparedKernel {
    pub machine_cost: MachineCost,
    pub plan: AccessPlan,
    pub bases: Vec<u64>,
    /// Line size the bases were aligned for.
    pub line_size: u64,
}

impl PreparedKernel {
    pub fn new(kernel: &Kernel, machine: &MachineConfig) -> Self {
        let line_size = machine.line_size();
        PreparedKernel {
            machine_cost: machine_cost(kernel, &machine.processor),
            plan: kernel.access_plan(),
            bases: kernel.array_bases(line_size),
            line_size,
        }
    }
}

/// Analyze `kernel` per Eq. 1. This is the main compile-time entry point.
pub fn analyze_loop(kernel: &Kernel, machine: &MachineConfig, opts: &AnalysisOptions) -> LoopCost {
    analyze_loop_prepared(kernel, machine, opts, &PreparedKernel::new(kernel, machine))
}

/// [`analyze_loop`] with the schedule-independent terms precomputed. `prep`
/// must have been built from the *same* kernel body and arrays (the
/// schedule — chunk size — may differ); the sweep engine's memo cache
/// guarantees this by fingerprinting the schedule-normalized kernel.
pub fn analyze_loop_prepared(
    kernel: &Kernel,
    machine: &MachineConfig,
    opts: &AnalysisOptions,
    prep: &PreparedKernel,
) -> LoopCost {
    let t = opts.num_threads.max(1);
    let mach = prep.machine_cost;
    let cache = cache_cost(kernel, machine, t);
    let tlb = tlb_cost(kernel, machine, t);
    let ovh = overhead_cost(kernel, machine, t);

    let mut fs_cfg = opts
        .fs_config
        .clone()
        .unwrap_or_else(|| FsModelConfig::for_machine(machine, t));
    fs_cfg.num_threads = t;
    if let Some(path) = opts.fs_path {
        fs_cfg.path = path;
    }

    // An fs_config override may model a different line size than the one
    // the prepared bases were aligned for; realign in that case.
    let rebased;
    let bases: &[u64] = if fs_cfg.line_size == prep.line_size {
        &prep.bases
    } else {
        rebased = kernel.array_bases(fs_cfg.line_size);
        &rebased
    };

    let (fs, predicted_events) = match opts.predict_chunk_runs {
        Some(runs) => {
            match crate::predict::predict_fs_prepared(kernel, &fs_cfg, runs, &prep.plan, bases) {
                Some(p) => {
                    let ev = p.predicted_events;
                    (p.sample, Some(ev))
                }
                None => (
                    run_fs_model_prepared(kernel, &fs_cfg, &prep.plan, bases),
                    None,
                ),
            }
        }
        None => (
            run_fs_model_prepared(kernel, &fs_cfg, &prep.plan, bases),
            None,
        ),
    };

    // Critical-path iterations: the static schedule may be imbalanced (a
    // chunk size near the trip count serializes the loop), so use the
    // busiest thread's share, not total/T.
    let iters_per_thread = {
        let nest = &kernel.nest;
        let sched = loop_ir::schedule::ChunkSchedule::for_loop(
            nest.parallel_loop(),
            nest.parallel.schedule.chunk(),
            t as u64,
        );
        match sched {
            Some(s) => {
                let outer = nest.outer_iters().unwrap_or(1).max(1) as f64;
                let inner = nest.inner_iters_per_parallel_iter().unwrap_or(1).max(1) as f64;
                outer * s.max_iters_per_thread() as f64 * inner
            }
            None => kernel.nest.total_iterations().unwrap_or(0) as f64 / t as f64,
        }
    };

    // FS events (predicted or fully modeled) divided across the team: each
    // event is one coherence miss on some thread's critical path. Load-side
    // events stall in full; store-side events hide behind the store buffer.
    let (read_events, write_events) = match predicted_events {
        Some(total) => {
            // Scale the sampled read/write split up to the predicted total.
            let sampled = fs.fs_events.max(1) as f64;
            let f = total / sampled;
            (fs.fs_read_events as f64 * f, fs.fs_write_events as f64 * f)
        }
        None => (fs.fs_read_events as f64, fs.fs_write_events as f64),
    };
    let fs_cycles = (read_events * machine.coherence.fs_read_event_cost()
        + write_events * machine.coherence.fs_write_event_cost())
        / t as f64;

    let per_iter =
        mach.cycles_per_iter + cache.cycles_per_iter + tlb.cycles_per_iter + ovh.loop_per_iter;
    let total_cycles = per_iter * iters_per_thread + ovh.parallel_total + fs_cycles;

    LoopCost {
        machine: mach,
        cache,
        tlb,
        overhead: ovh,
        fs,
        fs_path: fs_cfg.path,
        iters_per_thread,
        fs_cycles,
        total_cycles,
    }
}

/// The modeled FS-overhead comparison of the evaluation (Eq. 5's right-hand
/// side): analyze the FS-case loop and the non-FS-case loop and express the
/// difference of their FS costs as a percentage of the FS-case loop's total
/// cost.
#[derive(Debug, Clone)]
pub struct ModeledFsComparison {
    pub fs_loop: LoopCost,
    pub nfs_loop: LoopCost,
    /// `(FS_c(fs) - FS_c(nfs)) / Total_c(fs)`, in [0, 1].
    pub fs_overhead_fraction: f64,
}

/// Compare a false-sharing kernel variant against its optimized (large
/// chunk / padded) variant, as in Tables I–III.
pub fn modeled_fs_overhead(
    fs_kernel: &Kernel,
    nfs_kernel: &Kernel,
    machine: &MachineConfig,
    opts: &AnalysisOptions,
) -> ModeledFsComparison {
    let fs_loop = analyze_loop(fs_kernel, machine, opts);
    let nfs_loop = analyze_loop(nfs_kernel, machine, opts);
    let diff = (fs_loop.fs_cycles - nfs_loop.fs_cycles).max(0.0);
    let frac = if fs_loop.total_cycles > 0.0 {
        diff / fs_loop.total_cycles
    } else {
        0.0
    };
    ModeledFsComparison {
        fs_loop,
        nfs_loop,
        fs_overhead_fraction: frac,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loop_ir::kernels;
    use machine::presets;

    #[test]
    fn eq1_terms_are_all_included() {
        let m = presets::paper48();
        let k = kernels::heat_diffusion(66, 66, 1);
        let c = analyze_loop(&k, &m, &AnalysisOptions::new(8));
        let per_iter = c.machine.cycles_per_iter
            + c.cache.cycles_per_iter
            + c.tlb.cycles_per_iter
            + c.overhead.loop_per_iter;
        let expected = per_iter * c.iters_per_thread + c.overhead.parallel_total + c.fs_cycles;
        assert!((c.total_cycles - expected).abs() < 1e-6);
        assert!(c.fs_cycles > 0.0);
        assert!(c.fs_fraction() > 0.0 && c.fs_fraction() < 1.0);
    }

    #[test]
    fn fs_case_loop_costs_more_than_nfs_case() {
        let m = presets::paper48();
        // Trip count 512 = 8 threads x chunk 64, so the non-FS variant
        // keeps the whole team busy (a 64-trip loop at chunk 64 would
        // serialize, which the critical-path model now prices correctly).
        let cmp = modeled_fs_overhead(
            &kernels::heat_diffusion(66, 514, 1),
            &kernels::heat_diffusion(66, 514, 64),
            &m,
            &AnalysisOptions::new(8),
        );
        assert!(cmp.fs_loop.total_cycles > cmp.nfs_loop.total_cycles);
        assert!(cmp.fs_overhead_fraction > 0.0);
        assert!(cmp.fs_overhead_fraction < 1.0);
    }

    #[test]
    fn padded_variant_has_zero_fs_cost() {
        let m = presets::paper48();
        let c = analyze_loop(
            &kernels::dotprod_partials(8, 256, true),
            &m,
            &AnalysisOptions::new(8),
        );
        assert_eq!(c.fs_cycles, 0.0);
        assert!(c.total_cycles > 0.0);
    }

    #[test]
    fn prediction_mode_approximates_full_mode() {
        let m = presets::paper48();
        let k = kernels::dft(128, 256, 1);
        let full = analyze_loop(&k, &m, &AnalysisOptions::new(8));
        let mut opts = AnalysisOptions::new(8);
        opts.predict_chunk_runs = Some(96);
        let pred = analyze_loop(&k, &m, &opts);
        let err = (pred.fs_cycles - full.fs_cycles).abs() / full.fs_cycles;
        assert!(
            err < 0.10,
            "pred {} vs full {}",
            pred.fs_cycles,
            full.fs_cycles
        );
    }

    #[test]
    fn oversized_chunks_price_the_serialization() {
        // chunk = trip count puts every iteration on thread 0: the model
        // must report roughly the serial cost, not total/T (the bug that
        // once made the advisor "fix" heat by serializing it). DFT is
        // compute-bound, so the critical path term dominates cleanly.
        let m = presets::paper48();
        let k_par = kernels::dft(16, 4096, 16);
        let k_serial = kernels::dft(16, 4096, 4096);
        let c_par = analyze_loop(&k_par, &m, &AnalysisOptions::new(8));
        let c_serial = analyze_loop(&k_serial, &m, &AnalysisOptions::new(8));
        assert!((c_par.iters_per_thread - 16.0 * 512.0).abs() < 1.0);
        assert!((c_serial.iters_per_thread - 16.0 * 4096.0).abs() < 1.0);
        assert!(c_serial.total_cycles > 4.0 * c_par.total_cycles);
    }

    #[test]
    fn single_thread_total_has_no_fs_term() {
        let m = presets::paper48();
        let c = analyze_loop(
            &kernels::heat_diffusion(34, 34, 1),
            &m,
            &AnalysisOptions::new(1),
        );
        assert_eq!(c.fs_cycles, 0.0);
        assert_eq!(c.fs_fraction(), 0.0);
    }

    #[test]
    fn seconds_conversion() {
        let m = presets::paper48();
        let k = kernels::stencil1d(130, 1);
        let c = analyze_loop(&k, &m, &AnalysisOptions::new(4));
        let s = c.seconds(&m);
        assert!(s > 0.0 && s < 1.0);
    }
}
